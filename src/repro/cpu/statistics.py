"""Per-core microarchitectural statistics.

These are the "gem5 statistics" of the reproduction: the raw counters
that the profiling layer aggregates and the data-mining tool correlates
with fault-injection outcomes (branch share, memory-instruction share,
function call counts, read/write ratio, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class CoreStats:
    """Counters maintained by one core while executing guest code.

    ``slots=True`` matters: the execution engine and the burst-delta
    flush touch these attributes constantly, and slot access skips the
    per-instance dict.
    """

    instructions: int = 0
    cycles: int = 0
    int_ops: int = 0
    float_ops: int = 0
    branches: int = 0
    branches_taken: int = 0
    calls: int = 0
    returns: int = 0
    loads: int = 0
    stores: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    syscalls: int = 0
    idle_cycles: int = 0
    context_switches: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def merge(self, other: "CoreStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def copy(self) -> "CoreStats":
        clone = CoreStats()
        clone.merge(self)
        return clone

    def counters(self) -> dict[str, int]:
        """Raw counter values only (no derived metrics); checkpoint format."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_counters(cls, counters: dict[str, int]) -> "CoreStats":
        return cls(**counters)

    # -- derived metrics ------------------------------------------------------

    @property
    def memory_instructions(self) -> int:
        return self.loads + self.stores

    @property
    def memory_instruction_pct(self) -> float:
        """Share of loads/stores in the executed instructions (percent)."""
        if not self.instructions:
            return 0.0
        return 100.0 * self.memory_instructions / self.instructions

    @property
    def branch_pct(self) -> float:
        if not self.instructions:
            return 0.0
        return 100.0 * self.branches / self.instructions

    @property
    def float_pct(self) -> float:
        if not self.instructions:
            return 0.0
        return 100.0 * self.float_ops / self.instructions

    @property
    def read_write_ratio(self) -> float:
        if not self.stores:
            return float(self.loads)
        return self.loads / self.stores

    @property
    def branch_taken_ratio(self) -> float:
        if not self.branches:
            return 0.0
        return self.branches_taken / self.branches

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        out = {f"{prefix}{f.name}": getattr(self, f.name) for f in fields(self)}
        out[f"{prefix}memory_instructions"] = self.memory_instructions
        out[f"{prefix}memory_instruction_pct"] = self.memory_instruction_pct
        out[f"{prefix}branch_pct"] = self.branch_pct
        out[f"{prefix}float_pct"] = self.float_pct
        out[f"{prefix}read_write_ratio"] = self.read_write_ratio
        out[f"{prefix}branch_taken_ratio"] = self.branch_taken_ratio
        return out


def aggregate_stats(per_core: list[CoreStats]) -> CoreStats:
    """Sum per-core statistics into a system-level view."""
    total = CoreStats()
    for stats in per_core:
        total.merge(stats)
    return total


def load_balance(per_core: list[CoreStats]) -> float:
    """Relative spread of executed instructions across cores (percent).

    Defined as (max - min) / mean over the cores that executed at least
    one instruction.  The paper reports ~4% for MPI and up to ~16% for
    OpenMP; a lower value means better balance.
    """
    counts = [s.instructions for s in per_core if s.instructions > 0]
    if len(counts) <= 1:
        return 0.0
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 0.0
    return 100.0 * (max(counts) - min(counts)) / mean
