"""Pre-decoded basic-block execution engine: the simulator's fast path.

The seed interpreter (:meth:`repro.cpu.core.Core.step`) pays a dict
dispatch, two bounds checks and a dozen attribute lookups for every
guest instruction, and the SoC burst loop re-enters Python call
machinery once per instruction.  At campaign scale (millions of
injections, each replaying tens of thousands of instructions) that
interpreter overhead is the binding constraint on how much of the
scenario matrix fits in a compute budget.

This module removes the per-instruction overhead without changing a
single architecturally visible bit:

Pre-decode
    At first execution of a text segment (and after any invalidation)
    every :class:`~repro.isa.instructions.Instr` is translated into a
    specialized closure — register indices, immediates, masks, branch
    targets and the handler itself are bound at decode time
    (threaded-code style), so executing an instruction is one closure
    call instead of fetch/decode/dispatch.  Closures receive the live
    integer register list as an argument, fetched once per block.

Superblocks
    Straight-line runs (ending at a branch, ``SVC`` or ``HALT`` — see
    :data:`repro.isa.instructions.BLOCK_TERMINATOR_OPS`) become blocks
    that execute as a unit: PC alignment/bounds checks and the
    thread/halt checks happen once per block, and the
    ``cycles``/``instructions``/instruction-class counters accumulate
    in burst-local integers flushed once per burst.  A block entry
    exists for *every* instruction index (each suffix of a run shares
    the decoded closures), so branching into the middle of a run — or
    resuming a paused simulation there — costs nothing.

Cache modelling
    With ``model_caches`` the same decode-once/compile-hot treatment
    applies: cold blocks run self-accounting per-instruction closures
    (one ``caches.fetch`` per instruction, interpreter order), while
    hot blocks compile I-side accounting per *I-cache line* — the
    first instruction on each line performs the real ``l1i.access``
    inline and the rest of the line's fetches are provably pure hits
    batched as one counter delta per burst (see
    :func:`_compile_block`).  D-side accounting is emitted inline in
    program order, so the shared L2 observes the exact interleaving of
    instruction and data misses the interpreter produces.

Determinism contracts
    The engine is bit-exact against the seed interpreter at every
    instruction boundary:

    * every closure that can raise (memory operations, syscalls,
      undefined opcodes) stores its statically known next PC before
      doing work, so a fault raised anywhere mid-block leaves the same
      PC and — after :func:`_account_fault` replays the completed
      prefix's counter deltas — the same statistics the interpreter
      would have;
    * an execution budget smaller than the current block deopts to
      per-instruction stepping, so ``stop_at_instruction`` pauses at
      the exact boundary (schedule-neutral resume for checkpoints and
      the fault injector);
    * a per-instruction ``trace_hook`` (the functional profiler)
      forces the interpreter path entirely;
    * decode specializes only on the *instruction encodings* (and the
      ``model_caches`` flag), never on register or memory values, so
      register-file and memory fault injection cannot invalidate a
      decoded block.  Mutating the text itself must be announced via
      :func:`invalidate_text` (or ``Core.invalidate_decode`` for the
      per-core reference).

Decoded text is cached per ``(text identity, text base, arch,
model_caches, icache geometry)`` — compiled programs are shared across
systems by the ``build_program`` LRU cache, so a whole campaign decodes
each program once.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cpu import alu, fpu
from repro.errors import AlignmentFault, InstructionFault, SimulatorError
from repro.isa.instructions import BLOCK_TERMINATOR_OPS, Op

__all__ = [
    "COND_FUNCS",
    "DecodedText",
    "decode_text",
    "execute_burst",
    "invalidate_text",
]


# ---------------------------------------------------------------------------
# condition evaluation (indexed by Cond value; shared with the slow path)
# ---------------------------------------------------------------------------


def _cond_eq(core):
    return core.flag_z


def _cond_ne(core):
    return not core.flag_z


def _cond_lt(core):
    return core.flag_n != core.flag_v


def _cond_ge(core):
    return core.flag_n == core.flag_v


def _cond_gt(core):
    return (not core.flag_z) and core.flag_n == core.flag_v


def _cond_le(core):
    return core.flag_z or core.flag_n != core.flag_v


def _cond_lo(core):
    return not core.flag_c


def _cond_hs(core):
    return core.flag_c


def _cond_mi(core):
    return core.flag_n


def _cond_pl(core):
    return not core.flag_n


def _cond_al(core):
    return True


#: ``COND_FUNCS[Cond.X]`` evaluates condition X against a core's flags.
COND_FUNCS = (
    _cond_eq,
    _cond_ne,
    _cond_lt,
    _cond_ge,
    _cond_gt,
    _cond_le,
    _cond_lo,
    _cond_hs,
    _cond_mi,
    _cond_pl,
    _cond_al,
)


# ---------------------------------------------------------------------------
# decoded representation
# ---------------------------------------------------------------------------


class Block:
    """One superblock suffix: the run of instructions starting at ``start``.

    ``fast_ops`` (cache-less decode only) are bare architectural
    closures ``op(core, gprs)`` whose statistics are applied as one
    batched delta: ``items`` holds the aggregated instruction-class
    counters as ``(STAT_FIELDS index, delta)`` pairs, while ``cycles``
    and ``instructions`` advance by ``length``.  ``step_ops`` are the
    self-accounting per-instruction closures used for the cache
    modelling configuration and for budget-limited tail stepping.
    ``instr_items`` keeps the per-instruction class deltas so a fault
    raised mid-block can replay the completed prefix exactly.
    ``recheck`` marks blocks after which the driver must re-test the
    thread/halt state (the terminator was SVC or HALT).

    Cache-modelling decode additionally splits the block's instruction
    fetches into *leaders* and *repeats* (see the I-side batching notes
    in :func:`_compile_block`): ``repeat_prefix[k]`` counts the repeat
    fetches among instructions ``0..k`` of the block, ``i_repeats`` is
    the block total, ``i_repeat_cycles`` its latency contribution
    (``i_repeats * i_hit``) and ``i_hit`` the L1i hit latency the
    repeats were compiled against.
    """

    __slots__ = (
        "start",
        "length",
        "fast_ops",
        "step_ops",
        "items",
        "instr_items",
        "recheck",
        "hits",
        "compiled",
        "repeat_prefix",
        "i_repeats",
        "i_repeat_cycles",
        "i_hit",
    )

    def __init__(
        self,
        start,
        length,
        fast_ops,
        step_ops,
        items,
        instr_items,
        recheck,
        repeat_prefix=None,
        i_hit=0,
    ):
        self.start = start
        self.length = length
        self.fast_ops = fast_ops
        self.step_ops = step_ops
        self.items = items
        self.instr_items = instr_items
        self.recheck = recheck
        #: executions on the closure/step tier; at _COMPILE_THRESHOLD the
        #: block is fused into one generated function (None = cold or
        #: uncompilable)
        self.hits = 0
        self.compiled = None
        self.repeat_prefix = repeat_prefix
        self.i_repeats = repeat_prefix[-1] if repeat_prefix else 0
        self.i_repeat_cycles = self.i_repeats * i_hit
        self.i_hit = i_hit


class DecodedText:
    """Pre-decoded view of one text segment for one configuration."""

    __slots__ = ("text", "text_base", "length", "entries", "step_ops", "model_caches", "stale", "ctx")

    def __init__(self, text, text_base, length, entries, step_ops, model_caches, ctx):
        self.text = text
        self.text_base = text_base
        self.length = length
        #: ``entries[i]`` is the Block for the suffix starting at index i
        self.entries = entries
        #: index-aligned self-accounting closures (tail stepping)
        self.step_ops = step_ops
        self.model_caches = model_caches
        #: set by :func:`invalidate_text` when the underlying
        #: instruction list was mutated; forces a re-decode
        self.stale = False
        #: decode context, kept for lazy superblock compilation
        self.ctx = ctx


# ---------------------------------------------------------------------------
# per-instruction decode: specialized closures
# ---------------------------------------------------------------------------
#
# Closures have the signature ``op(core, gprs)`` where ``gprs`` is
# ``core.regs._values`` — fetched once per block by the driver (the list
# identity only changes in ``RegisterFile.restore``, which runs between
# bursts; bit flips from the fault injector mutate it in place).
#
# Every closure that can raise stores its statically known next PC
# *first*.  That keeps the PC architecturally exact at any raise site
# (memory faults, syscall handlers, undefined opcodes), lets
# _account_fault attribute an exception to the precise instruction, and
# keeps the saved context exact when a syscall detaches the thread.
# Branch terminators write their dynamic target instead, and the last
# op of a run is wrapped with a PC store if it has none of its own, so
# the PC is always correct at block exit.


def _decode_instr(instr, index, ctx):
    """Decode one instruction.

    Returns ``(fast_op, items, sets_pc)``: the specialized closure, the
    tuple of ``(counter_name, delta)`` static class-statistics the
    instruction contributes (dynamic counters — taken branches,
    syscalls — are updated live by the closure itself), and whether the
    closure maintains ``core.pc`` on its own.
    """
    op = instr.op
    rd, rn, rm, imm = instr.rd, instr.rn, instr.rm, instr.imm
    mask = ctx["mask"]
    xlen = ctx["xlen"]
    xm = xlen - 1
    text_base = ctx["text_base"]
    model_caches = ctx["model_caches"]
    this_pc = text_base + 4 * index
    next_pc = this_pc + 4
    INT = (("int_ops", 1),)
    FLT = (("float_ops", 1),)

    # -- integer register-register ------------------------------------------
    if op == Op.ADD:
        def fast(core, v):
            v[rd] = (v[rn] + v[rm]) & mask
        return fast, INT, False
    if op == Op.SUB:
        def fast(core, v):
            v[rd] = (v[rn] - v[rm]) & mask
        return fast, INT, False
    if op == Op.RSB:
        def fast(core, v):
            v[rd] = (v[rm] - v[rn]) & mask
        return fast, INT, False
    if op == Op.MUL:
        def fast(core, v):
            v[rd] = (v[rn] * v[rm]) & mask
        return fast, INT, False
    if op == Op.MULHU:
        def fast(core, v):
            v[rd] = ((v[rn] * v[rm]) >> xlen) & mask
        return fast, INT, False
    if op == Op.UDIV:
        udiv = alu.unsigned_divide

        def fast(core, v):
            v[rd] = udiv(v[rn], v[rm], xlen)
        return fast, INT, False
    if op == Op.SDIV:
        sdiv = alu.signed_divide

        def fast(core, v):
            v[rd] = sdiv(v[rn], v[rm], xlen)
        return fast, INT, False
    if op == Op.AND:
        def fast(core, v):
            v[rd] = v[rn] & v[rm]
        return fast, INT, False
    if op == Op.ORR:
        def fast(core, v):
            v[rd] = v[rn] | v[rm]
        return fast, INT, False
    if op == Op.EOR:
        def fast(core, v):
            v[rd] = v[rn] ^ v[rm]
        return fast, INT, False
    if op == Op.BIC:
        def fast(core, v):
            v[rd] = v[rn] & ~v[rm] & mask
        return fast, INT, False
    if op == Op.LSL:
        def fast(core, v):
            v[rd] = (v[rn] << (v[rm] & xm)) & mask
        return fast, INT, False
    if op == Op.LSR:
        def fast(core, v):
            v[rd] = v[rn] >> (v[rm] & xm)
        return fast, INT, False
    if op == Op.ASR:
        asr = alu.arithmetic_shift_right

        def fast(core, v):
            v[rd] = asr(v[rn], v[rm] & xm, xlen)
        return fast, INT, False

    # -- integer register-immediate -----------------------------------------
    if op == Op.ADDI:
        def fast(core, v):
            v[rd] = (v[rn] + imm) & mask
        return fast, INT, False
    if op == Op.SUBI:
        def fast(core, v):
            v[rd] = (v[rn] - imm) & mask
        return fast, INT, False
    if op == Op.ANDI:
        def fast(core, v):
            v[rd] = v[rn] & imm & mask
        return fast, INT, False
    if op == Op.ORRI:
        def fast(core, v):
            v[rd] = (v[rn] | imm) & mask
        return fast, INT, False
    if op == Op.EORI:
        def fast(core, v):
            v[rd] = (v[rn] ^ imm) & mask
        return fast, INT, False
    if op == Op.LSLI:
        sh = imm & xm

        def fast(core, v):
            v[rd] = (v[rn] << sh) & mask
        return fast, INT, False
    if op == Op.LSRI:
        sh = imm & xm

        def fast(core, v):
            v[rd] = v[rn] >> sh
        return fast, INT, False
    if op == Op.ASRI:
        asr = alu.arithmetic_shift_right
        sh = imm & xm

        def fast(core, v):
            v[rd] = asr(v[rn], sh, xlen)
        return fast, INT, False
    if op == Op.MULI:
        def fast(core, v):
            v[rd] = (v[rn] * imm) & mask
        return fast, INT, False

    # -- moves and compares --------------------------------------------------
    if op == Op.MOV:
        def fast(core, v):
            v[rd] = v[rn]
        return fast, INT, False
    if op == Op.MOVI:
        value = imm & mask

        def fast(core, v):
            v[rd] = value
        return fast, INT, False
    if op == Op.MVN:
        def fast(core, v):
            v[rd] = ~v[rn] & mask
        return fast, INT, False
    if op in (Op.CMP, Op.CMPI):
        # Inlined alu.sub_flags (bit-identical): CMP dominates branchy
        # guest code, so the three to_signed calls are worth eliding.
        top = xlen - 1
        sign = ctx["sign_bit"]
        if op == Op.CMP:
            def fast(core, v):
                a = v[rn]
                b = v[rm]
                result = (a - b) & mask
                core.flag_n = bool(result >> top)
                core.flag_z = result == 0
                core.flag_c = a >= b
                sa_neg = bool(a & sign)
                core.flag_v = sa_neg != bool(b & sign) and bool(result & sign) != sa_neg
        else:
            operand = alu.to_unsigned(imm, xlen)
            op_neg = bool(operand & sign)

            def fast(core, v):
                a = v[rn]
                result = (a - operand) & mask
                core.flag_n = bool(result >> top)
                core.flag_z = result == 0
                core.flag_c = a >= operand
                sa_neg = bool(a & sign)
                core.flag_v = sa_neg != op_neg and bool(result & sign) != sa_neg
        return fast, INT, False
    if op == Op.TST:
        top = xlen - 1

        def fast(core, v):
            result = v[rn] & v[rm]
            core.flag_n = bool(result >> top)
            core.flag_z = result == 0
        return fast, INT, False
    if op == Op.CSET:
        cond_fn = _cond_func(instr.cond)
        if cond_fn is None:
            return _bad_cond_op(instr.cond, next_pc, commit_branch=False), INT, True

        def fast(core, v):
            v[rd] = 1 if cond_fn(core) else 0
        return fast, INT, False

    # -- memory ---------------------------------------------------------------
    if op in (Op.LDR, Op.LDRB):
        size = ctx["word_bytes"] if op == Op.LDR else 1
        items = (("loads", 1), ("bytes_read", size))
        if rm is None:
            if model_caches:
                def fast(core, v):
                    core.pc = next_pc
                    address = (v[rn] + imm) & mask
                    core.stats.cycles += core.caches.data_access(address, False)
                    v[rd] = core.mem.read(address, size)
            else:
                def fast(core, v):
                    core.pc = next_pc
                    v[rd] = core.mem.read((v[rn] + imm) & mask, size)
        else:
            if model_caches:
                def fast(core, v):
                    core.pc = next_pc
                    address = (v[rn] + (v[rm] << imm)) & mask
                    core.stats.cycles += core.caches.data_access(address, False)
                    v[rd] = core.mem.read(address, size)
            else:
                def fast(core, v):
                    core.pc = next_pc
                    v[rd] = core.mem.read((v[rn] + (v[rm] << imm)) & mask, size)
        return fast, items, True
    if op in (Op.STR, Op.STRB):
        size = ctx["word_bytes"] if op == Op.STR else 1
        vmask = mask if op == Op.STR else 0xFF
        items = (("stores", 1), ("bytes_written", size))
        if rm is None:
            if model_caches:
                def fast(core, v):
                    core.pc = next_pc
                    address = (v[rn] + imm) & mask
                    core.stats.cycles += core.caches.data_access(address, True)
                    core.mem.write(address, v[rd] & vmask, size)
            else:
                def fast(core, v):
                    core.pc = next_pc
                    core.mem.write((v[rn] + imm) & mask, v[rd] & vmask, size)
        else:
            if model_caches:
                def fast(core, v):
                    core.pc = next_pc
                    address = (v[rn] + (v[rm] << imm)) & mask
                    core.stats.cycles += core.caches.data_access(address, True)
                    core.mem.write(address, v[rd] & vmask, size)
            else:
                def fast(core, v):
                    core.pc = next_pc
                    core.mem.write((v[rn] + (v[rm] << imm)) & mask, v[rd] & vmask, size)
        return fast, items, True

    # -- control flow ---------------------------------------------------------
    if op == Op.B:
        target = text_base + 4 * imm

        def fast(core, v):
            core.pc = target
        return fast, (("branches", 1), ("branches_taken", 1)), True
    if op == Op.BCC:
        target = text_base + 4 * imm
        cond_fn = _cond_func(instr.cond)
        if cond_fn is None:
            # The interpreter commits ``branches`` before evaluating the
            # (invalid) condition; replicate, then defer its fault.
            return _bad_cond_op(instr.cond, next_pc, commit_branch=True), (), True

        def fast(core, v):
            if cond_fn(core):
                core.stats.branches_taken += 1
                core.pc = target
            else:
                core.pc = next_pc
        return fast, (("branches", 1),), True
    if op == Op.CBZ:
        target = text_base + 4 * imm

        def fast(core, v):
            if v[rn] == 0:
                core.stats.branches_taken += 1
                core.pc = target
            else:
                core.pc = next_pc
        return fast, (("branches", 1),), True
    if op == Op.CBNZ:
        target = text_base + 4 * imm

        def fast(core, v):
            if v[rn] != 0:
                core.stats.branches_taken += 1
                core.pc = target
            else:
                core.pc = next_pc
        return fast, (("branches", 1),), True
    if op == Op.BL:
        target = text_base + 4 * imm
        lr = ctx["lr"]
        lr_value = next_pc & mask

        def fast(core, v):
            v[lr] = lr_value
            core.pc = target
        return fast, (("branches", 1), ("branches_taken", 1), ("calls", 1)), True
    if op == Op.BLR:
        lr = ctx["lr"]
        lr_value = next_pc & mask

        def fast(core, v):
            target = v[rn]
            v[lr] = lr_value
            core.pc = target
        return fast, (("branches", 1), ("branches_taken", 1), ("calls", 1)), True
    if op == Op.RET:
        lr = ctx["lr"]

        def fast(core, v):
            core.pc = v[lr]
        return fast, (("branches", 1), ("branches_taken", 1), ("returns", 1)), True

    # -- floating point -------------------------------------------------------
    if op in (Op.FADD, Op.FSUB, Op.FMUL, Op.FMIN, Op.FMAX, Op.FDIV):
        b2d, d2b = fpu.bits_to_double, fpu.double_to_bits
        fmask = ctx["fmask"]
        if op == Op.FADD:
            def fast(core, v):
                f = core.fregs._values
                f[rd] = d2b(b2d(f[rn]) + b2d(f[rm])) & fmask
        elif op == Op.FSUB:
            def fast(core, v):
                f = core.fregs._values
                f[rd] = d2b(b2d(f[rn]) - b2d(f[rm])) & fmask
        elif op == Op.FMUL:
            def fast(core, v):
                f = core.fregs._values
                f[rd] = d2b(b2d(f[rn]) * b2d(f[rm])) & fmask
        elif op == Op.FMIN:
            def fast(core, v):
                f = core.fregs._values
                f[rd] = d2b(min(b2d(f[rn]), b2d(f[rm]))) & fmask
        elif op == Op.FMAX:
            def fast(core, v):
                f = core.fregs._values
                f[rd] = d2b(max(b2d(f[rn]), b2d(f[rm]))) & fmask
        else:  # FDIV keeps the IEEE special cases of fpu.fp_binary
            fp_binary = fpu.fp_binary

            def fast(core, v):
                f = core.fregs._values
                f[rd] = d2b(fp_binary("div", b2d(f[rn]), b2d(f[rm]))) & fmask
        return fast, FLT, False
    if op == Op.FSQRT:
        b2d, d2b, fsqrt = fpu.bits_to_double, fpu.double_to_bits, fpu.fp_sqrt
        fmask = ctx["fmask"]

        def fast(core, v):
            f = core.fregs._values
            f[rd] = d2b(fsqrt(b2d(f[rn]))) & fmask
        return fast, FLT, False
    if op == Op.FNEG:
        b2d, d2b = fpu.bits_to_double, fpu.double_to_bits
        fmask = ctx["fmask"]

        def fast(core, v):
            f = core.fregs._values
            f[rd] = d2b(-b2d(f[rn])) & fmask
        return fast, FLT, False
    if op == Op.FABS:
        b2d, d2b = fpu.bits_to_double, fpu.double_to_bits
        fmask = ctx["fmask"]

        def fast(core, v):
            f = core.fregs._values
            f[rd] = d2b(abs(b2d(f[rn]))) & fmask
        return fast, FLT, False
    if op == Op.FCMP:
        b2d, fcmp = fpu.bits_to_double, fpu.fp_compare

        def fast(core, v):
            f = core.fregs._values
            core.flag_n, core.flag_z, core.flag_c, core.flag_v = fcmp(b2d(f[rn]), b2d(f[rm]))
        return fast, FLT, False
    if op == Op.FMOV:
        def fast(core, v):
            f = core.fregs._values
            f[rd] = f[rn]
        return fast, FLT, False
    if op == Op.FMOVI:
        value = imm & ctx["fmask"]

        def fast(core, v):
            core.fregs._values[rd] = value
        return fast, FLT, False
    if op in (Op.FLDR, Op.FSTR):
        size = ctx["float_bytes"]
        single = size == 4
        b2d, d2b = fpu.bits_to_double, fpu.double_to_bits
        b2s, s2b = fpu.bits_to_single, fpu.single_to_bits
        fmask = ctx["fmask"]
        # Specialized per addressing mode and cache model like LDR/STR:
        # these are decode-time constants, so the hot closure carries no
        # per-execution branches (or helper calls) for them.  The
        # single-precision conversion only exists on the ARMv7 shape,
        # whose compiler never emits hardware FP — it is kept for
        # interpreter parity and handled in the cached variant plus the
        # uncached conversion branch below.
        indexed = rm is not None
        if op == Op.FLDR:
            items = (("loads", 1), ("float_ops", 1), ("bytes_read", size))
            if model_caches:
                def fast(core, v):
                    core.pc = next_pc
                    address = (v[rn] + (v[rm] << imm) if indexed else v[rn] + imm) & mask
                    core.stats.cycles += core.caches.data_access(address, False)
                    bits = core.mem.read(address, size)
                    core.fregs._values[rd] = (d2b(b2s(bits)) if single else bits) & fmask
            elif single:
                if indexed:
                    def fast(core, v):
                        core.pc = next_pc
                        core.fregs._values[rd] = (
                            d2b(b2s(core.mem.read((v[rn] + (v[rm] << imm)) & mask, size))) & fmask
                        )
                else:
                    def fast(core, v):
                        core.pc = next_pc
                        core.fregs._values[rd] = (
                            d2b(b2s(core.mem.read((v[rn] + imm) & mask, size))) & fmask
                        )
            elif indexed:
                def fast(core, v):
                    core.pc = next_pc
                    core.fregs._values[rd] = core.mem.read((v[rn] + (v[rm] << imm)) & mask, size) & fmask
            else:
                def fast(core, v):
                    core.pc = next_pc
                    core.fregs._values[rd] = core.mem.read((v[rn] + imm) & mask, size) & fmask
        else:
            items = (("stores", 1), ("float_ops", 1), ("bytes_written", size))
            if model_caches:
                def fast(core, v):
                    core.pc = next_pc
                    address = (v[rn] + (v[rm] << imm) if indexed else v[rn] + imm) & mask
                    core.stats.cycles += core.caches.data_access(address, True)
                    bits = core.fregs._values[rd]
                    core.mem.write(address, s2b(b2d(bits)) if single else bits, size)
            elif single:
                if indexed:
                    def fast(core, v):
                        core.pc = next_pc
                        core.mem.write(
                            (v[rn] + (v[rm] << imm)) & mask, s2b(b2d(core.fregs._values[rd])), size
                        )
                else:
                    def fast(core, v):
                        core.pc = next_pc
                        core.mem.write((v[rn] + imm) & mask, s2b(b2d(core.fregs._values[rd])), size)
            elif indexed:
                def fast(core, v):
                    core.pc = next_pc
                    core.mem.write((v[rn] + (v[rm] << imm)) & mask, core.fregs._values[rd], size)
            else:
                def fast(core, v):
                    core.pc = next_pc
                    core.mem.write((v[rn] + imm) & mask, core.fregs._values[rd], size)
        return fast, items, True
    if op == Op.SCVTF:
        d2b = fpu.double_to_bits
        fmask = ctx["fmask"]
        sign_bit = ctx["sign_bit"]
        wrap = 1 << xlen

        def fast(core, v):
            value = v[rn]
            if value & sign_bit:
                value -= wrap
            core.fregs._values[rd] = d2b(float(value)) & fmask
        return fast, FLT, False
    if op == Op.FCVTZS:
        b2d, f2i = fpu.bits_to_double, fpu.float_to_int

        def fast(core, v):
            v[rd] = f2i(b2d(core.fregs._values[rn]), xlen)
        return fast, FLT, False
    if op == Op.FMOVRG:
        fmask = ctx["fmask"]

        def fast(core, v):
            core.fregs._values[rd] = v[rn] & fmask
        return fast, FLT, False
    if op == Op.FMOVGR:
        def fast(core, v):
            v[rd] = core.fregs._values[rn] & mask
        return fast, FLT, False

    # -- system ---------------------------------------------------------------
    if op == Op.SVC:
        # ``syscalls`` is committed live (before the handler) so a
        # handler-raised GuestFault leaves exactly the interpreter's
        # counter state; cycles/instructions stay burst-accounted.
        def fast(core, v):
            core.pc = next_pc
            core.stats.syscalls += 1
            handler = core.syscall_handler
            if handler is None:
                raise SimulatorError("SVC executed but no syscall handler installed (bare-metal core)")
            handler(core, imm)
        return fast, (), True
    if op == Op.NOP:
        def fast(core, v):
            pass
        return fast, (), False
    if op == Op.HALT:
        def fast(core, v):
            core.pc = next_pc
            core.halted = True
        return fast, (), True
    if op == Op.WFI:
        def fast(core, v):
            pass
        return fast, (("idle_cycles", 1),), False

    # -- undefined opcode: defer the interpreter's fault to execute time ------
    def fast(core, v):
        core.pc = next_pc
        raise InstructionFault(
            f"undefined opcode {op!r} at {this_pc:#x}", address=this_pc, core_id=core.core_id
        )
    return fast, (), True


def _cond_func(cond):
    """The condition evaluator for a decoded BCC/CSET (None if invalid)."""
    if isinstance(cond, int) and 0 <= cond < len(COND_FUNCS):
        return COND_FUNCS[cond]
    return None


def _bad_cond_op(cond, next_pc, commit_branch):
    """Mirrors the interpreter for an invalid condition code: the fault
    is deferred to execute time, with the PC already advanced (and, for
    BCC, the ``branches`` counter already committed)."""
    def fast(core, v):
        core.pc = next_pc
        if commit_branch:
            core.stats.branches += 1
        raise SimulatorError(f"unknown condition {cond!r}")
    return fast


def _with_pc(fast, next_pc):
    """Wrap a PC-less closure so it advances the PC (run-final ops)."""
    def op(core, v):
        core.pc = next_pc
        fast(core, v)
    return op


def _make_step_op(fast, items, this_pc, sets_pc, model_caches):
    """Self-accounting per-instruction closure (interpreter-exact order)."""
    next_pc = this_pc + 4
    if model_caches:
        def step_op(core, v):
            stats = core.stats
            stats.cycles += core.caches.fetch(this_pc)
            if not sets_pc:
                core.pc = next_pc
            fast(core, v)
            for name, delta in items:
                setattr(stats, name, getattr(stats, name) + delta)
            stats.instructions += 1
    else:
        def step_op(core, v):
            stats = core.stats
            stats.cycles += 1
            if not sets_pc:
                core.pc = next_pc
            fast(core, v)
            for name, delta in items:
                setattr(stats, name, getattr(stats, name) + delta)
            stats.instructions += 1
    return step_op


# ---------------------------------------------------------------------------
# text decode (cached)
# ---------------------------------------------------------------------------

#: Decoded-text cache.  Keys embed ``id(text)``; entries hold a strong
#: reference to the text list, so an id can never be reused while its
#: entry lives.  LRU-bounded: campaigns cycle through a handful of
#: programs (the build_program LRU shares their instruction lists).
_DECODE_CACHE: "OrderedDict[tuple, DecodedText]" = OrderedDict()
_DECODE_CACHE_CAPACITY = 64


def decode_text(text, text_base, arch, model_caches, icache=None):
    """Decode ``text`` (cached) for one architecture/configuration.

    ``icache`` is the L1 instruction cache's :class:`CacheConfig` when
    ``model_caches`` is set: the cached compile tier bakes its line
    geometry and hit latency into the per-block fetch batching, so the
    cache key must distinguish icache geometries.  Cache-modelling
    decode without ``icache`` stays valid (and interpreter-exact) but
    never compiles — blocks stay on the self-accounting step tier.
    """
    icache_key = (
        (icache.line_bytes, icache.hit_latency) if (model_caches and icache is not None) else None
    )
    key = (id(text), text_base, arch.name, bool(model_caches), icache_key)
    cached = _DECODE_CACHE.get(key)
    if cached is not None and cached.text is text and not cached.stale:
        _DECODE_CACHE.move_to_end(key)
        return cached
    decoded = _decode_uncached(text, text_base, arch, model_caches, icache)
    _DECODE_CACHE[key] = decoded
    _DECODE_CACHE.move_to_end(key)
    while len(_DECODE_CACHE) > _DECODE_CACHE_CAPACITY:
        # Mark evicted entries stale: cores may still hold a per-core
        # reference, and invalidate_text can no longer reach an entry
        # that left the cache — without this, an announced text
        # mutation could leave such a core executing stale decode.
        _DECODE_CACHE.popitem(last=False)[1].stale = True
    return decoded


def invalidate_text(text) -> int:
    """Invalidate every decoded view of ``text`` (after in-place mutation).

    Returns the number of cache entries dropped.  Cores additionally
    drop their per-core decoded reference lazily: a stale entry is
    detected on the next burst.
    """
    stale_keys = [key for key, entry in _DECODE_CACHE.items() if entry.text is text]
    for key in stale_keys:
        _DECODE_CACHE[key].stale = True
        del _DECODE_CACHE[key]
    return len(stale_keys)


def decode_cache_info() -> dict:
    """Introspection helper for tests and docs."""
    return {"entries": len(_DECODE_CACHE), "capacity": _DECODE_CACHE_CAPACITY}


#: Canonical counter order for index-based stat deltas (matches the
#: field order of :class:`repro.cpu.statistics.CoreStats`).
STAT_FIELDS = (
    "instructions",
    "cycles",
    "int_ops",
    "float_ops",
    "branches",
    "branches_taken",
    "calls",
    "returns",
    "loads",
    "stores",
    "bytes_read",
    "bytes_written",
    "syscalls",
    "idle_cycles",
    "context_switches",
)
_STAT_INDEX = {name: index for index, name in enumerate(STAT_FIELDS)}


def _index_items(items):
    return tuple((_STAT_INDEX[name], delta) for name, delta in items)


def _decode_uncached(text, text_base, arch, model_caches, icache=None):
    n = len(text)
    ctx = {
        "mask": arch.word_mask,
        "xlen": arch.xlen,
        "sign_bit": arch.sign_bit,
        "word_bytes": arch.word_bytes,
        "float_bytes": arch.float_bytes,
        "fmask": (1 << 64) - 1 if arch.has_hw_float else (1 << 32) - 1,
        "lr": arch.abi.lr,
        "text_base": text_base,
        "model_caches": bool(model_caches),
        # L1i geometry for the cached compile tier (None = unknown:
        # decode stays valid but blocks never leave the step tier).
        "i_line_shift": None,
        "i_hit": 0,
    }
    if model_caches and icache is not None:
        ctx["i_line_shift"] = icache.line_bytes.bit_length() - 1
        ctx["i_hit"] = icache.hit_latency
    fasts = [None] * n
    all_items = [None] * n
    step_ops = [None] * n
    terminator = [False] * n
    recheck = [False] * n
    for index in range(n):
        instr = text[index]
        fast, items, sets_pc = _decode_instr(instr, index, ctx)
        step_ops[index] = _make_step_op(fast, items, text_base + 4 * index, sets_pc, model_caches)
        if not sets_pc and index + 1 == n:
            # Run-final op without its own PC store: only possible when
            # the run falls off the end of the text (terminators all set
            # the PC).  Wrap it so the PC is exact at block exit and the
            # out-of-range fetch fault that follows reports the
            # interpreter's exact address.
            fast = _with_pc(fast, text_base + 4 * index + 4)
        fasts[index] = fast
        all_items[index] = items
        terminator[index] = instr.op in BLOCK_TERMINATOR_OPS
        recheck[index] = instr.op in (Op.SVC, Op.HALT)

    entries = [None] * n
    start = 0
    while start < n:
        end = start
        while end < n and not terminator[end]:
            end += 1
        if end < n:
            end += 1  # include the terminator in its run
        run_fasts = fasts[start:end]
        run_items = all_items[start:end]
        run_steps = step_ops[start:end]
        run_recheck = recheck[end - 1]
        line_shift = ctx["i_line_shift"]
        if line_shift is not None:
            # An instruction is a *repeat* fetch when the previous
            # instruction of the run sits on the same I-cache line
            # (consecutive PCs make the line sequence monotonic, so each
            # line is one contiguous stretch).  A suffix block's first
            # instruction is always a leader — the engine cannot know
            # the line is resident at a branched-to block entry.
            rep = [
                0
                if i == start
                else int((text_base + 4 * i) >> line_shift == (text_base + 4 * (i - 1)) >> line_shift)
                for i in range(start, end)
            ]
        # Suffix sums from the back: every index of the run gets its own
        # Block sharing the decoded closures.
        for offset in range(end - start - 1, -1, -1):
            suffix_items: dict[str, int] = {}
            for items in run_items[offset:]:
                for name, delta in items:
                    suffix_items[name] = suffix_items.get(name, 0) + delta
            repeat_prefix = None
            if line_shift is not None:
                prefix = []
                total = 0
                for k in range(offset, end - start):
                    if k > offset:  # position 0 of the suffix is a forced leader
                        total += rep[k]
                    prefix.append(total)
                repeat_prefix = tuple(prefix)
            entries[start + offset] = Block(
                start=start + offset,
                length=end - start - offset,
                fast_ops=None if model_caches else tuple(run_fasts[offset:]),
                step_ops=tuple(run_steps[offset:]),
                items=_index_items(sorted(suffix_items.items())),
                instr_items=tuple(_index_items(items) for items in run_items[offset:]),
                recheck=run_recheck,
                repeat_prefix=repeat_prefix,
                i_hit=ctx["i_hit"],
            )
        start = end
    return DecodedText(text, text_base, n, entries, step_ops, bool(model_caches), ctx)


# ---------------------------------------------------------------------------
# superblock compilation (the hot tier)
# ---------------------------------------------------------------------------
#
# A block that stays hot on the closure tier is fused into one generated
# Python function executing the whole run as straight-line code — no
# per-instruction call, loop or dispatch overhead at all.  The generated
# source mirrors the closures' semantics statement for statement (the
# differential tests run hot workloads, so both tiers are exercised
# against the interpreter).  Compilation is lazy so decode stays cheap
# for short-lived programs (unit tests); campaigns re-execute the same
# few hundred blocks millions of times, amortizing the one-time
# ``compile()`` cost to nothing.

#: closure-tier executions after which a block is fused
_COMPILE_THRESHOLD = 4

_CODEGEN_GLOBALS = {
    "__builtins__": {},
    "bool": bool,
    "min": min,
    "max": max,
    "abs": abs,
    "float": float,
    "udiv": alu.unsigned_divide,
    "sdiv": alu.signed_divide,
    "asr": alu.arithmetic_shift_right,
    "b2d": fpu.bits_to_double,
    "d2b": fpu.double_to_bits,
    "b2s": fpu.bits_to_single,
    "s2b": fpu.single_to_bits,
    "fsqrt": fpu.fp_sqrt,
    "f2i": fpu.float_to_int,
    "fp_binary": fpu.fp_binary,
    "fcmp": fpu.fp_compare,
    "SimulatorError": SimulatorError,
}

#: condition-code expressions over the live flags, indexed by Cond value
_COND_EXPRS = (
    "core.flag_z",
    "not core.flag_z",
    "core.flag_n != core.flag_v",
    "core.flag_n == core.flag_v",
    "(not core.flag_z) and core.flag_n == core.flag_v",
    "core.flag_z or core.flag_n != core.flag_v",
    "not core.flag_c",
    "core.flag_c",
    "core.flag_n",
    "not core.flag_n",
    "True",
)


def _emit_instr(instr, index, ctx, lines) -> bool:
    """Append the straight-line source for one instruction to ``lines``.

    Returns False when the instruction cannot be compiled (undefined
    opcode, invalid condition code) — the block then stays on the
    closure tier, which already defers those faults to execute time.
    """
    op = instr.op
    rd, rn, rm, imm = instr.rd, instr.rn, instr.rm, instr.imm
    mask = ctx["mask"]
    xlen = ctx["xlen"]
    xm = xlen - 1
    text_base = ctx["text_base"]
    this_pc = text_base + 4 * index
    next_pc = this_pc + 4
    fmask = ctx["fmask"]

    def cond_expr(cond):
        if isinstance(cond, int) and 0 <= cond < len(_COND_EXPRS):
            return _COND_EXPRS[cond]
        return None

    def addr_expr():
        if rm is None:
            return f"(v[{rn}] + {imm}) & {mask}"
        return f"(v[{rn}] + (v[{rm}] << {imm})) & {mask}"

    if op == Op.ADD:
        lines.append(f"v[{rd}] = (v[{rn}] + v[{rm}]) & {mask}")
    elif op == Op.SUB:
        lines.append(f"v[{rd}] = (v[{rn}] - v[{rm}]) & {mask}")
    elif op == Op.RSB:
        lines.append(f"v[{rd}] = (v[{rm}] - v[{rn}]) & {mask}")
    elif op == Op.MUL:
        lines.append(f"v[{rd}] = (v[{rn}] * v[{rm}]) & {mask}")
    elif op == Op.MULHU:
        lines.append(f"v[{rd}] = ((v[{rn}] * v[{rm}]) >> {xlen}) & {mask}")
    elif op == Op.UDIV:
        lines.append(f"v[{rd}] = udiv(v[{rn}], v[{rm}], {xlen})")
    elif op == Op.SDIV:
        lines.append(f"v[{rd}] = sdiv(v[{rn}], v[{rm}], {xlen})")
    elif op == Op.AND:
        lines.append(f"v[{rd}] = v[{rn}] & v[{rm}]")
    elif op == Op.ORR:
        lines.append(f"v[{rd}] = v[{rn}] | v[{rm}]")
    elif op == Op.EOR:
        lines.append(f"v[{rd}] = v[{rn}] ^ v[{rm}]")
    elif op == Op.BIC:
        lines.append(f"v[{rd}] = v[{rn}] & ~v[{rm}] & {mask}")
    elif op == Op.LSL:
        lines.append(f"v[{rd}] = (v[{rn}] << (v[{rm}] & {xm})) & {mask}")
    elif op == Op.LSR:
        lines.append(f"v[{rd}] = v[{rn}] >> (v[{rm}] & {xm})")
    elif op == Op.ASR:
        lines.append(f"v[{rd}] = asr(v[{rn}], v[{rm}] & {xm}, {xlen})")
    elif op == Op.ADDI:
        lines.append(f"v[{rd}] = (v[{rn}] + {imm}) & {mask}")
    elif op == Op.SUBI:
        lines.append(f"v[{rd}] = (v[{rn}] - {imm}) & {mask}")
    elif op == Op.ANDI:
        lines.append(f"v[{rd}] = v[{rn}] & {imm} & {mask}")
    elif op == Op.ORRI:
        lines.append(f"v[{rd}] = (v[{rn}] | {imm}) & {mask}")
    elif op == Op.EORI:
        lines.append(f"v[{rd}] = (v[{rn}] ^ {imm}) & {mask}")
    elif op == Op.LSLI:
        lines.append(f"v[{rd}] = (v[{rn}] << {imm & xm}) & {mask}")
    elif op == Op.LSRI:
        lines.append(f"v[{rd}] = v[{rn}] >> {imm & xm}")
    elif op == Op.ASRI:
        lines.append(f"v[{rd}] = asr(v[{rn}], {imm & xm}, {xlen})")
    elif op == Op.MULI:
        lines.append(f"v[{rd}] = (v[{rn}] * {imm}) & {mask}")
    elif op == Op.MOV:
        lines.append(f"v[{rd}] = v[{rn}]")
    elif op == Op.MOVI:
        lines.append(f"v[{rd}] = {imm & mask}")
    elif op == Op.MVN:
        lines.append(f"v[{rd}] = ~v[{rn}] & {mask}")
    elif op in (Op.CMP, Op.TST, Op.CMPI):
        sign = ctx["sign_bit"]
        if op == Op.TST:
            lines.append(f"r = v[{rn}] & v[{rm}]")
            lines.append(f"core.flag_n = bool(r >> {xm})")
            lines.append("core.flag_z = r == 0")
        else:
            if op == Op.CMP:
                lines.append(f"a = v[{rn}]")
                lines.append(f"b = v[{rm}]")
                b_neg = f"bool(b & {sign})"
            else:
                operand = alu.to_unsigned(imm, xlen)
                lines.append(f"a = v[{rn}]")
                lines.append(f"b = {operand}")
                b_neg = "True" if operand & sign else "False"
            lines.append(f"r = (a - b) & {mask}")
            lines.append(f"core.flag_n = bool(r >> {xm})")
            lines.append("core.flag_z = r == 0")
            lines.append("core.flag_c = a >= b")
            lines.append(f"sn = bool(a & {sign})")
            lines.append(f"core.flag_v = sn != {b_neg} and bool(r & {sign}) != sn")
    elif op == Op.CSET:
        expr = cond_expr(instr.cond)
        if expr is None:
            return False
        lines.append(f"v[{rd}] = 1 if {expr} else 0")
    elif op in (Op.LDR, Op.LDRB):
        size = ctx["word_bytes"] if op == Op.LDR else 1
        lines.append(f"core.pc = {next_pc}")
        if ctx["model_caches"]:
            # Effective address computed once, D-cache accounting before
            # the architectural read (pending-fault commit order — see
            # Core._data_access_cycles).
            lines.append(f"a = {addr_expr()}")
            lines.append("st.cycles += da(a, False)")
            lines.append(f"v[{rd}] = mr(a, {size})")
        else:
            lines.append(f"v[{rd}] = mr({addr_expr()}, {size})")
    elif op in (Op.STR, Op.STRB):
        size = ctx["word_bytes"] if op == Op.STR else 1
        value = f"v[{rd}]" if op == Op.STR else f"v[{rd}] & 255"
        lines.append(f"core.pc = {next_pc}")
        if ctx["model_caches"]:
            lines.append(f"a = {addr_expr()}")
            lines.append("st.cycles += da(a, True)")
            lines.append(f"mw(a, {value}, {size})")
        else:
            lines.append(f"mw({addr_expr()}, {value}, {size})")
    elif op == Op.B:
        lines.append(f"core.pc = {text_base + 4 * imm}")
    elif op in (Op.BCC, Op.CBZ, Op.CBNZ):
        if op == Op.BCC:
            expr = cond_expr(instr.cond)
            if expr is None:
                return False
        elif op == Op.CBZ:
            expr = f"v[{rn}] == 0"
        else:
            expr = f"v[{rn}] != 0"
        lines.append(f"if {expr}:")
        lines.append("    core.stats.branches_taken += 1")
        lines.append(f"    core.pc = {text_base + 4 * imm}")
        lines.append("else:")
        lines.append(f"    core.pc = {next_pc}")
    elif op == Op.BL:
        lines.append(f"v[{ctx['lr']}] = {next_pc & mask}")
        lines.append(f"core.pc = {text_base + 4 * imm}")
    elif op == Op.BLR:
        lines.append(f"t = v[{rn}]")
        lines.append(f"v[{ctx['lr']}] = {next_pc & mask}")
        lines.append("core.pc = t")
    elif op == Op.RET:
        lines.append(f"core.pc = v[{ctx['lr']}]")
    elif op in (Op.FADD, Op.FSUB, Op.FMUL):
        sym = {Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*"}[op]
        lines.append(f"f[{rd}] = d2b(b2d(f[{rn}]) {sym} b2d(f[{rm}])) & {fmask}")
    elif op == Op.FMIN:
        lines.append(f"f[{rd}] = d2b(min(b2d(f[{rn}]), b2d(f[{rm}]))) & {fmask}")
    elif op == Op.FMAX:
        lines.append(f"f[{rd}] = d2b(max(b2d(f[{rn}]), b2d(f[{rm}]))) & {fmask}")
    elif op == Op.FDIV:
        lines.append(f"f[{rd}] = d2b(fp_binary('div', b2d(f[{rn}]), b2d(f[{rm}]))) & {fmask}")
    elif op == Op.FSQRT:
        lines.append(f"f[{rd}] = d2b(fsqrt(b2d(f[{rn}]))) & {fmask}")
    elif op == Op.FNEG:
        lines.append(f"f[{rd}] = d2b(-b2d(f[{rn}])) & {fmask}")
    elif op == Op.FABS:
        lines.append(f"f[{rd}] = d2b(abs(b2d(f[{rn}]))) & {fmask}")
    elif op == Op.FCMP:
        lines.append(
            f"core.flag_n, core.flag_z, core.flag_c, core.flag_v = fcmp(b2d(f[{rn}]), b2d(f[{rm}]))"
        )
    elif op == Op.FMOV:
        lines.append(f"f[{rd}] = f[{rn}]")
    elif op == Op.FMOVI:
        lines.append(f"f[{rd}] = {imm & fmask}")
    elif op in (Op.FLDR, Op.FSTR):
        size = ctx["float_bytes"]
        single = size == 4
        cached = ctx["model_caches"]
        lines.append(f"core.pc = {next_pc}")
        if cached:
            lines.append(f"a = {addr_expr()}")
        addr = "a" if cached else addr_expr()
        if op == Op.FLDR:
            if cached:
                lines.append("st.cycles += da(a, False)")
            lines.append(f"bits = mr({addr}, {size})")
            if single:
                lines.append("bits = d2b(b2s(bits))")
            lines.append(f"f[{rd}] = bits & {fmask}")
        else:
            lines.append(f"bits = f[{rd}]")
            if single:
                lines.append("bits = s2b(b2d(bits))")
            if cached:
                lines.append("st.cycles += da(a, True)")
            lines.append(f"mw({addr}, bits, {size})")
    elif op == Op.SCVTF:
        lines.append(f"x = v[{rn}]")
        lines.append(f"if x & {ctx['sign_bit']}:")
        lines.append(f"    x -= {1 << xlen}")
        lines.append(f"f[{rd}] = d2b(float(x)) & {fmask}")
    elif op == Op.FCVTZS:
        lines.append(f"v[{rd}] = f2i(b2d(f[{rn}]), {xlen})")
    elif op == Op.FMOVRG:
        lines.append(f"f[{rd}] = v[{rn}] & {fmask}")
    elif op == Op.FMOVGR:
        lines.append(f"v[{rd}] = f[{rn}] & {mask}")
    elif op == Op.SVC:
        lines.append(f"core.pc = {next_pc}")
        lines.append("core.stats.syscalls += 1")
        lines.append("h = core.syscall_handler")
        lines.append("if h is None:")
        lines.append(
            "    raise SimulatorError('SVC executed but no syscall handler installed (bare-metal core)')"
        )
        lines.append(f"h(core, {imm})")
    elif op == Op.NOP or op == Op.WFI:
        pass  # WFI's idle_cycles ride the batched block delta
    elif op == Op.HALT:
        lines.append(f"core.pc = {next_pc}")
        lines.append("core.halted = True")
    else:
        return False  # undefined opcode: stays on the closure tier
    return True


#: Opcodes whose generated source touches the FP register file.
_FP_SRC_OPS = frozenset(
    {
        Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FSQRT, Op.FNEG, Op.FABS, Op.FMIN,
        Op.FMAX, Op.FCMP, Op.FMOV, Op.FMOVI, Op.FLDR, Op.FSTR, Op.SCVTF,
        Op.FCVTZS, Op.FMOVRG, Op.FMOVGR,
    }
)


def _compile_block(block, decoded):
    """Fuse one block into a single generated function, or None.

    The function has the closure/step tier's exact semantics: same PC
    stores before raising operations, same live counters
    (``branches_taken``, ``syscalls``), same final PC.  The batched
    block delta still comes from the driver.

    Cache modelling: every PC of a straight-line block is known here,
    so I-side accounting splits per line.  The first instruction
    touching each I-cache line (*leader* — block entry is always one)
    does the real ``l1i.access`` inline, in program order relative to
    the block's D-accesses (both can reach the shared L2, so their
    interleaving decides L2 LRU state).  The remaining instructions of
    the line (*repeats*) are provably pure hits — the leader left the
    line resident, MRU and pending-free, and D-accesses cannot disturb
    the L1i — so their effect is exactly a static counter delta
    (``hits``/``read_accesses``/``cycles += hit latency``), batched
    into the burst accumulator by the driver.  D-side accounting is
    emitted inline against the hoisted ``l1d.access`` with the
    effective address computed once per memory operation.
    """
    text = decoded.text
    ctx = decoded.ctx
    model_caches = decoded.model_caches
    line_shift = ctx["i_line_shift"]
    if model_caches and line_shift is None:
        return None  # no icache geometry at decode time: stay on the step tier
    start = block.start
    end = start + block.length
    lines: list[str] = []
    needs_f = False
    needs_read = False
    needs_write = False
    prev_line = -1
    for index in range(start, end):
        instr = text[index]
        op = instr.op
        if op in _FP_SRC_OPS:
            needs_f = True
        if op in (Op.LDR, Op.LDRB, Op.FLDR):
            needs_read = True
        elif op in (Op.STR, Op.STRB, Op.FSTR):
            needs_write = True
        if model_caches:
            pc = ctx["text_base"] + 4 * index
            iline = pc >> line_shift
            if index == start or iline != prev_line:
                lines.append(f"st.cycles += fa({pc})")
            prev_line = iline
        if not _emit_instr(instr, index, ctx, lines):
            return None
    last = text[end - 1]
    if end == decoded.length and last.op not in BLOCK_TERMINATOR_OPS:
        # Run falls off the end of the text: leave the interpreter's
        # exact PC for the out-of-range fetch fault that follows.
        lines.append(f"core.pc = {ctx['text_base'] + 4 * end}")
    # Hoisted per-block bindings: the address space never changes
    # mid-block (only syscalls swap it, and SVC is always block-final);
    # cache objects and the stats record only change between bursts.
    if needs_write:
        lines.insert(0, "mw = core.mem.write")
    if needs_read:
        lines.insert(0, "mr = core.mem.read")
    if model_caches and (needs_read or needs_write):
        lines.insert(0, "da = core.caches.l1d.access")
    if model_caches:
        lines.insert(0, "fa = core.caches.l1i.access")
        lines.insert(0, "st = core.stats")
    if needs_f:
        lines.insert(0, "f = core.fregs._values")
    if not lines:
        lines.append("pass")
    source = "def _block(core, v):\n" + "\n".join("    " + line for line in lines)
    namespace: dict = {}
    exec(compile(source, f"<superblock@{ctx['text_base'] + 4 * start:#x}>", "exec"), _CODEGEN_GLOBALS, namespace)
    return namespace["_block"]


# ---------------------------------------------------------------------------
# execution driver
# ---------------------------------------------------------------------------


def _account_fault(core, acc, block) -> None:
    """Replay the statistics of a batched block interrupted by an exception.

    Every closure that can raise stores its next PC before doing work,
    so the PC at the raise site identifies the faulting instruction.
    The interpreter would have committed: all counters of the completed
    prefix, plus the fetch cycle of the faulting instruction (its class
    counters and the ``instructions`` increment never happen — matching
    ``Core.step``'s raise points exactly).  Deltas land in the burst
    accumulator, which the driver flushes before the exception leaves.
    """
    j = ((core.pc - core.text_base) >> 2) - 1 - block.start
    if j < 0:
        j = 0
    elif j >= block.length:
        j = block.length - 1
    acc[0] += j
    acc[1] += j + 1
    for items in block.instr_items[:j]:
        for index, delta in items:
            acc[index] += delta


def _account_fault_cached(core, acc, block) -> None:
    """Replay a cached compiled block interrupted by an exception.

    Leader fetches and D-access latencies were committed inline before
    the raise (matching the interpreter's order exactly); what is still
    pending is the batched repeat-fetch effect.  The interpreter would
    have committed: class counters and ``instructions`` for the
    completed prefix, plus the *fetch* of the faulting instruction —
    so repeats are replayed through index ``j`` inclusive.
    """
    j = ((core.pc - core.text_base) >> 2) - 1 - block.start
    if j < 0:
        j = 0
    elif j >= block.length:
        j = block.length - 1
    acc[0] += j
    repeats = block.repeat_prefix[j]
    acc[1] += repeats * block.i_hit
    acc[15] += repeats
    for items in block.instr_items[:j]:
        for index, delta in items:
            acc[index] += delta


def _flush(stats, acc) -> None:
    """Commit one burst's accumulated counter deltas to the core stats."""
    stats.instructions += acc[0]
    stats.cycles += acc[1]
    stats.int_ops += acc[2]
    stats.float_ops += acc[3]
    stats.branches += acc[4]
    stats.branches_taken += acc[5]
    stats.calls += acc[6]
    stats.returns += acc[7]
    stats.loads += acc[8]
    stats.stores += acc[9]
    stats.bytes_read += acc[10]
    stats.bytes_written += acc[11]
    stats.syscalls += acc[12]
    stats.idle_cycles += acc[13]
    stats.context_switches += acc[14]


def execute_burst(core, decoded, budget: int, stop_on_halt: bool) -> int:
    """Run ``core`` for at most ``budget`` instructions on decoded text.

    Stops early when the core's thread changes (a syscall detached or
    killed it) or — with ``stop_on_halt`` — when HALT executes; those
    state tests run on entry and after SVC/HALT blocks (the only ops
    that can change them).  Returns the executed instruction count.

    Batched-block statistics accumulate in burst-local counters and are
    flushed to ``core.stats`` on every exit path (including a mid-block
    guest fault, where :func:`_account_fault` first reconstructs the
    interrupted block's exact prefix), so the counters are
    interpreter-exact whenever control leaves this function.  Syscall
    handlers run mid-burst and must not read ``core.stats`` — none do:
    the kernel touches counters only via ``attach`` during scheduling,
    which happens between bursts.
    """
    stats = core.stats
    thread = core.thread
    base = decoded.text_base
    entries = decoded.entries
    length = decoded.length
    model_caches = decoded.model_caches
    regs = core.regs
    executed = 0
    check_state = True
    acc = [0] * 16
    try:
        while executed < budget:
            if check_state:
                if core.thread is not thread:
                    break
                if stop_on_halt and core.halted:
                    break
            pc = core.pc
            offset = pc - base
            if offset & 0x3:
                raise AlignmentFault(
                    f"misaligned instruction fetch at {pc:#x}", address=pc, core_id=core.core_id
                )
            index = offset >> 2
            if index < 0 or index >= length:
                raise InstructionFault(
                    f"instruction fetch outside text segment at {pc:#x}", address=pc, core_id=core.core_id
                )
            block = entries[index]
            blen = block.length
            if blen <= budget - executed:
                gprs = regs._values
                compiled = block.compiled
                if compiled is None:
                    hits = block.hits = block.hits + 1
                    if hits >= _COMPILE_THRESHOLD:
                        compiled = block.compiled = _compile_block(block, decoded)
                        if compiled is None:
                            block.hits = -1 << 40  # uncompilable: stop trying
                if compiled is not None:
                    # Hot tier: the whole run as one fused function.
                    # Statistics land as one batched delta; with caches
                    # modelled, leader fetches and D-accesses were
                    # accounted inline and only the repeat-fetch hits
                    # ride the accumulator (slot 15 -> L1i counters).
                    try:
                        compiled(core, gprs)
                    except BaseException:
                        if model_caches:
                            _account_fault_cached(core, acc, block)
                        else:
                            _account_fault(core, acc, block)
                        raise
                    acc[0] += blen
                    if model_caches:
                        acc[1] += block.i_repeat_cycles
                        acc[15] += block.i_repeats
                    else:
                        acc[1] += blen
                    for stat_index, delta in block.items:
                        acc[stat_index] += delta
                    executed += blen
                elif block.fast_ops is not None:
                    # Cache-less closure tier (cold blocks): batched
                    # statistics over the bare architectural closures.
                    try:
                        for op in block.fast_ops:
                            op(core, gprs)
                    except BaseException:
                        _account_fault(core, acc, block)
                        raise
                    acc[0] += blen
                    acc[1] += blen
                    for stat_index, delta in block.items:
                        acc[stat_index] += delta
                    executed += blen
                else:
                    # Cache-modelling cold tier: per-instruction fetch
                    # latencies via the self-accounting closures (still
                    # one bounds check per block, zero dispatch cost).
                    for op in block.step_ops:
                        op(core, gprs)
                    executed += blen
                check_state = block.recheck
            else:
                # The budget ends inside this block: deopt to exact
                # per-instruction stepping so stop_at_instruction pauses
                # on the precise boundary (schedule-neutral resume).
                step_ops = decoded.step_ops
                while executed < budget:
                    if core.thread is not thread:
                        break
                    if stop_on_halt and core.halted:
                        break
                    pc = core.pc
                    offset = pc - base
                    if offset & 0x3:
                        raise AlignmentFault(
                            f"misaligned instruction fetch at {pc:#x}", address=pc, core_id=core.core_id
                        )
                    index = offset >> 2
                    if index < 0 or index >= length:
                        raise InstructionFault(
                            f"instruction fetch outside text segment at {pc:#x}",
                            address=pc,
                            core_id=core.core_id,
                        )
                    step_ops[index](core, regs._values)
                    executed += 1
                break
    finally:
        _flush(stats, acc)
        repeats = acc[15]
        if repeats:
            # Batched repeat fetches: each one is an L1i read hit at hit
            # latency (the cycles already flushed through acc[1]).
            istats = core.caches.l1i.stats
            istats.hits += repeats
            istats.read_accesses += repeats
    return executed
