"""CPU core model: instruction-accurate execution with statistics.

Two execution paths share one architectural model: the reference
interpreter (:meth:`Core.step`) and the pre-decoded basic-block engine
(:mod:`repro.cpu.engine`) that the SoC burst loop uses by default.
"""

from repro.cpu.core import Core
from repro.cpu.statistics import CoreStats

__all__ = ["Core", "CoreStats"]
