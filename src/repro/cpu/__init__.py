"""CPU core model: instruction-accurate execution with statistics."""

from repro.cpu.core import Core
from repro.cpu.statistics import CoreStats

__all__ = ["Core", "CoreStats"]
