"""Hardware floating point unit helpers (v8 only).

FP register values are stored as raw IEEE-754 bit patterns.  The FPU
converts to Python floats for computation and back, which matches
IEEE-754 double precision arithmetic — the precision of the v8 hardware
FP unit.  The v7 architecture has no FPU: its programs call the guest
software float library (:mod:`repro.runtime.softfloat`) instead.
"""

from __future__ import annotations

import math
import struct

# Pre-bound Struct methods: skips the per-call format-string cache
# lookup of the module-level struct functions on the hottest paths.
_PACK_Q = struct.Struct("<Q").pack
_UNPACK_D = struct.Struct("<d").unpack
_PACK_D = struct.Struct("<d").pack
_UNPACK_Q = struct.Struct("<Q").unpack
_PACK_I = struct.Struct("<I").pack
_UNPACK_F = struct.Struct("<f").unpack
_PACK_F = struct.Struct("<f").pack
_UNPACK_I = struct.Struct("<I").unpack


def bits_to_double(bits: int) -> float:
    return _UNPACK_D(_PACK_Q(bits & 0xFFFFFFFFFFFFFFFF))[0]


def double_to_bits(value: float) -> int:
    try:
        return _UNPACK_Q(_PACK_D(value))[0]
    except (OverflowError, ValueError):
        return _UNPACK_Q(_PACK_D(math.inf if value > 0 else -math.inf))[0]


def bits_to_single(bits: int) -> float:
    return _UNPACK_F(_PACK_I(bits & 0xFFFFFFFF))[0]


def single_to_bits(value: float) -> int:
    try:
        return _UNPACK_I(_PACK_F(value))[0]
    except (OverflowError, ValueError):
        return _UNPACK_I(_PACK_F(math.inf if value > 0 else -math.inf))[0]


def fp_binary(op: str, a: float, b: float) -> float:
    """Evaluate one FP binary operation with IEEE-style special cases."""
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0.0:
            if a == 0.0 or math.isnan(a):
                return math.nan
            return math.inf if (a > 0) == (b >= 0 and not math.copysign(1, b) < 0) else -math.inf
        return a / b
    if op == "min":
        return min(a, b)
    if op == "max":
        return max(a, b)
    raise ValueError(f"unknown FP operation {op!r}")


def fp_sqrt(a: float) -> float:
    if a < 0 or math.isnan(a):
        return math.nan
    return math.sqrt(a)


def fp_compare(a: float, b: float) -> tuple[bool, bool, bool, bool]:
    """NZCV flags for an FCMP, following the ARM convention.

    Unordered comparisons (either operand NaN) set C and V.
    """
    if math.isnan(a) or math.isnan(b):
        return False, False, True, True
    if a == b:
        return False, True, True, False
    if a < b:
        return True, False, False, False
    return False, False, True, False


def float_to_int(value: float, xlen: int) -> int:
    """Truncating float-to-signed-int conversion with saturation."""
    if math.isnan(value):
        return 0
    limit = 1 << (xlen - 1)
    if value >= limit:
        return limit - 1
    if value < -limit:
        return (1 << xlen) - limit
    return int(value) & ((1 << xlen) - 1)
