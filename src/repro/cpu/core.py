"""Instruction-accurate CPU core.

One :class:`Core` models a single hardware core of the simulated
processor.  The kernel scheduler attaches guest threads to cores; the
core then executes the thread's text one instruction per :meth:`step`
call, updating its statistics and raising :class:`~repro.errors.GuestFault`
subclasses on processor exceptions.

The core is deliberately architectural: there is no pipeline model.
Timing is approximated by per-instruction and cache-latency cycle
counts, which feed the profiling statistics the paper's data-mining
stage consumes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cpu import alu, fpu
from repro.cpu import engine as block_engine
from repro.cpu.engine import COND_FUNCS
from repro.cpu.statistics import CoreStats
from repro.errors import AlignmentFault, InstructionFault, SimulatorError
from repro.isa.arch import ArchSpec
from repro.isa.instructions import Cond, Instr, Op
from repro.isa.registers import FloatRegisterFile, RegisterFile
from repro.memory.hierarchy import CacheHierarchy
from repro.memory.main_memory import AddressSpace


class CoreContext:
    """Snapshot of the architectural state of a core (for context switches)."""

    __slots__ = ("gprs", "fprs", "pc", "flags")

    def __init__(self, gprs, fprs, pc, flags):
        self.gprs = gprs
        self.fprs = fprs
        self.pc = pc
        self.flags = flags


class Core:
    """A single simulated CPU core."""

    # Slots matter for throughput: the execution engine stores the PC
    # and NZCV flags through these attributes in every decoded block.
    __slots__ = (
        "core_id",
        "arch",
        "regs",
        "fregs",
        "pc",
        "flag_n",
        "flag_z",
        "flag_c",
        "flag_v",
        "caches",
        "model_caches",
        "syscall_handler",
        "stats",
        "text",
        "text_base",
        "mem",
        "thread",
        "halted",
        "trace_hook",
        "use_engine",
        "_decoded",
    )

    def __init__(
        self,
        core_id: int,
        arch: ArchSpec,
        caches: Optional[CacheHierarchy] = None,
        syscall_handler: Optional[Callable[["Core", int], None]] = None,
        model_caches: bool = True,
        use_engine: bool = True,
    ) -> None:
        self.core_id = core_id
        self.arch = arch
        self.regs = RegisterFile(arch)
        self.fregs = FloatRegisterFile(arch)
        self.pc = 0
        self.flag_n = False
        self.flag_z = False
        self.flag_c = False
        self.flag_v = False
        self.caches = caches
        self.model_caches = model_caches and caches is not None
        self.syscall_handler = syscall_handler
        self.stats = CoreStats()
        # Execution context, populated when a thread is attached.
        self.text: list[Instr] = []
        self.text_base = 0
        self.mem: Optional[AddressSpace] = None
        self.thread = None
        self.halted = False
        #: optional per-instruction callback ``hook(core, pc)`` used by the
        #: functional profiler; a non-None hook forces the per-instruction
        #: interpreter (the engine deopt path)
        self.trace_hook = None
        #: False pins this core to the reference interpreter (:meth:`step`
        #: in a loop); the differential tests compare both paths
        self.use_engine = use_engine
        #: per-core reference to the decoded view of ``self.text``
        self._decoded = None

    # -- architectural state handling -----------------------------------------

    def reset(self) -> None:
        self.regs.reset()
        self.fregs.reset()
        self.pc = 0
        self.flag_n = self.flag_z = self.flag_c = self.flag_v = False
        self.halted = False
        self.thread = None
        self.text = []
        self.mem = None
        self._decoded = None

    def invalidate_decode(self) -> None:
        """Drop this core's decoded-text reference.

        The engine re-decodes (usually a cache hit) on the next burst.
        Called after state mutations that could interact with decode
        specialization: the engine specializes only on instruction
        encodings — never on register, flag or memory values — so this
        is a cheap, conservative barrier that keeps the invalidation
        contract explicit at every fault-injection site.  Mutating the
        *text* itself additionally requires
        :func:`repro.cpu.engine.invalidate_text`.
        """
        self._decoded = None

    def save_context(self) -> CoreContext:
        return CoreContext(
            self.regs.snapshot(),
            self.fregs.snapshot(),
            self.pc,
            (self.flag_n, self.flag_z, self.flag_c, self.flag_v),
        )

    def load_context(self, context: CoreContext) -> None:
        self.regs.restore(context.gprs)
        self.fregs.restore(context.fprs)
        self.pc = context.pc
        self.flag_n, self.flag_z, self.flag_c, self.flag_v = context.flags

    def capture_state(self) -> dict:
        """Checkpoint view of this core: architectural state plus counters.

        Thread attachment and cache contents are captured separately by
        the checkpoint subsystem because both reference objects owned by
        other layers (kernel threads, the shared L2).
        """
        return {
            "gprs": self.regs.snapshot(),
            "fprs": self.fregs.snapshot(),
            "pc": self.pc,
            "flags": (self.flag_n, self.flag_z, self.flag_c, self.flag_v),
            "halted": self.halted,
            "stats": self.stats.counters(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore architectural state and counters captured by :meth:`capture_state`."""
        self.regs.restore(state["gprs"])
        self.fregs.restore(state["fprs"])
        self.pc = state["pc"]
        self.flag_n, self.flag_z, self.flag_c, self.flag_v = state["flags"]
        self.halted = state["halted"]
        self.stats = CoreStats.from_counters(state["stats"])

    def architectural_state(self) -> tuple:
        """Hashable view of the architectural state (for ONA detection)."""
        return (
            self.regs.snapshot(),
            self.fregs.snapshot(),
            self.pc,
            self.flag_n,
            self.flag_z,
            self.flag_c,
            self.flag_v,
        )

    @property
    def is_idle(self) -> bool:
        return self.thread is None

    # -- condition evaluation ---------------------------------------------------

    def condition_holds(self, cond: Cond) -> bool:
        # Table lookup keyed by the Cond enum value (no if-chain): one
        # index instead of up to eleven comparisons per evaluation.
        if isinstance(cond, int) and 0 <= cond < len(COND_FUNCS):
            return COND_FUNCS[cond](self)
        raise SimulatorError(f"unknown condition {cond!r}")

    # -- execution ---------------------------------------------------------------

    def step(self) -> None:
        """Fetch, decode and execute a single instruction.

        This is the reference interpreter (the engine's ``slow_path``):
        the pre-decoded block engine in :mod:`repro.cpu.engine` must be
        bit-identical to it at every instruction boundary, which the
        differential tests assert.
        """
        pc = self.pc
        offset = pc - self.text_base
        if offset & 0x3:
            raise AlignmentFault(f"misaligned instruction fetch at {pc:#x}", address=pc, core_id=self.core_id)
        index = offset >> 2
        if index < 0 or index >= len(self.text):
            raise InstructionFault(f"instruction fetch outside text segment at {pc:#x}", address=pc, core_id=self.core_id)
        instr = self.text[index]
        if self.trace_hook is not None:
            self.trace_hook(self, pc)
        self.pc = pc + 4
        if self.model_caches:
            self.stats.cycles += self.caches.fetch(pc)
        else:
            self.stats.cycles += 1
        # Array dispatch keyed by the Op enum value (micro-opt over the
        # former dict lookup; undefined opcodes still raise).
        op = instr.op
        handler = _DISPATCH_TABLE[op] if 0 <= op < _DISPATCH_TABLE_LEN else None
        if handler is None:
            raise InstructionFault(f"undefined opcode {instr.op!r} at {pc:#x}", address=pc, core_id=self.core_id)
        handler(self, instr)
        self.stats.instructions += 1

    def run_burst(self, budget: int, stop_on_halt: bool = False) -> int:
        """Run up to ``budget`` instructions; returns the executed count.

        The SoC burst loop calls this once per core per burst instead of
        once per instruction.  Execution uses the pre-decoded block
        engine unless ``use_engine`` is off or a ``trace_hook`` is
        installed (both force the per-instruction interpreter).  Stops
        early when the attached thread changes (syscall detach/kill) or
        — with ``stop_on_halt`` — after HALT.  On a guest fault the
        architectural state *and* statistics are exactly those of the
        interpreter at the raise point.
        """
        if budget <= 0:
            return 0
        if not self.use_engine or self.trace_hook is not None:
            return self._interp_burst(budget, stop_on_halt)
        decoded = self._decoded
        text = self.text
        if (
            decoded is None
            or decoded.text is not text
            or decoded.text_base != self.text_base
            or decoded.stale
        ):
            decoded = block_engine.decode_text(
                text,
                self.text_base,
                self.arch,
                self.model_caches,
                self.caches.l1i.config if self.model_caches else None,
            )
            self._decoded = decoded
        return block_engine.execute_burst(self, decoded, budget, stop_on_halt)

    def _interp_burst(self, budget: int, stop_on_halt: bool) -> int:
        """Reference per-instruction burst (engine deopt path)."""
        start = self.stats.instructions
        executed = 0
        thread = self.thread
        while executed < budget and self.thread is thread:
            if stop_on_halt and self.halted:
                break
            self.step()
            executed = self.stats.instructions - start
        return executed

    def run(self, max_instructions: int) -> int:
        """Run until HALT or the instruction budget is exhausted.

        Intended for bare-metal unit tests; the full system uses the
        kernel's scheduler loop instead.  Returns the number of executed
        instructions.
        """
        return self.run_burst(max_instructions, stop_on_halt=True)

    # -- memory helpers -----------------------------------------------------------

    def _effective_address(self, instr: Instr) -> int:
        base = self.regs.read(instr.rn)
        if instr.rm is None:
            address = base + instr.imm
        else:
            address = base + (self.regs.read(instr.rm) << instr.imm)
        return address & self.arch.word_mask

    def _data_access_cycles(self, address: int, write: bool) -> None:
        # Runs BEFORE the architectural memory operation: a pending cache
        # fault on the touched line must commit to backing memory first,
        # so the consuming load reads the corrupted value and a store to
        # the corrupted byte overwrites (masks) it — the write-back fault
        # semantics repro.memory.cache documents.
        if self.model_caches:
            self.stats.cycles += self.caches.data_access(address, write)

    # -- integer execution handlers ------------------------------------------------

    def _exec_add(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) + self.regs.read(i.rm))
        self.stats.int_ops += 1

    def _exec_sub(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) - self.regs.read(i.rm))
        self.stats.int_ops += 1

    def _exec_rsb(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rm) - self.regs.read(i.rn))
        self.stats.int_ops += 1

    def _exec_mul(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) * self.regs.read(i.rm))
        self.stats.int_ops += 1

    def _exec_mulhu(self, i: Instr) -> None:
        self.regs.write(i.rd, alu.multiply_high_unsigned(self.regs.read(i.rn), self.regs.read(i.rm), self.arch.xlen))
        self.stats.int_ops += 1

    def _exec_udiv(self, i: Instr) -> None:
        self.regs.write(i.rd, alu.unsigned_divide(self.regs.read(i.rn), self.regs.read(i.rm), self.arch.xlen))
        self.stats.int_ops += 1

    def _exec_sdiv(self, i: Instr) -> None:
        self.regs.write(i.rd, alu.signed_divide(self.regs.read(i.rn), self.regs.read(i.rm), self.arch.xlen))
        self.stats.int_ops += 1

    def _exec_and(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) & self.regs.read(i.rm))
        self.stats.int_ops += 1

    def _exec_orr(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) | self.regs.read(i.rm))
        self.stats.int_ops += 1

    def _exec_eor(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) ^ self.regs.read(i.rm))
        self.stats.int_ops += 1

    def _exec_bic(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) & ~self.regs.read(i.rm))
        self.stats.int_ops += 1

    def _exec_lsl(self, i: Instr) -> None:
        amount = self.regs.read(i.rm) & (self.arch.xlen - 1)
        self.regs.write(i.rd, self.regs.read(i.rn) << amount)
        self.stats.int_ops += 1

    def _exec_lsr(self, i: Instr) -> None:
        amount = self.regs.read(i.rm) & (self.arch.xlen - 1)
        self.regs.write(i.rd, self.regs.read(i.rn) >> amount)
        self.stats.int_ops += 1

    def _exec_asr(self, i: Instr) -> None:
        amount = self.regs.read(i.rm) & (self.arch.xlen - 1)
        self.regs.write(i.rd, alu.arithmetic_shift_right(self.regs.read(i.rn), amount, self.arch.xlen))
        self.stats.int_ops += 1

    def _exec_addi(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) + i.imm)
        self.stats.int_ops += 1

    def _exec_subi(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) - i.imm)
        self.stats.int_ops += 1

    def _exec_andi(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) & i.imm)
        self.stats.int_ops += 1

    def _exec_orri(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) | i.imm)
        self.stats.int_ops += 1

    def _exec_eori(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) ^ i.imm)
        self.stats.int_ops += 1

    def _exec_lsli(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) << (i.imm & (self.arch.xlen - 1)))
        self.stats.int_ops += 1

    def _exec_lsri(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) >> (i.imm & (self.arch.xlen - 1)))
        self.stats.int_ops += 1

    def _exec_asri(self, i: Instr) -> None:
        self.regs.write(i.rd, alu.arithmetic_shift_right(self.regs.read(i.rn), i.imm & (self.arch.xlen - 1), self.arch.xlen))
        self.stats.int_ops += 1

    def _exec_muli(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn) * i.imm)
        self.stats.int_ops += 1

    def _exec_mov(self, i: Instr) -> None:
        self.regs.write(i.rd, self.regs.read(i.rn))
        self.stats.int_ops += 1

    def _exec_movi(self, i: Instr) -> None:
        self.regs.write(i.rd, i.imm)
        self.stats.int_ops += 1

    def _exec_mvn(self, i: Instr) -> None:
        self.regs.write(i.rd, ~self.regs.read(i.rn))
        self.stats.int_ops += 1

    def _set_flags(self, n: bool, z: bool, c: bool, v: bool) -> None:
        self.flag_n, self.flag_z, self.flag_c, self.flag_v = n, z, c, v

    def _exec_cmp(self, i: Instr) -> None:
        _, n, z, c, v = alu.sub_flags(self.regs.read(i.rn), self.regs.read(i.rm), self.arch.xlen)
        self._set_flags(n, z, c, v)
        self.stats.int_ops += 1

    def _exec_cmpi(self, i: Instr) -> None:
        _, n, z, c, v = alu.sub_flags(self.regs.read(i.rn), alu.to_unsigned(i.imm, self.arch.xlen), self.arch.xlen)
        self._set_flags(n, z, c, v)
        self.stats.int_ops += 1

    def _exec_tst(self, i: Instr) -> None:
        result = self.regs.read(i.rn) & self.regs.read(i.rm)
        self._set_flags(bool(result >> (self.arch.xlen - 1)), result == 0, self.flag_c, self.flag_v)
        self.stats.int_ops += 1

    def _exec_cset(self, i: Instr) -> None:
        self.regs.write(i.rd, 1 if self.condition_holds(i.cond) else 0)
        self.stats.int_ops += 1

    # -- memory handlers -------------------------------------------------------------

    def _exec_ldr(self, i: Instr) -> None:
        address = self._effective_address(i)
        size = self.arch.word_bytes
        self._data_access_cycles(address, write=False)
        value = self.mem.read(address, size)
        self.regs.write(i.rd, value)
        self.stats.loads += 1
        self.stats.bytes_read += size

    def _exec_str(self, i: Instr) -> None:
        address = self._effective_address(i)
        size = self.arch.word_bytes
        self._data_access_cycles(address, write=True)
        self.mem.write(address, self.regs.read(i.rd), size)
        self.stats.stores += 1
        self.stats.bytes_written += size

    def _exec_ldrb(self, i: Instr) -> None:
        address = self._effective_address(i)
        self._data_access_cycles(address, write=False)
        self.regs.write(i.rd, self.mem.read(address, 1))
        self.stats.loads += 1
        self.stats.bytes_read += 1

    def _exec_strb(self, i: Instr) -> None:
        address = self._effective_address(i)
        self._data_access_cycles(address, write=True)
        self.mem.write(address, self.regs.read(i.rd) & 0xFF, 1)
        self.stats.stores += 1
        self.stats.bytes_written += 1

    # -- control flow handlers ---------------------------------------------------------

    def _branch_to_index(self, index: int) -> None:
        self.pc = self.text_base + 4 * index

    def _exec_b(self, i: Instr) -> None:
        self.stats.branches += 1
        self.stats.branches_taken += 1
        self._branch_to_index(i.imm)

    def _exec_bcc(self, i: Instr) -> None:
        self.stats.branches += 1
        if self.condition_holds(i.cond):
            self.stats.branches_taken += 1
            self._branch_to_index(i.imm)

    def _exec_cbz(self, i: Instr) -> None:
        self.stats.branches += 1
        if self.regs.read(i.rn) == 0:
            self.stats.branches_taken += 1
            self._branch_to_index(i.imm)

    def _exec_cbnz(self, i: Instr) -> None:
        self.stats.branches += 1
        if self.regs.read(i.rn) != 0:
            self.stats.branches_taken += 1
            self._branch_to_index(i.imm)

    def _exec_bl(self, i: Instr) -> None:
        self.regs.write(self.arch.abi.lr, self.pc)
        self.stats.branches += 1
        self.stats.branches_taken += 1
        self.stats.calls += 1
        self._branch_to_index(i.imm)

    def _exec_blr(self, i: Instr) -> None:
        target = self.regs.read(i.rn)
        self.regs.write(self.arch.abi.lr, self.pc)
        self.stats.branches += 1
        self.stats.branches_taken += 1
        self.stats.calls += 1
        self.pc = target

    def _exec_ret(self, i: Instr) -> None:
        self.stats.branches += 1
        self.stats.branches_taken += 1
        self.stats.returns += 1
        self.pc = self.regs.read(self.arch.abi.lr)

    # -- floating point handlers ----------------------------------------------------------

    def _fp_read(self, index: int) -> float:
        return fpu.bits_to_double(self.fregs.read_bits(index))

    def _fp_write(self, index: int, value: float) -> None:
        self.fregs.write_bits(index, fpu.double_to_bits(value))

    def _exec_fp_binary(self, i: Instr, op: str) -> None:
        self._fp_write(i.rd, fpu.fp_binary(op, self._fp_read(i.rn), self._fp_read(i.rm)))
        self.stats.float_ops += 1

    def _exec_fadd(self, i: Instr) -> None:
        self._exec_fp_binary(i, "add")

    def _exec_fsub(self, i: Instr) -> None:
        self._exec_fp_binary(i, "sub")

    def _exec_fmul(self, i: Instr) -> None:
        self._exec_fp_binary(i, "mul")

    def _exec_fdiv(self, i: Instr) -> None:
        self._exec_fp_binary(i, "div")

    def _exec_fmin(self, i: Instr) -> None:
        self._exec_fp_binary(i, "min")

    def _exec_fmax(self, i: Instr) -> None:
        self._exec_fp_binary(i, "max")

    def _exec_fsqrt(self, i: Instr) -> None:
        self._fp_write(i.rd, fpu.fp_sqrt(self._fp_read(i.rn)))
        self.stats.float_ops += 1

    def _exec_fneg(self, i: Instr) -> None:
        self._fp_write(i.rd, -self._fp_read(i.rn))
        self.stats.float_ops += 1

    def _exec_fabs(self, i: Instr) -> None:
        self._fp_write(i.rd, abs(self._fp_read(i.rn)))
        self.stats.float_ops += 1

    def _exec_fcmp(self, i: Instr) -> None:
        n, z, c, v = fpu.fp_compare(self._fp_read(i.rn), self._fp_read(i.rm))
        self._set_flags(n, z, c, v)
        self.stats.float_ops += 1

    def _exec_fmov(self, i: Instr) -> None:
        self.fregs.write_bits(i.rd, self.fregs.read_bits(i.rn))
        self.stats.float_ops += 1

    def _exec_fmovi(self, i: Instr) -> None:
        self.fregs.write_bits(i.rd, i.imm)
        self.stats.float_ops += 1

    def _exec_fldr(self, i: Instr) -> None:
        address = self._effective_address(i)
        size = self.arch.float_bytes
        self._data_access_cycles(address, write=False)
        bits = self.mem.read(address, size)
        if size == 4:
            bits = fpu.double_to_bits(fpu.bits_to_single(bits))
        self.fregs.write_bits(i.rd, bits)
        self.stats.loads += 1
        self.stats.float_ops += 1
        self.stats.bytes_read += size

    def _exec_fstr(self, i: Instr) -> None:
        address = self._effective_address(i)
        size = self.arch.float_bytes
        self._data_access_cycles(address, write=True)
        bits = self.fregs.read_bits(i.rd)
        if size == 4:
            bits = fpu.single_to_bits(fpu.bits_to_double(bits))
        self.mem.write(address, bits, size)
        self.stats.stores += 1
        self.stats.float_ops += 1
        self.stats.bytes_written += size

    def _exec_scvtf(self, i: Instr) -> None:
        self._fp_write(i.rd, float(self.regs.read_signed(i.rn)))
        self.stats.float_ops += 1

    def _exec_fcvtzs(self, i: Instr) -> None:
        self.regs.write(i.rd, fpu.float_to_int(self._fp_read(i.rn), self.arch.xlen))
        self.stats.float_ops += 1

    def _exec_fmovrg(self, i: Instr) -> None:
        self.fregs.write_bits(i.rd, self.regs.read(i.rn))
        self.stats.float_ops += 1

    def _exec_fmovgr(self, i: Instr) -> None:
        self.regs.write(i.rd, self.fregs.read_bits(i.rn))
        self.stats.float_ops += 1

    # -- system handlers ----------------------------------------------------------------------

    def _exec_svc(self, i: Instr) -> None:
        self.stats.syscalls += 1
        if self.syscall_handler is None:
            raise SimulatorError("SVC executed but no syscall handler installed (bare-metal core)")
        self.syscall_handler(self, i.imm)

    def _exec_nop(self, i: Instr) -> None:
        pass

    def _exec_halt(self, i: Instr) -> None:
        self.halted = True

    def _exec_wfi(self, i: Instr) -> None:
        self.stats.idle_cycles += 1


#: Opcode -> bound handler (kept as the authoritative mapping; the
#: interpreter dispatches through the array built from it below).
_DISPATCH = {
    Op.ADD: Core._exec_add,
    Op.SUB: Core._exec_sub,
    Op.RSB: Core._exec_rsb,
    Op.MUL: Core._exec_mul,
    Op.MULHU: Core._exec_mulhu,
    Op.UDIV: Core._exec_udiv,
    Op.SDIV: Core._exec_sdiv,
    Op.AND: Core._exec_and,
    Op.ORR: Core._exec_orr,
    Op.EOR: Core._exec_eor,
    Op.BIC: Core._exec_bic,
    Op.LSL: Core._exec_lsl,
    Op.LSR: Core._exec_lsr,
    Op.ASR: Core._exec_asr,
    Op.ADDI: Core._exec_addi,
    Op.SUBI: Core._exec_subi,
    Op.ANDI: Core._exec_andi,
    Op.ORRI: Core._exec_orri,
    Op.EORI: Core._exec_eori,
    Op.LSLI: Core._exec_lsli,
    Op.LSRI: Core._exec_lsri,
    Op.ASRI: Core._exec_asri,
    Op.MULI: Core._exec_muli,
    Op.MOV: Core._exec_mov,
    Op.MOVI: Core._exec_movi,
    Op.MVN: Core._exec_mvn,
    Op.CMP: Core._exec_cmp,
    Op.CMPI: Core._exec_cmpi,
    Op.TST: Core._exec_tst,
    Op.CSET: Core._exec_cset,
    Op.LDR: Core._exec_ldr,
    Op.STR: Core._exec_str,
    Op.LDRB: Core._exec_ldrb,
    Op.STRB: Core._exec_strb,
    Op.B: Core._exec_b,
    Op.BCC: Core._exec_bcc,
    Op.CBZ: Core._exec_cbz,
    Op.CBNZ: Core._exec_cbnz,
    Op.BL: Core._exec_bl,
    Op.BLR: Core._exec_blr,
    Op.RET: Core._exec_ret,
    Op.FADD: Core._exec_fadd,
    Op.FSUB: Core._exec_fsub,
    Op.FMUL: Core._exec_fmul,
    Op.FDIV: Core._exec_fdiv,
    Op.FMIN: Core._exec_fmin,
    Op.FMAX: Core._exec_fmax,
    Op.FSQRT: Core._exec_fsqrt,
    Op.FNEG: Core._exec_fneg,
    Op.FABS: Core._exec_fabs,
    Op.FCMP: Core._exec_fcmp,
    Op.FMOV: Core._exec_fmov,
    Op.FMOVI: Core._exec_fmovi,
    Op.FLDR: Core._exec_fldr,
    Op.FSTR: Core._exec_fstr,
    Op.SCVTF: Core._exec_scvtf,
    Op.FCVTZS: Core._exec_fcvtzs,
    Op.FMOVRG: Core._exec_fmovrg,
    Op.FMOVGR: Core._exec_fmovgr,
    Op.SVC: Core._exec_svc,
    Op.NOP: Core._exec_nop,
    Op.HALT: Core._exec_halt,
    Op.WFI: Core._exec_wfi,
}

#: Dense handler array indexed by Op value: ``_DISPATCH_TABLE[op]`` is a
#: single list index instead of a dict hash per instruction.  Holes (and
#: out-of-range values, guarded in :meth:`Core.step`) are undefined
#: opcodes and raise :class:`InstructionFault`.
_DISPATCH_TABLE_LEN = max(int(op) for op in Op) + 1
_DISPATCH_TABLE: list = [None] * _DISPATCH_TABLE_LEN
for _op, _handler in _DISPATCH.items():
    _DISPATCH_TABLE[_op] = _handler
del _op, _handler
