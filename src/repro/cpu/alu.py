"""Integer ALU helpers: signed interpretation and flag computation."""

from __future__ import annotations


def to_signed(value: int, xlen: int) -> int:
    """Interpret an ``xlen``-bit unsigned value as two's-complement."""
    sign_bit = 1 << (xlen - 1)
    if value & sign_bit:
        return value - (1 << xlen)
    return value


def to_unsigned(value: int, xlen: int) -> int:
    """Mask a (possibly negative) Python int to ``xlen`` bits."""
    return value & ((1 << xlen) - 1)


def add_flags(a: int, b: int, xlen: int) -> tuple[int, bool, bool, bool, bool]:
    """Compute a + b and the NZCV flags for an ``xlen``-bit addition."""
    mask = (1 << xlen) - 1
    result = (a + b) & mask
    n = bool(result >> (xlen - 1))
    z = result == 0
    c = (a + b) > mask
    sa, sb, sr = to_signed(a, xlen), to_signed(b, xlen), to_signed(result, xlen)
    v = (sa >= 0) == (sb >= 0) and (sr >= 0) != (sa >= 0)
    return result, n, z, c, v


def sub_flags(a: int, b: int, xlen: int) -> tuple[int, bool, bool, bool, bool]:
    """Compute a - b and the NZCV flags (ARM convention: C = no borrow)."""
    mask = (1 << xlen) - 1
    result = (a - b) & mask
    n = bool(result >> (xlen - 1))
    z = result == 0
    c = a >= b
    sa, sb, sr = to_signed(a, xlen), to_signed(b, xlen), to_signed(result, xlen)
    v = (sa >= 0) != (sb >= 0) and (sr >= 0) != (sa >= 0)
    return result, n, z, c, v


def signed_divide(a: int, b: int, xlen: int) -> int:
    """ARM-style SDIV: truncating division, divide-by-zero yields 0."""
    sa, sb = to_signed(a, xlen), to_signed(b, xlen)
    if sb == 0:
        return 0
    quotient = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        quotient = -quotient
    return to_unsigned(quotient, xlen)


def unsigned_divide(a: int, b: int, xlen: int) -> int:
    """ARM-style UDIV: divide-by-zero yields 0."""
    if b == 0:
        return 0
    return to_unsigned(a // b, xlen)


def multiply_high_unsigned(a: int, b: int, xlen: int) -> int:
    """Upper ``xlen`` bits of the ``2*xlen``-bit product of a and b."""
    return ((a * b) >> xlen) & ((1 << xlen) - 1)


def arithmetic_shift_right(value: int, amount: int, xlen: int) -> int:
    """Arithmetic (sign-propagating) right shift of an unsigned pattern."""
    amount = min(amount & (2 * xlen - 1), xlen - 1) if amount >= xlen else amount
    return to_unsigned(to_signed(value, xlen) >> amount, xlen)
