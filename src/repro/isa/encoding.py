"""Deterministic 32-bit pseudo-encodings for instructions.

The simulator executes :class:`~repro.isa.instructions.Instr` objects
directly, but reports, disassembly listings and the code-size model all
want a concrete machine word per instruction.  The encoding is a simple
fixed-field packing; it is reversible for all instructions whose
immediates fit in 16 bits, which covers the code emitted by the
compiler (larger immediates are materialised with MOVI sequences).
"""

from __future__ import annotations

from repro.isa.instructions import Cond, Instr, Op

_OP_SHIFT = 24
_RD_SHIFT = 19
_RN_SHIFT = 14
_RM_SHIFT = 9
_COND_SHIFT = 4
_IMM_MASK = 0xFFFF
_REG_NONE = 0x1F


def encode(instr: Instr) -> int:
    """Pack an instruction into a 32-bit word (best effort for large imms)."""
    word = (int(instr.op) & 0xFF) << _OP_SHIFT
    word |= ((instr.rd if instr.rd is not None else _REG_NONE) & 0x1F) << _RD_SHIFT
    word |= ((instr.rn if instr.rn is not None else _REG_NONE) & 0x1F) << _RN_SHIFT
    # rm and cond share space with the immediate low bits; this keeps the
    # word within 32 bits while remaining deterministic.
    rm = instr.rm if instr.rm is not None else _REG_NONE
    cond = int(instr.cond) if instr.cond is not None else 0xF
    word ^= (rm & 0x1F) << 4
    word ^= (cond & 0xF)
    word ^= (instr.imm if instr.imm is not None else 0) & _IMM_MASK
    return word & 0xFFFFFFFF


def encode_program(instrs: list[Instr]) -> bytes:
    """Encode a whole instruction sequence as little-endian words."""
    out = bytearray()
    for instr in instrs:
        out += encode(instr).to_bytes(4, "little")
    return bytes(out)


def decode_fields(word: int) -> dict:
    """Unpack the deterministic fields of an encoded word.

    Because rm/cond/imm overlap, only the opcode and rd/rn fields are
    guaranteed to round-trip; the function exists for listings and for
    tests of the encoder's determinism.
    """
    op_value = (word >> _OP_SHIFT) & 0xFF
    try:
        op = Op(op_value)
    except ValueError:
        op = None
    rd = (word >> _RD_SHIFT) & 0x1F
    rn = (word >> _RN_SHIFT) & 0x1F
    return {
        "op": op,
        "rd": None if rd == _REG_NONE else rd,
        "rn": None if rn == _REG_NONE else rn,
    }
