"""Instruction definitions shared by the assembler, compiler and CPU core.

Instructions are represented as light-weight Python objects rather than
bit-encoded words; the simulator is instruction-accurate, not a binary
translator.  Each instruction nevertheless has a deterministic 32-bit
pseudo-encoding (see :mod:`repro.isa.encoding`) so that reports can show
"machine code" and so that code memory occupies realistic space.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Optional


class Op(IntEnum):
    """Opcodes of the synthetic RISC instruction set."""

    # Integer register-register arithmetic / logic.
    ADD = 1
    SUB = 2
    RSB = 3
    MUL = 4
    MULHU = 5
    UDIV = 6
    SDIV = 7
    AND = 8
    ORR = 9
    EOR = 10
    BIC = 11
    LSL = 12
    LSR = 13
    ASR = 14

    # Integer register-immediate arithmetic / logic.
    ADDI = 20
    SUBI = 21
    ANDI = 22
    ORRI = 23
    EORI = 24
    LSLI = 25
    LSRI = 26
    ASRI = 27
    MULI = 28

    # Moves and compares.
    MOV = 30
    MOVI = 31
    MVN = 32
    CMP = 33
    CMPI = 34
    TST = 35
    CSET = 36  # rd = 1 if condition holds else 0

    # Memory access.  rn is the base register; either an immediate byte
    # offset (rm is None) or an index register scaled by ``imm`` bits.
    LDR = 40
    STR = 41
    LDRB = 42
    STRB = 43

    # Control flow.  Branch targets are instruction indices resolved by
    # the linker and stored in ``imm``.
    B = 50
    BCC = 51
    CBZ = 52
    CBNZ = 53
    BL = 54
    BLR = 55
    RET = 56

    # Hardware floating point (v8 only; the v7 compiler never emits
    # these and instead calls the guest software float library).
    FADD = 60
    FSUB = 61
    FMUL = 62
    FDIV = 63
    FSQRT = 64
    FNEG = 65
    FABS = 66
    FMIN = 67
    FMAX = 68
    FCMP = 69
    FMOV = 70
    FMOVI = 71
    FLDR = 72
    FSTR = 73
    SCVTF = 74  # signed int -> float
    FCVTZS = 75  # float -> signed int (truncating)
    FMOVRG = 76  # GPR bit pattern -> FPR
    FMOVGR = 77  # FPR -> GPR bit pattern

    # System.
    SVC = 80
    NOP = 81
    HALT = 82
    WFI = 83


class Cond(IntEnum):
    """Condition codes for conditional branches and CSET."""

    EQ = 0
    NE = 1
    LT = 2
    GE = 3
    GT = 4
    LE = 5
    LO = 6  # unsigned lower
    HS = 7  # unsigned higher-or-same
    MI = 8
    PL = 9
    AL = 10


#: Opcodes that read or write data memory.
MEMORY_OPS = frozenset({Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.FLDR, Op.FSTR})

#: Opcodes that load from data memory.
LOAD_OPS = frozenset({Op.LDR, Op.LDRB, Op.FLDR})

#: Opcodes that store to data memory.
STORE_OPS = frozenset({Op.STR, Op.STRB, Op.FSTR})

#: Opcodes that may change control flow.
BRANCH_OPS = frozenset({Op.B, Op.BCC, Op.CBZ, Op.CBNZ, Op.BL, Op.BLR, Op.RET})

#: Opcodes that end a pre-decoded superblock (see :mod:`repro.cpu.engine`):
#: control flow (the next PC is dynamic), SVC (the kernel may detach or
#: kill the running thread) and HALT (bare-metal runs stop on it).
BLOCK_TERMINATOR_OPS = BRANCH_OPS | frozenset({Op.SVC, Op.HALT})

#: Opcodes that transfer control to a subroutine.
CALL_OPS = frozenset({Op.BL, Op.BLR})

#: Floating point opcodes (computation and data movement).
FLOAT_OPS = frozenset(
    {
        Op.FADD,
        Op.FSUB,
        Op.FMUL,
        Op.FDIV,
        Op.FSQRT,
        Op.FNEG,
        Op.FABS,
        Op.FMIN,
        Op.FMAX,
        Op.FCMP,
        Op.FMOV,
        Op.FMOVI,
        Op.FLDR,
        Op.FSTR,
        Op.SCVTF,
        Op.FCVTZS,
        Op.FMOVRG,
        Op.FMOVGR,
    }
)


class Instr:
    """A single machine instruction.

    Fields are interpreted per-opcode; unused fields stay ``None``/0.

    rd, rn, rm
        Destination and source register indices.  For floating point
        opcodes these index the FP register file (except the GPR side of
        ``FMOVRG``/``FMOVGR`` and the base register of ``FLDR``/``FSTR``).
    imm
        Immediate operand: arithmetic immediate, memory byte offset or
        index scale, branch target (instruction index) or float bit
        pattern for ``FMOVI``.
    cond
        Condition code for ``BCC`` and ``CSET``.
    label
        Unresolved symbolic branch target; replaced by the linker.
    """

    __slots__ = ("op", "rd", "rn", "rm", "imm", "cond", "label")

    def __init__(
        self,
        op: Op,
        rd: Optional[int] = None,
        rn: Optional[int] = None,
        rm: Optional[int] = None,
        imm: int = 0,
        cond: Optional[Cond] = None,
        label: Optional[str] = None,
    ) -> None:
        self.op = op
        self.rd = rd
        self.rn = rn
        self.rm = rm
        self.imm = imm
        self.cond = cond
        self.label = label

    def copy(self) -> "Instr":
        return Instr(self.op, self.rd, self.rn, self.rm, self.imm, self.cond, self.label)

    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS

    def is_memory(self) -> bool:
        return self.op in MEMORY_OPS

    def is_float(self) -> bool:
        return self.op in FLOAT_OPS

    def is_call(self) -> bool:
        return self.op in CALL_OPS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.name]
        for attr in ("rd", "rn", "rm"):
            value = getattr(self, attr)
            if value is not None:
                parts.append(f"{attr}={value}")
        if self.imm:
            parts.append(f"imm={self.imm}")
        if self.cond is not None:
            parts.append(f"cond={self.cond.name}")
        if self.label is not None:
            parts.append(f"label={self.label}")
        return f"Instr({', '.join(parts)})"


def format_instr(instr: Instr, arch=None) -> str:
    """Render an instruction as human readable assembly text."""
    reg = "x" if arch is not None and arch.xlen == 64 else "r"

    def r(idx: Optional[int]) -> str:
        if idx is None:
            return "-"
        return f"{reg}{idx}"

    op = instr.op
    if op in (Op.B, Op.BL):
        target = instr.label if instr.label is not None else f"#{instr.imm}"
        return f"{op.name.lower()} {target}"
    if op == Op.BCC:
        target = instr.label if instr.label is not None else f"#{instr.imm}"
        return f"b.{instr.cond.name.lower()} {target}"
    if op in (Op.CBZ, Op.CBNZ):
        target = instr.label if instr.label is not None else f"#{instr.imm}"
        return f"{op.name.lower()} {r(instr.rn)}, {target}"
    if op in (Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.FLDR, Op.FSTR):
        dst = f"d{instr.rd}" if op in (Op.FLDR, Op.FSTR) else r(instr.rd)
        if instr.rm is None:
            return f"{op.name.lower()} {dst}, [{r(instr.rn)}, #{instr.imm}]"
        return f"{op.name.lower()} {dst}, [{r(instr.rn)}, {r(instr.rm)}, lsl #{instr.imm}]"
    if op == Op.SVC:
        return f"svc #{instr.imm}"
    if op in (Op.NOP, Op.HALT, Op.WFI, Op.RET):
        return op.name.lower()
    if op == Op.MOVI:
        return f"movi {r(instr.rd)}, #{instr.imm}"
    if op == Op.CMPI:
        return f"cmpi {r(instr.rn)}, #{instr.imm}"
    if op == Op.CSET:
        return f"cset {r(instr.rd)}, {instr.cond.name.lower()}"
    pieces = [x for x in (r(instr.rd), r(instr.rn), r(instr.rm)) if x != "-"]
    if op in (Op.ADDI, Op.SUBI, Op.ANDI, Op.ORRI, Op.EORI, Op.LSLI, Op.LSRI, Op.ASRI, Op.MULI):
        pieces = [r(instr.rd), r(instr.rn), f"#{instr.imm}"]
    return f"{op.name.lower()} {', '.join(pieces)}"
