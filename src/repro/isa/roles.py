"""Machine-readable operand roles: the def/use sets of every opcode.

Until now the def/use behaviour of the instruction set lived implicitly
in the interpreter's handlers (:mod:`repro.cpu.core`) and, duplicated,
in the block engine's closures — fine for execution, useless for
analysis.  The static vulnerability analysis (:mod:`repro.staticlint`)
needs to know, per instruction, which registers are *defined* (written)
and which are *used* (read), including the implicit ones the assembly
syntax never shows:

* ``BL``/``BLR`` write the ABI link register (``BLR`` reads its target
  from ``rn`` *before* the write, so ``blr lr`` is well defined);
* ``RET`` reads the link register;
* ``CMP``/``CMPI``/``FCMP`` define all four NZCV flags; ``TST`` defines
  N and Z but *preserves* C and V (so C/V stay live across it);
* ``BCC``/``CSET`` read the flag subset their condition tests;
* ``SVC`` hands the ABI argument registers to the kernel and receives
  the result in the ABI return register;
* stores read their ``rd`` field (it is the *source* operand);
* the FP↔GPR movement opcodes (``FMOVRG``/``FMOVGR``/``SCVTF``/
  ``FCVTZS``) and FP memory ops mix the two register files.

This table is the single authority; a differential test executes every
opcode against the reference interpreter through recording register
files and asserts the observed reads/writes match the declared roles.

Role tokens name instruction fields (``"rd"``/``"rn"``/``"rm"``; a
``None`` field resolves to nothing, so one entry covers both addressing
modes of the memory ops) or ABI registers (``"lr"``, ``"ret"``,
``"args"``), resolved per architecture by :func:`gpr_defs` and friends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Set, Tuple

from repro.errors import SimulatorError
from repro.isa.arch import Abi
from repro.isa.instructions import Cond, Instr, Op

#: Role tokens naming instruction fields.
RD, RN, RM = "rd", "rn", "rm"
#: Role tokens naming ABI registers (resolved against an :class:`Abi`).
LR, RET_REG, ARG_REGS = "lr", "ret", "args"

_FIELD_TOKENS = (RD, RN, RM)
_ABI_TOKENS = (LR, RET_REG, ARG_REGS)

FLAG_N, FLAG_Z, FLAG_C, FLAG_V = "N", "Z", "C", "V"
ALL_FLAGS: FrozenSet[str] = frozenset((FLAG_N, FLAG_Z, FLAG_C, FLAG_V))

#: Flags each condition code reads (mirrors ``COND_FUNCS`` in
#: :mod:`repro.cpu.engine`: EQ/NE test Z, LT/GE test N^V, GT/LE test
#: Z and N^V, LO/HS test C, MI/PL test N, AL tests nothing).
COND_FLAG_USES: dict[Cond, FrozenSet[str]] = {
    Cond.EQ: frozenset((FLAG_Z,)),
    Cond.NE: frozenset((FLAG_Z,)),
    Cond.LT: frozenset((FLAG_N, FLAG_V)),
    Cond.GE: frozenset((FLAG_N, FLAG_V)),
    Cond.GT: frozenset((FLAG_N, FLAG_Z, FLAG_V)),
    Cond.LE: frozenset((FLAG_N, FLAG_Z, FLAG_V)),
    Cond.LO: frozenset((FLAG_C,)),
    Cond.HS: frozenset((FLAG_C,)),
    Cond.MI: frozenset((FLAG_N,)),
    Cond.PL: frozenset((FLAG_N,)),
    Cond.AL: frozenset(),
}


@dataclass(frozen=True)
class OpRoles:
    """Def/use roles of one opcode.

    ``gpr_*``/``fpr_*`` are role tokens; ``flag_defs``/``flag_uses``
    are NZCV letters.  ``uses_cond_flags`` marks opcodes whose flag
    uses depend on the instruction's ``cond`` field (``BCC``/``CSET``)
    — resolve them with :func:`flag_uses`, not from this record alone.
    """

    gpr_defs: Tuple[str, ...] = ()
    gpr_uses: Tuple[str, ...] = ()
    fpr_defs: Tuple[str, ...] = ()
    fpr_uses: Tuple[str, ...] = ()
    flag_defs: FrozenSet[str] = frozenset()
    flag_uses: FrozenSet[str] = frozenset()
    uses_cond_flags: bool = False
    reads_memory: bool = False
    writes_memory: bool = False
    is_call: bool = False
    is_return: bool = False


_INT_RR = OpRoles(gpr_defs=(RD,), gpr_uses=(RN, RM))
_INT_RI = OpRoles(gpr_defs=(RD,), gpr_uses=(RN,))
_FP_RR = OpRoles(fpr_defs=(RD,), fpr_uses=(RN, RM))
_FP_R = OpRoles(fpr_defs=(RD,), fpr_uses=(RN,))

#: The def/use table itself: every opcode of the ISA has exactly one
#: entry (a structural test asserts full coverage against ``Op``).
OPERAND_ROLES: dict[Op, OpRoles] = {
    # integer register-register
    Op.ADD: _INT_RR,
    Op.SUB: _INT_RR,
    Op.RSB: _INT_RR,
    Op.MUL: _INT_RR,
    Op.MULHU: _INT_RR,
    Op.UDIV: _INT_RR,
    Op.SDIV: _INT_RR,
    Op.AND: _INT_RR,
    Op.ORR: _INT_RR,
    Op.EOR: _INT_RR,
    Op.BIC: _INT_RR,
    Op.LSL: _INT_RR,
    Op.LSR: _INT_RR,
    Op.ASR: _INT_RR,
    # integer register-immediate
    Op.ADDI: _INT_RI,
    Op.SUBI: _INT_RI,
    Op.ANDI: _INT_RI,
    Op.ORRI: _INT_RI,
    Op.EORI: _INT_RI,
    Op.LSLI: _INT_RI,
    Op.LSRI: _INT_RI,
    Op.ASRI: _INT_RI,
    Op.MULI: _INT_RI,
    # moves and compares
    Op.MOV: _INT_RI,
    Op.MOVI: OpRoles(gpr_defs=(RD,)),
    Op.MVN: _INT_RI,
    Op.CMP: OpRoles(gpr_uses=(RN, RM), flag_defs=ALL_FLAGS),
    Op.CMPI: OpRoles(gpr_uses=(RN,), flag_defs=ALL_FLAGS),
    # TST writes N/Z from the AND result but re-installs the *old* C/V,
    # so C and V are upstream dependencies, not definitions.
    Op.TST: OpRoles(
        gpr_uses=(RN, RM),
        flag_defs=frozenset((FLAG_N, FLAG_Z)),
        flag_uses=frozenset((FLAG_C, FLAG_V)),
    ),
    Op.CSET: OpRoles(gpr_defs=(RD,), uses_cond_flags=True),
    # memory (rm is None in immediate-offset form and resolves to nothing)
    Op.LDR: OpRoles(gpr_defs=(RD,), gpr_uses=(RN, RM), reads_memory=True),
    Op.STR: OpRoles(gpr_uses=(RD, RN, RM), writes_memory=True),
    Op.LDRB: OpRoles(gpr_defs=(RD,), gpr_uses=(RN, RM), reads_memory=True),
    Op.STRB: OpRoles(gpr_uses=(RD, RN, RM), writes_memory=True),
    # control flow
    Op.B: OpRoles(),
    Op.BCC: OpRoles(uses_cond_flags=True),
    Op.CBZ: OpRoles(gpr_uses=(RN,)),
    Op.CBNZ: OpRoles(gpr_uses=(RN,)),
    Op.BL: OpRoles(gpr_defs=(LR,), is_call=True),
    Op.BLR: OpRoles(gpr_defs=(LR,), gpr_uses=(RN,), is_call=True),
    Op.RET: OpRoles(gpr_uses=(LR,), is_return=True),
    # hardware floating point
    Op.FADD: _FP_RR,
    Op.FSUB: _FP_RR,
    Op.FMUL: _FP_RR,
    Op.FDIV: _FP_RR,
    Op.FMIN: _FP_RR,
    Op.FMAX: _FP_RR,
    Op.FSQRT: _FP_R,
    Op.FNEG: _FP_R,
    Op.FABS: _FP_R,
    Op.FCMP: OpRoles(fpr_uses=(RN, RM), flag_defs=ALL_FLAGS),
    Op.FMOV: _FP_R,
    Op.FMOVI: OpRoles(fpr_defs=(RD,)),
    Op.FLDR: OpRoles(fpr_defs=(RD,), gpr_uses=(RN, RM), reads_memory=True),
    Op.FSTR: OpRoles(fpr_uses=(RD,), gpr_uses=(RN, RM), writes_memory=True),
    Op.SCVTF: OpRoles(fpr_defs=(RD,), gpr_uses=(RN,)),
    Op.FCVTZS: OpRoles(gpr_defs=(RD,), fpr_uses=(RN,)),
    Op.FMOVRG: OpRoles(fpr_defs=(RD,), gpr_uses=(RN,)),
    Op.FMOVGR: OpRoles(gpr_defs=(RD,), fpr_uses=(RN,)),
    # system: SVC's interface contract with the kernel is "arguments in
    # the ABI argument registers, result in the ABI return register"
    # (see repro.kernel.syscalls) — a conservative summary, since a
    # given syscall may read fewer registers.
    Op.SVC: OpRoles(gpr_uses=(ARG_REGS,), gpr_defs=(RET_REG,)),
    Op.NOP: OpRoles(),
    Op.HALT: OpRoles(),
    Op.WFI: OpRoles(),
}


def roles_of(op: Op) -> OpRoles:
    """The :class:`OpRoles` record for one opcode (raises on unknown)."""
    try:
        return OPERAND_ROLES[op]
    except KeyError:
        raise SimulatorError(f"opcode {op!r} has no operand-role entry") from None


def _resolve(tokens: Iterable[str], instr: Instr, abi: Abi) -> Set[int]:
    """Resolve role tokens into concrete register indices."""
    out: Set[int] = set()
    for token in tokens:
        if token in _FIELD_TOKENS:
            value: Optional[int] = getattr(instr, token)
            if value is not None:
                out.add(value)
        elif token == LR:
            out.add(abi.lr)
        elif token == RET_REG:
            out.add(abi.ret_reg)
        elif token == ARG_REGS:
            out.update(abi.arg_regs)
        else:  # pragma: no cover - table construction error
            raise SimulatorError(f"unknown operand-role token {token!r}")
    return out


def gpr_defs(instr: Instr, abi: Abi) -> Set[int]:
    """Integer registers the instruction writes."""
    return _resolve(roles_of(instr.op).gpr_defs, instr, abi)


def gpr_uses(instr: Instr, abi: Abi) -> Set[int]:
    """Integer registers the instruction reads."""
    return _resolve(roles_of(instr.op).gpr_uses, instr, abi)


def fpr_defs(instr: Instr, abi: Abi) -> Set[int]:
    """Floating point registers the instruction writes."""
    return _resolve(roles_of(instr.op).fpr_defs, instr, abi)


def fpr_uses(instr: Instr, abi: Abi) -> Set[int]:
    """Floating point registers the instruction reads."""
    return _resolve(roles_of(instr.op).fpr_uses, instr, abi)


def flag_defs(instr: Instr) -> FrozenSet[str]:
    """NZCV flags the instruction (re)defines."""
    return roles_of(instr.op).flag_defs


def flag_uses(instr: Instr) -> FrozenSet[str]:
    """NZCV flags the instruction reads (condition-dependent for BCC/CSET)."""
    roles = roles_of(instr.op)
    if roles.uses_cond_flags:
        if instr.cond is None:
            return frozenset()
        return COND_FLAG_USES[Cond(instr.cond)]
    return roles.flag_uses
