"""Register file models with bit-flip support.

The fault injector targets individual bits of the general purpose and
floating point register files, so both expose an explicit
:meth:`flip_bit` operation and an iteration API used when the injector
builds its fault target list.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.isa.arch import ArchSpec


class RegisterFile:
    """Integer register file of one core.

    Values are stored as non-negative Python integers masked to the
    architecture word length.  Signed interpretation is performed by the
    ALU where needed.
    """

    def __init__(self, arch: ArchSpec) -> None:
        self.arch = arch
        self.mask = arch.word_mask
        self.num_regs = arch.num_gpr
        self._values = [0] * arch.num_gpr

    def read(self, index: int) -> int:
        return self._values[index]

    def write(self, index: int, value: int) -> None:
        self._values[index] = value & self.mask

    def read_signed(self, index: int) -> int:
        value = self._values[index]
        if value & self.arch.sign_bit:
            return value - (1 << self.arch.xlen)
        return value

    def flip_bit(self, index: int, bit: int) -> int:
        """Flip one bit of one register; returns the new value."""
        if not 0 <= bit < self.arch.xlen:
            raise ValueError(f"bit {bit} out of range for {self.arch.xlen}-bit registers")
        self._values[index] ^= 1 << bit
        return self._values[index]

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self._values)

    def restore(self, snapshot: Sequence[int]) -> None:
        self._values = list(snapshot)

    def reset(self) -> None:
        self._values = [0] * self.num_regs

    def __len__(self) -> int:
        return self.num_regs

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def dump(self) -> dict[str, int]:
        names = self.arch.register_names()
        return {names[i]: self._values[i] for i in range(self.num_regs)}


class FloatRegisterFile:
    """Floating point register file.

    Values are stored as raw IEEE-754 bit patterns (integers) so that
    bit-flips behave exactly like upsets of the physical register, and
    so that NaN payloads survive round trips.
    """

    def __init__(self, arch: ArchSpec) -> None:
        self.arch = arch
        self.num_regs = arch.num_fpr
        self.width = 64 if arch.has_hw_float else 32
        self.mask = (1 << self.width) - 1
        self._values = [0] * max(1, self.num_regs)

    def read_bits(self, index: int) -> int:
        return self._values[index]

    def write_bits(self, index: int, bits: int) -> None:
        self._values[index] = bits & self.mask

    def flip_bit(self, index: int, bit: int) -> int:
        if not 0 <= bit < self.width:
            raise ValueError(f"bit {bit} out of range for {self.width}-bit FP registers")
        self._values[index] ^= 1 << bit
        return self._values[index]

    def snapshot(self) -> tuple[int, ...]:
        return tuple(self._values)

    def restore(self, snapshot: Sequence[int]) -> None:
        self._values = list(snapshot)

    def reset(self) -> None:
        self._values = [0] * max(1, self.num_regs)

    def __len__(self) -> int:
        return self.num_regs

    def __iter__(self) -> Iterator[int]:
        return iter(self._values[: self.num_regs])

    def dump(self) -> dict[str, int]:
        return {f"d{i}": self._values[i] for i in range(self.num_regs)}
