"""Instruction set architecture definitions.

This package defines the two synthetic ISAs used throughout the
reproduction: a 32-bit "v7"-like architecture (16 general purpose
registers, no hardware floating point) and a 64-bit "v8"-like
architecture (32 general purpose registers, hardware floating point).
They stand in for the ARM Cortex-A9 (ARMv7) and Cortex-A72 (ARMv8)
processor models used by the paper.
"""

from repro.isa.arch import ARMV7, ARMV8, ArchSpec, get_arch
from repro.isa.instructions import Cond, Instr, Op
from repro.isa.registers import FloatRegisterFile, RegisterFile

__all__ = [
    "ARMV7",
    "ARMV8",
    "ArchSpec",
    "get_arch",
    "Cond",
    "Instr",
    "Op",
    "RegisterFile",
    "FloatRegisterFile",
]
