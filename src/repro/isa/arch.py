"""Architecture specifications for the two target ISAs.

The paper evaluates the ARM Cortex-A9 (ARMv7, 32-bit) and the ARM
Cortex-A72 (ARMv8, 64-bit).  The properties that drive its findings are
architectural rather than microarchitectural:

* register file size (16 vs 32 integer registers),
* hardware floating point availability (ARMv7 programs fall back to a
  software floating point library selected by the compiler),
* pointer/word width (32 vs 64 bit).

``ArchSpec`` captures exactly those properties plus the ABI register
assignments the code generator relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Abi:
    """Register usage convention for one architecture.

    All fields are register indices into the integer register file,
    except the floating point fields which index the FP register file.
    """

    arg_regs: tuple[int, ...]
    ret_reg: int
    scratch_regs: tuple[int, ...]
    callee_saved: tuple[int, ...]
    sp: int
    lr: int
    gp: int
    fp_arg_regs: tuple[int, ...] = ()
    fp_ret_reg: int = 0
    fp_scratch: tuple[int, ...] = ()
    fp_callee_saved: tuple[int, ...] = ()


@dataclass(frozen=True)
class ArchSpec:
    """Static description of one target instruction set architecture."""

    name: str
    xlen: int
    num_gpr: int
    num_fpr: int
    has_hw_float: bool
    conditional_execution: bool
    linux_kernel: str
    cpu_model: str
    abi: Abi = field(repr=False, default=None)

    @property
    def word_bytes(self) -> int:
        return self.xlen // 8

    @property
    def word_mask(self) -> int:
        return (1 << self.xlen) - 1

    @property
    def sign_bit(self) -> int:
        return 1 << (self.xlen - 1)

    @property
    def float_bytes(self) -> int:
        """Width of the native floating point type.

        The v7 software float library operates on single precision
        values (32-bit); the v8 hardware FP unit operates on double
        precision (64-bit), mirroring the paper's observation that the
        ARMv8 FP unit was significantly improved.
        """
        return 8 if self.has_hw_float else 4

    def register_names(self) -> list[str]:
        prefix = "x" if self.xlen == 64 else "r"
        names = [f"{prefix}{i}" for i in range(self.num_gpr)]
        names[self.abi.sp] = "sp"
        names[self.abi.lr] = "lr"
        return names

    def describe(self) -> dict:
        """Summary dictionary used by profiling reports."""
        return {
            "name": self.name,
            "xlen": self.xlen,
            "num_gpr": self.num_gpr,
            "num_fpr": self.num_fpr,
            "has_hw_float": self.has_hw_float,
            "cpu_model": self.cpu_model,
            "linux_kernel": self.linux_kernel,
        }


_ARMV7_ABI = Abi(
    arg_regs=(0, 1, 2, 3),
    ret_reg=0,
    scratch_regs=(0, 1, 2, 3, 12),
    callee_saved=(4, 5, 6, 7, 8, 9, 10),
    sp=13,
    lr=14,
    gp=11,
)

_ARMV8_ABI = Abi(
    arg_regs=(0, 1, 2, 3, 4, 5, 6, 7),
    ret_reg=0,
    scratch_regs=(0, 1, 2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 13, 14, 15),
    callee_saved=(19, 20, 21, 22, 23, 24, 25, 26, 27),
    sp=31,
    lr=30,
    gp=28,
    fp_arg_regs=(0, 1, 2, 3, 4, 5, 6, 7),
    fp_ret_reg=0,
    fp_scratch=(0, 1, 2, 3, 4, 5, 6, 7, 16, 17, 18, 19, 20, 21, 22, 23),
    fp_callee_saved=(8, 9, 10, 11, 12, 13, 14, 15),
)

#: The 32-bit architecture modelling the ARM Cortex-A9 (ARMv7).
ARMV7 = ArchSpec(
    name="armv7",
    xlen=32,
    num_gpr=16,
    num_fpr=0,
    has_hw_float=False,
    conditional_execution=True,
    linux_kernel="3.13",
    cpu_model="cortex-a9",
    abi=_ARMV7_ABI,
)

#: The 64-bit architecture modelling the ARM Cortex-A72 (ARMv8).
ARMV8 = ArchSpec(
    name="armv8",
    xlen=64,
    num_gpr=32,
    num_fpr=32,
    has_hw_float=True,
    conditional_execution=False,
    linux_kernel="4.3",
    cpu_model="cortex-a72",
    abi=_ARMV8_ABI,
)

_ARCHES = {
    "armv7": ARMV7,
    "armv8": ARMV8,
    "v7": ARMV7,
    "v8": ARMV8,
    "cortex-a9": ARMV7,
    "cortex-a72": ARMV8,
}


def get_arch(name: str) -> ArchSpec:
    """Look up an :class:`ArchSpec` by name (``armv7``/``armv8``/aliases)."""
    key = name.lower()
    if key not in _ARCHES:
        raise KeyError(f"unknown architecture {name!r}; expected one of {sorted(_ARCHES)}")
    return _ARCHES[key]
