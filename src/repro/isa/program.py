"""Linked program image: the unit the kernel loader consumes.

A :class:`Program` is the output of the code generator / linker: a flat
instruction list with resolved branch targets, an initialised data
image with a symbol table, and metadata describing how much heap and
stack the loader should reserve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LinkError
from repro.isa.arch import ArchSpec
from repro.isa.encoding import encode_program
from repro.isa.instructions import Instr, format_instr


@dataclass
class DataSymbol:
    """A named region inside the data segment."""

    name: str
    offset: int
    size: int
    element_size: int = 4
    is_float: bool = False


@dataclass
class Program:
    """A fully linked guest program for one architecture."""

    arch: ArchSpec
    instructions: list[Instr] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    data_image: bytearray = field(default_factory=bytearray)
    symbols: dict[str, DataSymbol] = field(default_factory=dict)
    entry: str = "_start"
    bss_size: int = 0
    heap_size: int = 1 << 16
    stack_size: int = 1 << 14
    name: str = "a.out"
    #: map from instruction index to the function that owns it
    function_ranges: dict[str, tuple[int, int]] = field(default_factory=dict)
    #: map from instruction index to (source function, source line) pairs
    line_table: dict[int, tuple[str, int]] = field(default_factory=dict)
    #: debug map: function -> variable -> home, where a home is
    #: ("reg"|"freg"|"stack", index).  Lets analyses report per-variable
    #: ranks from register-level results.
    variable_homes: dict[str, dict[str, tuple[str, int]]] = field(default_factory=dict)

    @property
    def text_size(self) -> int:
        return len(self.instructions) * 4

    @property
    def data_size(self) -> int:
        return len(self.data_image)

    def label_address(self, label: str, text_base: int = 0) -> int:
        if label not in self.labels:
            raise LinkError(f"undefined label {label!r} in program {self.name!r}")
        return text_base + 4 * self.labels[label]

    def symbol_offset(self, name: str) -> int:
        if name not in self.symbols:
            raise LinkError(f"undefined data symbol {name!r} in program {self.name!r}")
        return self.symbols[name].offset

    def entry_index(self) -> int:
        if self.entry not in self.labels:
            raise LinkError(f"entry point {self.entry!r} not defined in program {self.name!r}")
        return self.labels[self.entry]

    def function_of(self, instr_index: int) -> str:
        """Name of the function containing an instruction index."""
        for name, (start, end) in self.function_ranges.items():
            if start <= instr_index < end:
                return name
        return "<unknown>"

    def machine_code(self) -> bytes:
        """Pseudo machine code image of the text segment."""
        return encode_program(self.instructions)

    def disassemble(self, start: int = 0, count: int | None = None) -> str:
        """Human readable listing of (part of) the text segment."""
        end = len(self.instructions) if count is None else min(len(self.instructions), start + count)
        index_to_label = {}
        for label, idx in self.labels.items():
            index_to_label.setdefault(idx, []).append(label)
        lines = []
        for idx in range(start, end):
            for label in index_to_label.get(idx, []):
                lines.append(f"{label}:")
            lines.append(f"  {idx * 4:#06x}  {format_instr(self.instructions[idx], self.arch)}")
        return "\n".join(lines)

    def summary(self) -> dict:
        return {
            "name": self.name,
            "arch": self.arch.name,
            "instructions": len(self.instructions),
            "text_bytes": self.text_size,
            "data_bytes": self.data_size,
            "bss_bytes": self.bss_size,
            "functions": len(self.function_ranges),
        }
