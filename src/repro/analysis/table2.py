"""Table 2: Hang occurrence versus the normalised (function calls x branches) index.

The paper uses the IS application as a case study: for each of the four
macro scenarios (IS MPI/OMP on ARMv7/ARMv8) the Hang percentage and the
F*B index (normalised to the single-core configuration) rise together
with the core count.
"""

from __future__ import annotations

from repro.analysis.render import render_table
from repro.mining.dataset import Dataset
from repro.mining.indices import fb_index_table
from repro.orchestration.database import ResultsDatabase

#: The four macro scenarios of Table 2.
TABLE2_GROUPS = [
    ("IS", "mpi", "armv7", "IS MPI V7"),
    ("IS", "omp", "armv7", "IS OMP V7"),
    ("IS", "mpi", "armv8", "IS MPI V8"),
    ("IS", "omp", "armv8", "IS OMP V8"),
]


def table2_rows(database: ResultsDatabase | Dataset, app: str = "IS") -> list[dict]:
    """Build Table 2 rows (one row per scenario group and core count)."""
    dataset = database if isinstance(database, Dataset) else Dataset(database.scenario_records())
    rows = []
    for app_name, mode, isa, label in TABLE2_GROUPS:
        if app_name != app:
            app_name = app
        for entry in fb_index_table(dataset, app=app_name, isa=isa, mode=mode):
            rows.append(
                {
                    "scenario_group": label if app == "IS" else f"{app} {mode.upper()} {isa}",
                    "cores": entry["cores"],
                    "hang_pct": round(entry["hang_pct"], 3),
                    "branches": entry["branches"],
                    "function_calls": entry["function_calls"],
                    "fb_index": round(entry["fb_index"], 3),
                }
            )
    return rows


def index_tracks_hangs(rows: list[dict]) -> dict[str, bool]:
    """For each scenario group, whether the F*B index is non-decreasing with cores.

    The paper's observation is that the index and the Hang percentage
    increase simultaneously with the core count; this helper checks the
    index half of that claim (the Hang half is statistical and checked
    more loosely by the benchmark harness).
    """
    verdict: dict[str, bool] = {}
    groups: dict[str, list[dict]] = {}
    for row in rows:
        groups.setdefault(row["scenario_group"], []).append(row)
    for label, entries in groups.items():
        ordered = sorted(entries, key=lambda r: r["cores"])
        indices = [r["fb_index"] for r in ordered]
        verdict[label] = all(b >= a - 1e-9 for a, b in zip(indices, indices[1:]))
    return verdict


def render_table2(rows: list[dict]) -> str:
    return render_table(
        rows,
        columns=["scenario_group", "cores", "hang_pct", "branches", "function_calls", "fb_index"],
        title="Table 2 — Hang occurrence vs. normalised function-calls x branches index (IS)",
    )
