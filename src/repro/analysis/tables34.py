"""Tables 3 and 4: memory transactions versus soft error classification.

Table 3 (ARMv7) shows MG and IS MPI scenarios; Table 4 (ARMv8) shows LU
and SP OpenMP scenarios plus FT MPI scenarios.  The paper's claim is
that a higher memory-instruction share goes together with a higher UT
share (corrupted address generation), while a constant share keeps UT
flat.
"""

from __future__ import annotations

from repro.analysis.render import render_table
from repro.mining.dataset import Dataset
from repro.mining.indices import memory_transaction_table
from repro.orchestration.database import ResultsDatabase

#: Scenario rows of Table 3 (ARMv7 MPI, memory-bound applications).
TABLE3_SCENARIOS = [
    ("1", "MG", "mpi", 1),
    ("2", "MG", "mpi", 2),
    ("3", "MG", "mpi", 4),
    ("4", "IS", "mpi", 1),
    ("5", "IS", "mpi", 2),
    ("6", "IS", "mpi", 4),
]

#: Scenario rows of Table 4 (ARMv8).
TABLE4_SCENARIOS = [
    ("A", "LU", "omp", 1),
    ("B", "LU", "omp", 2),
    ("C", "LU", "omp", 4),
    ("D", "SP", "omp", 1),
    ("E", "SP", "omp", 2),
    ("F", "SP", "omp", 4),
    ("G", "FT", "mpi", 1),
    ("H", "FT", "mpi", 2),
    ("I", "FT", "mpi", 4),
]


def _rows(database: ResultsDatabase | Dataset, isa: str, selection) -> list[dict]:
    dataset = database if isinstance(database, Dataset) else Dataset(database.scenario_records())
    rows = []
    for label, app, mode, cores in selection:
        matched = dataset.filter_equal(app=app, mode=mode, cores=cores, isa=isa)
        if len(matched) == 0:
            continue
        record = matched.records[0]
        scenario_id = record.get("scenario_id")
        table_rows = memory_transaction_table(dataset, [scenario_id])
        if not table_rows:
            continue
        entry = table_rows[0]
        rows.append(
            {
                "row": label,
                "scenario": f"{app} {mode.upper()}x{cores}",
                "benign_pct": round(entry["benign_pct"], 2),
                "ut_pct": round(entry["ut_pct"], 2),
                "mem_inst_pct": round(entry["mem_inst_pct"], 2),
                "rd_wr_ratio": round(entry["rd_wr_ratio"], 3),
            }
        )
    return rows


def table3_rows(database: ResultsDatabase | Dataset) -> list[dict]:
    """Table 3: ARMv7 memory transactions and soft error classification."""
    return _rows(database, "armv7", TABLE3_SCENARIOS)


def table4_rows(database: ResultsDatabase | Dataset) -> list[dict]:
    """Table 4: ARMv8 memory transactions and soft error classification."""
    return _rows(database, "armv8", TABLE4_SCENARIOS)


def memory_ut_correlation(rows: list[dict]) -> float:
    """Pearson correlation between memory-instruction share and UT share."""
    from repro.mining.correlation import pearson

    xs = [row["mem_inst_pct"] for row in rows]
    ys = [row["ut_pct"] for row in rows]
    return pearson(xs, ys)


def render_memory_table(rows: list[dict], number: int) -> str:
    isa = "ARMv7" if number == 3 else "ARMv8"
    return render_table(
        rows,
        columns=["row", "scenario", "benign_pct", "ut_pct", "mem_inst_pct", "rd_wr_ratio"],
        title=f"Table {number} — {isa} memory transactions and soft error classification",
    )
