"""Recovery dimension table: what checkpoint-rollback buys on top of
detection, and what re-execution it costs, per ISA and programming model.

Detection schemes (``dwc``/``cfc``/``dwc+cfc``) turn silent corruptions
into fail-stops; a ``+rec`` policy turns those fail-stops back into
completed runs by rolling the faulty machine back to the nearest clean
checkpoint and re-executing.  Per (ISA, programming model, recovery
scheme) this table reports

* **recovery coverage** — share of injected faults that ended in the
  ``Recovered`` outcome (golden output reproduced after >= 1 rollback);
* **residual Detected / OMM / Hang rates** — what recovery could not
  absorb: escalated fail-stops after the retry budget, silent
  divergences that reproduce *wrong* output after rollback, and runs
  that exhaust their watchdog budget;
* **twin Detected rate** — the Detected rate of the rec-less twin
  scheme facing the *same fault list* (the fault stream is seeded from
  the recovery-stripped scenario id), so the Detected column can be
  read as a strict reduction;
* **rollback mechanics** — total rollbacks, escalations, injections
  that needed more than one retry;
* **re-execution overhead** — re-executed instructions per injection,
  and that cost as a multiple of one golden run.

Rows aggregate scenario-level recovery summaries, so the table renders
even for campaigns that drop individual injection records.  Stores
written before the recovery PR carry no recovery payloads and simply
produce an empty table — never an error.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.render import render_table
from repro.hardening.schemes import compile_scheme
from repro.injection.campaign import ScenarioReport
from repro.injection.classify import (
    NOT_INJECTED,
    Outcome,
    outcome_percentages,
    recovery_rate,
)
from repro.orchestration.database import ResultsDatabase


def _dynamic_instructions(report: ScenarioReport) -> Optional[float]:
    """Golden-run executed instructions (stats first, summary fallback)."""
    value = report.golden_stats.get("total_instructions_global")
    if value is None:
        value = report.golden_summary.get("instructions")
    return float(value) if value else None


def _twin_key(scenario) -> tuple:
    """Identity of the rec-less twin: same cell, recovery policy stripped."""
    return (
        scenario.app,
        scenario.mode,
        scenario.cores,
        scenario.isa,
        scenario.target_mix_label,
        compile_scheme(scenario.hardening),
    )


def recovery_rows(database: ResultsDatabase) -> list[dict]:
    """One row per (ISA, programming model, recovery scheme).

    Only scenarios that ran under a recovery policy contribute; a store
    with no such scenarios (any pre-recovery campaign) yields ``[]``.
    """
    twins: dict[tuple, ScenarioReport] = {}
    for report in database.reports.values():
        if report.recovery is None:
            twins[_twin_key(report.scenario)] = report

    grouped: dict[tuple[str, str, str], dict] = {}
    for report in database.reports.values():
        if report.recovery is None:
            continue
        scenario = report.scenario
        key = (scenario.isa, scenario.mode, scenario.hardening_label)
        entry = grouped.setdefault(
            key,
            {
                "scenarios": 0,
                "counts": {},
                "rollbacks": 0,
                "reexecuted": 0,
                "escalations": 0,
                "multi_retry": 0,
                "twin_counts": {},
                "reexec_ratios": [],
            },
        )
        entry["scenarios"] += 1
        for outcome, count in report.counts.items():
            entry["counts"][outcome] = entry["counts"].get(outcome, 0) + count
        recovery = report.recovery
        entry["rollbacks"] += recovery.get("rollbacks", 0)
        entry["reexecuted"] += recovery.get("reexecuted_instructions", 0)
        entry["escalations"] += recovery.get("escalations", 0)
        entry["multi_retry"] += recovery.get("multi_retry_injections", 0)
        twin = twins.get(_twin_key(scenario))
        if twin is not None:
            for outcome, count in twin.counts.items():
                entry["twin_counts"][outcome] = entry["twin_counts"].get(outcome, 0) + count
        golden = _dynamic_instructions(report)
        injected = sum(
            count for outcome, count in report.counts.items() if outcome != NOT_INJECTED
        )
        if golden and injected:
            entry["reexec_ratios"].append(
                recovery.get("reexecuted_instructions", 0) / injected / golden
            )

    rows = []
    for isa, mode, scheme in sorted(grouped):
        entry = grouped[(isa, mode, scheme)]
        counts = entry["counts"]
        percentages = outcome_percentages(counts)
        injections = sum(
            count for outcome, count in counts.items() if outcome != NOT_INJECTED
        )
        twin_percentages = outcome_percentages(entry["twin_counts"])
        ratios = entry["reexec_ratios"]
        rows.append(
            {
                "isa": isa,
                "mode": mode,
                "hardening": scheme,
                "scenarios": entry["scenarios"],
                "injections": injections,
                "recovered": counts.get(Outcome.RECOVERED.value, 0),
                "recovered_pct": round(recovery_rate(counts), 3),
                "detected_pct": round(percentages.get(Outcome.DETECTED.value, 0.0), 3),
                # the rec-less twin scheme on the same fault list, or "-"
                # when the campaign did not include the twin scenarios
                "twin_detected_pct": (
                    round(twin_percentages.get(Outcome.DETECTED.value, 0.0), 3)
                    if entry["twin_counts"]
                    else "-"
                ),
                "omm_pct": round(percentages.get(Outcome.OMM.value, 0.0), 3),
                "hang_pct": round(percentages.get(Outcome.HANG.value, 0.0), 3),
                "rollbacks": entry["rollbacks"],
                "escalations": entry["escalations"],
                "multi_retry_injections": entry["multi_retry"],
                "reexecuted_instructions": entry["reexecuted"],
                # mean re-executed work per injection, as a fraction of
                # one golden run of the same scenario
                "reexec_overhead_x": (
                    round(sum(ratios) / len(ratios), 4) if ratios else "-"
                ),
            }
        )
    return rows


def render_recovery_table(database: ResultsDatabase) -> str:
    """Textual rendering of the recovery-dimension table."""
    rows = recovery_rows(database)
    if not rows:
        return "(no recovery scenarios in this campaign)"
    return render_table(
        rows,
        columns=[
            "isa",
            "mode",
            "hardening",
            "scenarios",
            "injections",
            "recovered",
            "recovered_pct",
            "detected_pct",
            "twin_detected_pct",
            "omm_pct",
            "hang_pct",
            "rollbacks",
            "escalations",
            "multi_retry_injections",
            "reexecuted_instructions",
            "reexec_overhead_x",
        ],
        title="Checkpoint-rollback recovery — coverage, residual fail-stops and re-execution overhead",
    )
