"""Plain-text rendering of tables and stacked-bar figures.

The evaluation harness prints the same rows/series the paper reports;
matplotlib is intentionally not required, so every figure has a textual
form suitable for terminals and logs.
"""

from __future__ import annotations

from typing import Sequence


def render_table(rows: Sequence[dict], columns: Sequence[str] | None = None, title: str = "") -> str:
    """Render a list of records as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)

    def fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    widths = {col: len(col) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(fmt(row.get(col, ""))))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[col] for col in columns))
    for row in rows:
        lines.append(" | ".join(fmt(row.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)


def render_stacked_bars(
    rows: Sequence[dict],
    label_key: str,
    series_keys: Sequence[str],
    width: int = 50,
    title: str = "",
) -> str:
    """Render percentage rows as horizontal stacked bars.

    Each series key maps to a single character; values are interpreted
    as percentages of the bar width.
    """
    symbols = {key: symbol for key, symbol in zip(series_keys, ".oxU#@%+*")}
    lines = []
    if title:
        lines.append(title)
    legend = "  ".join(f"{symbols[key]}={key}" for key in series_keys)
    lines.append(f"legend: {legend}")
    label_width = max((len(str(row.get(label_key, ""))) for row in rows), default=5)
    for row in rows:
        bar = ""
        for key in series_keys:
            value = float(row.get(key, 0.0))
            bar += symbols[key] * max(0, round(value / 100.0 * width))
        bar = bar[:width].ljust(width)
        lines.append(f"{str(row.get(label_key, '')).ljust(label_width)} |{bar}|")
    return "\n".join(lines)
