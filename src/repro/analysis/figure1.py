"""Figure 1: evolution of commercial processors (introduction figure).

The paper's Figure 1 is a historical motivation plot (transistor count,
core count and process node from 1970 to 2018, gathered from public
sources such as the ITRS).  It contains no experimental data, so the
reproduction ships the curated series and a textual rendering.
"""

from __future__ import annotations

from repro.analysis.render import render_table

#: (year, representative processor, transistor count, core count, node in nm)
PROCESSOR_HISTORY = [
    (1971, "Intel 4004", 2_300, 1, 10_000),
    (1978, "Intel 8086", 29_000, 1, 3_000),
    (1989, "Intel 80486", 1_180_000, 1, 1_000),
    (1999, "AMD K7", 22_000_000, 1, 250),
    (2005, "Pentium D", 230_000_000, 2, 90),
    (2007, "POWER6", 789_000_000, 2, 65),
    (2010, "SPARC T3", 1_000_000_000, 16, 40),
    (2012, "Xeon Phi", 5_000_000_000, 61, 22),
    (2015, "SPARC M7", 10_000_000_000, 32, 20),
    (2017, "Ryzen", 4_800_000_000, 8, 14),
    (2017, "Xeon E7-8894", 7_200_000_000, 24, 14),
    (2018, "48-core server parts", 19_200_000_000, 48, 10),
]


def figure1_data() -> list[dict]:
    """The three series of Figure 1 as one record per processor."""
    return [
        {
            "year": year,
            "processor": name,
            "transistors": transistors,
            "cores": cores,
            "node_nm": node,
        }
        for year, name, transistors, cores, node in PROCESSOR_HISTORY
    ]


def scaling_trends() -> dict:
    """Summary trends the figure illustrates (used by tests and the bench)."""
    data = figure1_data()
    first, last = data[0], data[-1]
    return {
        "transistor_growth": last["transistors"] / first["transistors"],
        "max_cores": max(row["cores"] for row in data),
        "min_node_nm": min(row["node_nm"] for row in data),
        "years_covered": last["year"] - first["year"],
    }


def render_figure1() -> str:
    return render_table(
        figure1_data(),
        columns=["year", "processor", "transistors", "cores", "node_nm"],
        title="Figure 1 — evolution of commercial processors (1971-2018)",
    )
