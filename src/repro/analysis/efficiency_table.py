"""Efficiency table: faults spent by adaptive campaigns vs the fixed
count a one-shot design would need.

The fixed-count equivalent is the classical worst-case sample size for
a binomial rate estimated to half-width *w* at confidence *c*:
``n = ceil(z_c^2 * 0.25 / w^2)`` (p(1-p) <= 1/4).  That is exactly the
count someone without the adaptive engine must pick to *guarantee* the
same interval on every tracked rate, so ``fixed / spent`` is the
apples-to-apples saving the stratified controller buys.

Rows come straight from shard ``adaptive`` payloads — the table needs a
completed adaptive store (or database materialized from one).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.analysis.render import render_table
from repro.errors import SimulatorError
from repro.stats.estimators import confidence_z

#: Column order of the rendered table.
EFFICIENCY_COLUMNS = (
    "scenario",
    "spent",
    "fixed_equivalent",
    "saving",
    "batches",
    "half_width",
    "target",
    "stopping",
)


def fixed_equivalent(target_half_width: float, confidence: float) -> int:
    """Worst-case one-shot sample size for the same interval guarantee."""
    if not 0.0 < target_half_width < 0.5:
        raise SimulatorError(f"invalid target half-width {target_half_width}")
    z = confidence_z(confidence)
    return math.ceil(z * z * 0.25 / (target_half_width * target_half_width))


def _achieved_half_width(adaptive: dict) -> float:
    estimates = adaptive.get("estimates") or {}
    if not estimates:
        return 1.0
    return max(estimate["half_width"] for estimate in estimates.values())


def efficiency_rows(database, plan: Optional[dict] = None) -> list[dict]:
    """One row per adaptive scenario in the database.

    ``plan`` (the manifest's plan dict) supplies the campaign-wide
    stopping rule; without it each shard's own recorded plan is used,
    so the table also works on a database assembled from mixed runs.
    Scenarios without an ``adaptive`` payload (fixed-count shards) are
    skipped.
    """
    rows = []
    for report in database.reports.values():
        adaptive = report.adaptive
        if not adaptive:
            continue
        scenario_plan = plan or adaptive.get("plan") or {}
        target = float(scenario_plan.get("target_half_width", 0.02))
        confidence = float(scenario_plan.get("confidence", 0.95))
        fixed = fixed_equivalent(target, confidence)
        spent = int(adaptive["spent"])
        rows.append(
            {
                "scenario": report.scenario_id,
                "spent": spent,
                "fixed_equivalent": fixed,
                "saving": fixed / spent if spent else 0.0,
                "batches": len(adaptive.get("batches") or []),
                "half_width": _achieved_half_width(adaptive),
                "target": target,
                "stopping": adaptive.get("stopping") or "-",
            }
        )
    rows.sort(key=lambda row: row["scenario"])
    return rows


def average_saving(rows: Sequence[dict]) -> float:
    """Mean fixed/spent ratio over the table's scenarios (0 if empty)."""
    rows = [row for row in rows if row["spent"]]
    if not rows:
        return 0.0
    return sum(row["saving"] for row in rows) / len(rows)


def render_efficiency_table(rows: Sequence[dict], title: str = "Adaptive sampling efficiency") -> str:
    rows = list(rows)
    rendered = render_table(rows, columns=list(EFFICIENCY_COLUMNS), title=title)
    if rows:
        rendered += f"\naverage saving: {average_saving(rows):.2f}x over fixed-count"
    return rendered
