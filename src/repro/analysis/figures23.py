"""Figures 2 and 3: fault classification per application, API and core count.

Figure 2 covers the ARMv7 processor, Figure 3 the ARMv8 processor; each
has three panels:

* (a) MPI applications — stacked outcome percentages for SER-1, MPI-1,
  MPI-2, MPI-4;
* (b) OpenMP applications — stacked outcome percentages for SER-1,
  OMP-1, OMP-2, OMP-4;
* (c) the per-category MPI-vs-OpenMP mismatch.
"""

from __future__ import annotations

from repro.analysis.render import render_stacked_bars, render_table
from repro.injection.classify import OUTCOME_ORDER
from repro.mining.dataset import Dataset
from repro.mining.indices import mismatch_table
from repro.orchestration.database import ResultsDatabase

#: Applications shown in the MPI panel (a) of the figures.
MPI_PANEL_APPS = ["BT", "CG", "DT", "EP", "FT", "IS", "LU", "MG", "SP"]
#: Applications shown in the OpenMP panel (b) of the figures.
OMP_PANEL_APPS = ["BT", "CG", "DC", "EP", "FT", "IS", "LU", "MG", "SP", "UA"]
#: Applications with both variants, shown in the mismatch panel (c).
MISMATCH_PANEL_APPS = ["BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP"]

_PCT_KEYS = [f"pct_{outcome.value}" for outcome in OUTCOME_ORDER]


def _dataset(database: ResultsDatabase | Dataset) -> Dataset:
    if isinstance(database, Dataset):
        return database
    return Dataset(database.scenario_records())


def figure_rows(database: ResultsDatabase | Dataset, isa: str, api: str) -> list[dict]:
    """Panel (a) or (b) rows: one bar per (application, configuration).

    ``api`` selects ``"mpi"`` or ``"omp"``; every application contributes
    its serial bar (SER-1) plus the available API-1/2/4 bars, exactly as
    the figure groups them.
    """
    data = _dataset(database).filter_equal(isa=isa)
    apps = MPI_PANEL_APPS if api == "mpi" else OMP_PANEL_APPS
    rows = []
    for app in apps:
        variants = []
        serial = data.filter_equal(app=app, mode="serial")
        if len(serial):
            variants.append(("SER-1", serial.records[0]))
        for cores in (1, 2, 4):
            matched = data.filter_equal(app=app, mode=api, cores=cores)
            if len(matched):
                variants.append((f"{api.upper()}-{cores}", matched.records[0]))
        for label, record in variants:
            row = {"app": app, "config": label, "bar": f"{app}:{label}"}
            for key in _PCT_KEYS:
                row[key.replace("pct_", "")] = float(record.get(key, 0.0))
            rows.append(row)
    return rows


def mismatch_rows(database: ResultsDatabase | Dataset, isa: str) -> list[dict]:
    """Panel (c) rows: MPI minus OpenMP outcome difference per app/core count."""
    return mismatch_table(_dataset(database), isa=isa, apps=MISMATCH_PANEL_APPS)


def figure_data(database: ResultsDatabase | Dataset, isa: str) -> dict:
    """All three panels of Figure 2 (armv7) or Figure 3 (armv8)."""
    return {
        "isa": isa,
        "mpi_panel": figure_rows(database, isa, "mpi"),
        "omp_panel": figure_rows(database, isa, "omp"),
        "mismatch_panel": mismatch_rows(database, isa),
    }


def render_figure(database: ResultsDatabase | Dataset, isa: str) -> str:
    """Textual rendering of the whole figure for one ISA."""
    number = "2" if isa == "armv7" else "3"
    data = figure_data(database, isa)
    parts = []
    outcome_keys = [outcome.value for outcome in OUTCOME_ORDER]
    parts.append(
        render_stacked_bars(
            data["mpi_panel"], "bar", outcome_keys,
            title=f"Figure {number}a — {isa} MPI benchmarks (injected fault classification, %)",
        )
    )
    parts.append(
        render_stacked_bars(
            data["omp_panel"], "bar", outcome_keys,
            title=f"Figure {number}b — {isa} OMP benchmarks (injected fault classification, %)",
        )
    )
    parts.append(
        render_table(
            data["mismatch_panel"],
            columns=["app", "cores", "total_mismatch"] + [f"diff_{k}" for k in outcome_keys],
            title=f"Figure {number}c — {isa} MPI-vs-OMP mismatch (percentage points)",
        )
    )
    return "\n\n".join(parts)
