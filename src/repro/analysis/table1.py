"""Table 1: NPB workload summary per ISA.

The paper reports, per ISA, the smallest / average / largest single-run
simulation time, fault-campaign time and executed instruction count.
The reproduction regenerates the same rows from golden runs of the
scenario suite; the headline shape to reproduce is the large
ARMv7-vs-ARMv8 gap in executed instructions caused by the software
floating point library.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.render import render_table
from repro.injection.golden import GoldenRunner, GoldenRunResult
from repro.npb.suite import Scenario, build_scenario_suite


def _summary(values: list[float]) -> dict[str, float]:
    if not values:
        return {"smaller": 0.0, "average": 0.0, "larger": 0.0}
    return {
        "smaller": min(values),
        "average": sum(values) / len(values),
        "larger": max(values),
    }


def collect_golden_results(
    scenarios: Iterable[Scenario],
    runner: Optional[GoldenRunner] = None,
) -> list[GoldenRunResult]:
    runner = runner or GoldenRunner(model_caches=False)
    return [runner.run(scenario, collect_stats=False) for scenario in scenarios]


def table1_rows(
    golden_results: list[GoldenRunResult],
    faults_per_scenario: int = 8000,
) -> list[dict]:
    """Build the Table 1 rows from a set of golden runs.

    The "fault campaign" figures are projections: single-run wall time
    multiplied by the configured number of faults per scenario, which is
    exactly how the paper's campaign hours relate to its single-run
    seconds.
    """
    rows = []
    for isa in ("armv8", "armv7"):
        subset = [g for g in golden_results if g.scenario.isa == isa]
        sim_time = _summary([g.wall_time_seconds for g in subset])
        instructions = _summary([float(g.total_instructions) for g in subset])
        campaign_hours = _summary(
            [g.wall_time_seconds * faults_per_scenario / 3600.0 for g in subset]
        )
        rows.append(
            {
                "metric": "simulation_time_single_run_s",
                "isa": isa,
                **{k: round(v, 4) for k, v in sim_time.items()},
            }
        )
        rows.append(
            {
                "metric": "fault_campaign_run_h",
                "isa": isa,
                **{k: round(v, 4) for k, v in campaign_hours.items()},
            }
        )
        rows.append(
            {
                "metric": "executed_instructions",
                "isa": isa,
                **{k: round(v, 1) for k, v in instructions.items()},
            }
        )
    total_rows = []
    for isa in ("armv8", "armv7"):
        subset = [g for g in golden_results if g.scenario.isa == isa]
        total_hours = sum(g.wall_time_seconds * faults_per_scenario / 3600.0 for g in subset)
        total_rows.append(
            {"metric": "total_fault_campaign_h", "isa": isa, "smaller": "", "average": "", "larger": round(total_hours, 3)}
        )
    return rows + total_rows


def instruction_ratio(golden_results: list[GoldenRunResult]) -> float:
    """Average ARMv7 / ARMv8 executed-instruction ratio (paper: ~25x)."""
    v7 = [g.total_instructions for g in golden_results if g.scenario.isa == "armv7"]
    v8 = [g.total_instructions for g in golden_results if g.scenario.isa == "armv8"]
    if not v7 or not v8:
        return 0.0
    return (sum(v7) / len(v7)) / (sum(v8) / len(v8))


def default_scenarios(apps: Optional[list[str]] = None) -> list[Scenario]:
    """The scenario set Table 1 summarises (optionally restricted by app)."""
    suite = build_scenario_suite()
    if apps is not None:
        suite = suite.filter(apps=apps)
    return list(suite)


def render_table1(rows: list[dict]) -> str:
    return render_table(
        rows,
        columns=["metric", "isa", "smaller", "average", "larger"],
        title="Table 1 — NPB workload summary",
    )
