"""Predicted-AVF table: the static counterpart of the measured tables.

The campaign analysis tables report *measured* outcome percentages per
(ISA, programming model) cell; this module reports the *predicted*
architectural vulnerability factor — the mean ACE fraction from the
static liveness analysis — on the same axes, plus the target kind.  The
side-by-side comparison (``run_campaign.py analyze``) is the paper's
methodology inverted: instead of explaining measured reliability with
software symptoms, the static model predicts it before any injection
runs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.render import render_table
from repro.staticlint.ace import PREDICTABLE_KINDS, ScenarioVulnerability

#: Canonical programming-model column order (matches the campaign tables).
_MODE_ORDER = {"serial": 0, "omp": 1, "mpi": 2}


def predicted_avf_rows(
    vulnerabilities: Iterable[ScenarioVulnerability],
    kinds: Tuple[str, ...] = PREDICTABLE_KINDS,
) -> List[dict]:
    """Aggregate scenario predictions into (isa, mode, kind) rows.

    Each row averages the predicted ACE fraction (the predicted AVF)
    and predicted masking over every scenario in the cell, and records
    how many scenarios contributed.
    """
    cells: Dict[Tuple[str, str, str], List[float]] = {}
    for vulnerability in vulnerabilities:
        for kind in kinds:
            if kind == "fpr" and not vulnerability.fpr_ace:
                continue
            key = (vulnerability.isa, vulnerability.mode, kind)
            cells.setdefault(key, []).append(vulnerability.predicted_ace(kind))
    rows = []
    for (isa, mode, kind) in sorted(
        cells, key=lambda key: (key[0], _MODE_ORDER.get(key[1], 99), key[1], key[2])
    ):
        values = cells[(isa, mode, kind)]
        avf = sum(values) / len(values)
        rows.append(
            {
                "isa": isa,
                "mode": mode,
                "target": kind,
                "scenarios": len(values),
                "predicted_avf_pct": round(100.0 * avf, 3),
                "predicted_masking_pct": round(100.0 * (1.0 - avf), 3),
            }
        )
    return rows


def render_predicted_avf(
    vulnerabilities: Iterable[ScenarioVulnerability],
    kinds: Tuple[str, ...] = PREDICTABLE_KINDS,
    title: Optional[str] = None,
) -> str:
    rows = predicted_avf_rows(vulnerabilities, kinds)
    return render_table(
        rows,
        ["isa", "mode", "target", "scenarios", "predicted_avf_pct", "predicted_masking_pct"],
        title=title or "Predicted AVF (static liveness/ACE analysis)",
    )
