"""Experiment entry points: one module per table/figure of the paper."""

from repro.analysis.render import render_table, render_stacked_bars
from repro.analysis.figure1 import figure1_data, render_figure1
from repro.analysis.table1 import table1_rows, render_table1
from repro.analysis.figures23 import figure_rows, mismatch_rows, render_figure
from repro.analysis.table2 import table2_rows, render_table2
from repro.analysis.tables34 import table3_rows, table4_rows, render_memory_table
from repro.analysis.section42 import section42_summary, render_section42
from repro.analysis.target_table import (
    target_masking_rows,
    target_masking_matrix,
    render_target_table,
)
from repro.analysis.hardening_table import (
    hardening_rows,
    hardening_matrix,
    render_hardening_table,
)
from repro.analysis.recovery_table import recovery_rows, render_recovery_table
from repro.analysis.predicted_avf import predicted_avf_rows, render_predicted_avf
from repro.analysis.efficiency_table import (
    average_saving,
    efficiency_rows,
    fixed_equivalent,
    render_efficiency_table,
)

__all__ = [
    "render_table",
    "render_stacked_bars",
    "figure1_data",
    "render_figure1",
    "table1_rows",
    "render_table1",
    "figure_rows",
    "mismatch_rows",
    "render_figure",
    "table2_rows",
    "render_table2",
    "table3_rows",
    "table4_rows",
    "render_memory_table",
    "section42_summary",
    "render_section42",
    "target_masking_rows",
    "target_masking_matrix",
    "render_target_table",
    "hardening_rows",
    "hardening_matrix",
    "render_hardening_table",
    "recovery_rows",
    "render_recovery_table",
    "predicted_avf_rows",
    "render_predicted_avf",
    "average_saving",
    "efficiency_rows",
    "fixed_equivalent",
    "render_efficiency_table",
]
