"""Section 4.2: parallelization API analysis.

Covers the quantitative claims of Section 4.2 that are not tied to a
single table: the MPI-vs-OpenMP masking comparison (38 of 44
comparisons in the paper), the per-core workload balance gap (MPI ~4%
vs OpenMP up to ~16%) and the vulnerability window of the
parallelisation runtimes (< 23% in the worst case).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.analysis.render import render_table
from repro.injection.golden import GoldenRunResult
from repro.mining.dataset import Dataset
from repro.mining.indices import masking_comparison
from repro.orchestration.database import ResultsDatabase
from repro.profiling.functional import FunctionalProfile


def masking_summary(database: ResultsDatabase | Dataset) -> dict:
    """MPI-vs-OpenMP masking-rate comparison over both ISAs."""
    dataset = database if isinstance(database, Dataset) else Dataset(database.scenario_records())
    summary = {}
    total_comparisons = 0
    total_wins = 0
    for isa in ("armv7", "armv8"):
        result = masking_comparison(dataset, isa)
        summary[isa] = result
        total_comparisons += result["comparisons"]
        total_wins += result["mpi_wins"]
    summary["total_comparisons"] = total_comparisons
    summary["total_mpi_wins"] = total_wins
    return summary


def load_balance_summary(golden_results: Iterable[GoldenRunResult]) -> dict[str, float]:
    """Average per-core instruction imbalance per parallelisation API."""
    per_mode: dict[str, list[float]] = {"mpi": [], "omp": []}
    for golden in golden_results:
        mode = golden.scenario.mode
        if mode in per_mode and golden.scenario.cores > 1:
            per_mode[mode].append(golden.load_balance_pct)
    return {
        mode: (sum(values) / len(values) if values else 0.0)
        for mode, values in per_mode.items()
    }


def vulnerability_window_summary(profiles: Iterable[FunctionalProfile]) -> dict[str, float]:
    """Share of execution spent inside the parallelisation runtimes."""
    windows = {}
    for profile in profiles:
        windows[profile.scenario_id] = profile.vulnerability_window(api_prefixes=("omp_", "mpi_"))
    if not windows:
        return {"max": 0.0, "mean": 0.0}
    values = list(windows.values())
    summary = {"max": max(values), "mean": sum(values) / len(values)}
    summary.update(windows)
    return summary


def section42_summary(
    database: ResultsDatabase | Dataset,
    golden_results: Optional[Iterable[GoldenRunResult]] = None,
    profiles: Optional[Iterable[FunctionalProfile]] = None,
) -> dict:
    summary = {"masking": masking_summary(database)}
    if golden_results is not None:
        summary["load_balance_pct"] = load_balance_summary(golden_results)
    if profiles is not None:
        summary["vulnerability_window"] = vulnerability_window_summary(profiles)
    return summary


def render_section42(summary: dict) -> str:
    lines = ["Section 4.2 — Parallelization API analysis"]
    masking = summary.get("masking", {})
    lines.append(
        f"MPI masking wins: {masking.get('total_mpi_wins', 0)} of {masking.get('total_comparisons', 0)} comparisons"
    )
    for isa in ("armv7", "armv8"):
        if isa in masking:
            details = masking[isa]["details"]
            if details:
                lines.append(render_table(details, columns=["app", "cores", "mpi", "omp"], title=f"masking rate (%) — {isa}"))
    if "load_balance_pct" in summary:
        balance = summary["load_balance_pct"]
        lines.append(
            f"average per-core instruction imbalance: MPI {balance.get('mpi', 0.0):.2f}% vs OMP {balance.get('omp', 0.0):.2f}%"
        )
    if "vulnerability_window" in summary:
        window = summary["vulnerability_window"]
        lines.append(
            f"parallelisation API vulnerability window: mean {100 * window.get('mean', 0.0):.1f}%, "
            f"max {100 * window.get('max', 0.0):.1f}%"
        )
    return "\n\n".join(lines)
