"""Fault-target dimension table: register vs memory vs cache masking.

The uncore/memory extension of the paper's study (following Cho et al.,
"Understanding Soft Errors in Uncore Components"): once a campaign mixes
register, memory and cache targets, this table compares how strongly
each target class masks faults, per programming model and per ISA — the
same axes Figures 2 and 3 use for the register-file campaigns.

The table is computed from the per-injection records, so campaigns must
keep individual results (``CampaignConfig.keep_individual_results``,
the default).
"""

from __future__ import annotations

from repro.analysis.render import render_table
from repro.injection.classify import (
    NOT_INJECTED,
    REPORT_OUTCOME_ORDER,
    masking_rate,
    outcome_percentages,
)
from repro.injection.fault import TARGET_CACHE, TARGET_MEMORY
from repro.orchestration.database import ResultsDatabase

#: Grouping of fault target kinds into the table's target classes.
TARGET_GROUPS = {
    "gpr": "register",
    "fpr": "register",
    "pc": "register",
    TARGET_MEMORY: "memory",
    TARGET_CACHE: "cache",
}

#: Column order of the rendered table.
TARGET_GROUP_ORDER = ("register", "memory", "cache")


def target_group(kind: str) -> str:
    """The table's target class for one fault kind."""
    return TARGET_GROUPS.get(kind, kind)


def target_masking_rows(database: ResultsDatabase) -> list[dict]:
    """One row per (ISA, programming model, target class).

    Each row carries the injected-fault count, the per-category outcome
    percentages and the masking rate for that slice of the campaign.
    """
    grouped: dict[tuple[str, str, str], dict[str, int]] = {}
    for report in database.reports.values():
        scenario = report.scenario
        for result in report.results:
            key = (scenario.isa, scenario.mode, target_group(result.fault.target_kind))
            counts = grouped.setdefault(key, {})
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
    rows = []
    order = {group: index for index, group in enumerate(TARGET_GROUP_ORDER)}
    for (isa, mode, group) in sorted(grouped, key=lambda k: (k[0], k[1], order.get(k[2], 99))):
        counts = grouped[(isa, mode, group)]
        injected = sum(count for outcome, count in counts.items() if outcome != NOT_INJECTED)
        row = {
            "isa": isa,
            "mode": mode,
            "target": group,
            "injections": injected,
            "not_injected": counts.get(NOT_INJECTED, 0),
            "masking_rate_pct": round(masking_rate(counts), 3),
        }
        for outcome, pct in outcome_percentages(counts).items():
            row[f"pct_{outcome}"] = round(pct, 3)
        # all report categories, Detected included: campaigns mixing the
        # target and hardening axes must not hide the detected share
        for outcome in REPORT_OUTCOME_ORDER:
            row.setdefault(f"pct_{outcome.value}", 0.0)
        rows.append(row)
    return rows


def target_masking_matrix(database: ResultsDatabase) -> list[dict]:
    """Pivot of :func:`target_masking_rows`: one row per (ISA, model),
    one masking-rate column per target class — the compact comparison
    the new campaign dimension is after."""
    rows = target_masking_rows(database)
    pivot: dict[tuple[str, str], dict] = {}
    for row in rows:
        entry = pivot.setdefault(
            (row["isa"], row["mode"]), {"isa": row["isa"], "mode": row["mode"]}
        )
        entry[f"{row['target']}_masking_pct"] = row["masking_rate_pct"]
        entry[f"{row['target']}_injections"] = row["injections"]
    return [pivot[key] for key in sorted(pivot)]


def render_target_table(database: ResultsDatabase) -> str:
    """Textual rendering of both views of the target-dimension table."""
    detail = render_table(
        target_masking_rows(database),
        columns=["isa", "mode", "target", "injections", "not_injected", "masking_rate_pct"]
        + [f"pct_{outcome.value}" for outcome in REPORT_OUTCOME_ORDER],
        title="Fault-target dimension — outcome classification per target class",
    )
    columns = ["isa", "mode"]
    for group in TARGET_GROUP_ORDER:
        columns.append(f"{group}_masking_pct")
    matrix = render_table(
        target_masking_matrix(database),
        columns=columns,
        title="Fault-target dimension — masking rate (%) per programming model and ISA",
    )
    return detail + "\n\n" + matrix
