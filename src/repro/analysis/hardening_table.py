"""Software-hardening dimension table: what compiler-implemented fault
tolerance buys, and what it costs, per ISA and programming model.

Once a campaign sweeps the hardening axis (``off``/``dwc``/``cfc``/
``dwc+cfc``), this table answers the reliability engineer's follow-on
question to the paper: how much of the unmasked tail does software
redundancy recover, and at what overhead?  Per (ISA, programming model,
scheme) it reports

* **detection coverage** — the share of injected faults the binary's
  own checks caught (the Detected outcome);
* **residual OMM / Hang / UT rates** — what still slips through;
* **static overhead** — hardened program size over the unhardened twin
  (instruction count ratio);
* **dynamic overhead** — hardened golden-run length over the unhardened
  twin (executed-instruction ratio).

Overheads compare each hardened scenario against the unhardened report
for the same (app, mode, cores, ISA, target mix) cell of the same
database, so the campaign must include the ``off`` baseline scenarios.
Unlike the per-target table this one aggregates scenario-level counts,
so it renders even for campaigns that drop individual injection
records.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.render import render_table
from repro.hardening.schemes import HARDENING_SCHEMES
from repro.injection.campaign import ScenarioReport
from repro.injection.classify import (
    NOT_INJECTED,
    Outcome,
    detection_rate,
    masking_rate,
    outcome_percentages,
)
from repro.orchestration.database import ResultsDatabase

#: Row order of the scheme column.
SCHEME_ORDER = {label: index for index, label in enumerate(HARDENING_SCHEMES)}


def _dynamic_instructions(report: ScenarioReport) -> Optional[float]:
    """Golden-run executed instructions (stats first, summary fallback)."""
    value = report.golden_stats.get("total_instructions_global")
    if value is None:
        value = report.golden_summary.get("instructions")
    return float(value) if value else None


def _static_instructions(report: ScenarioReport) -> Optional[float]:
    value = report.golden_stats.get("program_instructions")
    return float(value) if value else None


def _baseline_key(scenario) -> tuple:
    return (scenario.app, scenario.mode, scenario.cores, scenario.isa, scenario.target_mix_label)


def hardening_rows(database: ResultsDatabase) -> list[dict]:
    """One row per (ISA, programming model, hardening scheme)."""
    baselines = {
        _baseline_key(report.scenario): report
        for report in database.reports.values()
        if report.scenario.hardening is None
    }
    grouped: dict[tuple[str, str, str], dict] = {}
    for report in database.reports.values():
        scenario = report.scenario
        key = (scenario.isa, scenario.mode, scenario.hardening_label)
        entry = grouped.setdefault(
            key, {"scenarios": 0, "counts": {}, "static": [], "dynamic": []}
        )
        entry["scenarios"] += 1
        for outcome, count in report.counts.items():
            entry["counts"][outcome] = entry["counts"].get(outcome, 0) + count
        if scenario.hardening is not None:
            baseline = baselines.get(_baseline_key(scenario))
            if baseline is not None:
                base_static, hard_static = _static_instructions(baseline), _static_instructions(report)
                if base_static and hard_static:
                    entry["static"].append(hard_static / base_static)
                base_dyn, hard_dyn = _dynamic_instructions(baseline), _dynamic_instructions(report)
                if base_dyn and hard_dyn:
                    entry["dynamic"].append(hard_dyn / base_dyn)

    def overhead(ratios: list[float]):
        return round(sum(ratios) / len(ratios), 3) if ratios else "-"

    rows = []
    for isa, mode, scheme in sorted(
        grouped, key=lambda key: (key[0], key[1], SCHEME_ORDER.get(key[2], 99), key[2])
    ):
        entry = grouped[(isa, mode, scheme)]
        counts = entry["counts"]
        percentages = outcome_percentages(counts)
        rows.append(
            {
                "isa": isa,
                "mode": mode,
                "hardening": scheme,
                "scenarios": entry["scenarios"],
                "injections": sum(
                    count for outcome, count in counts.items() if outcome != NOT_INJECTED
                ),
                "detected_pct": round(detection_rate(counts), 3),
                # raw count, not a rate: pre-recovery stores never emitted
                # the Recovered outcome, so .get keeps legacy payloads valid
                "recovered": counts.get(Outcome.RECOVERED.value, 0),
                "omm_pct": round(percentages.get(Outcome.OMM.value, 0.0), 3),
                "hang_pct": round(percentages.get(Outcome.HANG.value, 0.0), 3),
                "ut_pct": round(percentages.get(Outcome.UT.value, 0.0), 3),
                "masking_rate_pct": round(masking_rate(counts), 3),
                # unhardened rows have no overhead to report ("-"); hardened
                # rows without an off twin in the database render "-" too
                "static_overhead_x": "-" if scheme == "off" else overhead(entry["static"]),
                "dynamic_overhead_x": "-" if scheme == "off" else overhead(entry["dynamic"]),
            }
        )
    return rows


def _matrix_from_rows(rows: list[dict]) -> list[dict]:
    pivot: dict[tuple[str, str], dict] = {}
    for row in rows:
        entry = pivot.setdefault(
            (row["isa"], row["mode"]), {"isa": row["isa"], "mode": row["mode"]}
        )
        entry[f"{row['hardening']}_detected_pct"] = row["detected_pct"]
        entry[f"{row['hardening']}_omm_pct"] = row["omm_pct"]
    return [pivot[key] for key in sorted(pivot)]


def hardening_matrix(database: ResultsDatabase) -> list[dict]:
    """Pivot of :func:`hardening_rows`: one row per (ISA, model), one
    detection-coverage and residual-OMM column per scheme — the compact
    what-does-hardening-buy comparison."""
    return _matrix_from_rows(hardening_rows(database))


def render_hardening_table(database: ResultsDatabase) -> str:
    """Textual rendering of both views of the hardening-dimension table."""
    rows = hardening_rows(database)
    detail = render_table(
        rows,
        columns=[
            "isa",
            "mode",
            "hardening",
            "scenarios",
            "injections",
            "detected_pct",
            "recovered",
            "omm_pct",
            "hang_pct",
            "ut_pct",
            "masking_rate_pct",
            "static_overhead_x",
            "dynamic_overhead_x",
        ],
        title="Software-hardening dimension — coverage, residual errors and overhead",
    )
    schemes = []
    for row in rows:
        if row["hardening"] not in schemes:
            schemes.append(row["hardening"])
    columns = ["isa", "mode"]
    for scheme in sorted(schemes, key=lambda label: SCHEME_ORDER.get(label, 99)):
        columns += [f"{scheme}_detected_pct", f"{scheme}_omm_pct"]
    matrix = render_table(
        _matrix_from_rows(rows),
        columns=columns,
        title="Software-hardening dimension — detection coverage and residual OMM (%) per scheme",
    )
    return detail + "\n\n" + matrix
