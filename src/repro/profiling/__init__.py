"""Profiling: microarchitectural statistics and functional profiling.

Two sources of profiling data feed the cross-layer data-mining tool,
mirroring Section 3.4 of the paper:

* :mod:`repro.profiling.stats_collector` — "gem5 statistics": the
  microarchitectural counters of the detailed simulation (instruction
  mix, cache behaviour, per-core utilisation);
* :mod:`repro.profiling.functional` — "OVPsim": a fast functional run
  that extracts software-level information (function usage, call
  counts, line coverage) not available from the detailed statistics.
"""

from repro.profiling.functional import FunctionalProfile, FunctionalProfiler
from repro.profiling.stats_collector import collect_microarch_stats

__all__ = ["collect_microarch_stats", "FunctionalProfiler", "FunctionalProfile"]
