"""Microarchitectural statistics collection (the "gem5 statistics").

The collector flattens everything the simulated system counted during a
run into a single ``{parameter_name: value}`` dictionary.  The paper
gathers roughly 200,000 such parameters across its 130 scenarios; here
the set per scenario is a few hundred, spanning the same families
(instruction composition, memory behaviour, cache statistics, per-core
utilisation, OS activity).
"""

from __future__ import annotations

from repro.cpu.statistics import aggregate_stats, load_balance
from repro.isa.program import Program
from repro.soc.multicore import MulticoreSystem


def collect_microarch_stats(system: MulticoreSystem, program: Program | None = None) -> dict[str, float]:
    """Flatten the system's counters into one parameter dictionary."""
    stats: dict[str, float] = {}

    total = aggregate_stats([core.stats for core in system.cores])
    stats.update(total.as_dict("total_"))
    stats["load_balance_pct"] = load_balance([core.stats for core in system.cores])
    stats["num_cores"] = len(system.cores)
    stats["total_instructions_global"] = system.total_instructions

    for core in system.cores:
        stats.update(core.stats.as_dict(f"core{core.core_id}_"))

    # cache statistics (only meaningful when cache modelling was enabled)
    if system.model_caches:
        stats.update(system.cache_stats())

    # per-process memory behaviour
    for index, process in enumerate(system.kernel.processes):
        mem = process.address_space.stats()
        for key, value in mem.items():
            stats[f"proc{index}_mem_{key}"] = value
        stats[f"proc{index}_output_bytes"] = len(process.output)
        stats[f"proc{index}_threads"] = len(process.threads)
        stats[f"proc{index}_heap_used"] = process.heap_break - (process.heap_limit - process.program.heap_size)

    # OS-level activity
    for name, count in system.kernel.syscall_counts.items():
        stats[f"syscall_{name.lower()}"] = count
    stats.update({f"sched_{k}": v for k, v in system.kernel.scheduler.stats().items()})

    # static program properties
    if program is not None:
        summary = program.summary()
        stats["program_instructions"] = summary["instructions"]
        stats["program_text_bytes"] = summary["text_bytes"]
        stats["program_data_bytes"] = summary["data_bytes"]
        stats["program_functions"] = summary["functions"]

    # architecture properties that the mining stage correlates against
    stats["arch_xlen"] = system.arch.xlen
    stats["arch_num_gpr"] = system.arch.num_gpr
    stats["arch_has_hw_float"] = 1.0 if system.arch.has_hw_float else 0.0

    # derived indices highlighted by the paper
    stats["branches_total"] = total.branches
    stats["function_calls_total"] = total.calls
    stats["fb_index_raw"] = float(total.branches) * float(total.calls)
    stats["memory_instruction_pct"] = total.memory_instruction_pct
    stats["read_write_ratio"] = total.read_write_ratio
    return stats
