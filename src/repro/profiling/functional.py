"""Fast functional profiler (the reproduction's "OVPsim").

The paper uses the instruction-accurate OVPsim platform to extract
software-level profiling information — function usage, line coverage —
that the detailed gem5 simulation does not expose conveniently.  Here
the same role is played by a second, cache-less run with a per-
instruction trace hook that attributes executed instructions to the
functions and source statements of the program.

Installing a ``trace_hook`` is the execution engine's deopt trigger:
cores with a hook run on the per-instruction reference interpreter
(``Core.step``) so the hook observes every instruction at its exact
fetch PC — the pre-decoded block engine never executes hooked cores
(see :mod:`repro.cpu.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.npb.suite import Scenario, build_program, create_system, instruction_budget, launch_scenario


@dataclass
class FunctionalProfile:
    """Software-level profile of one scenario."""

    scenario_id: str
    total_instructions: int
    function_instructions: dict[str, int] = field(default_factory=dict)
    function_calls: dict[str, int] = field(default_factory=dict)
    line_coverage: dict[str, set] = field(default_factory=dict)
    runtime_functions: tuple[str, ...] = ()
    #: Per-text-index execution counts (only populated when the profiler
    #: runs with ``instruction_counts=True``; the static vulnerability
    #: analysis uses these as basic-block weights).
    instruction_counts: dict[int, int] = field(default_factory=dict)

    def function_share(self) -> dict[str, float]:
        """Fraction of executed instructions spent in each function."""
        if not self.total_instructions:
            return {}
        return {
            name: count / self.total_instructions
            for name, count in sorted(self.function_instructions.items())
        }

    def coverage_ratio(self, program_lines: dict[str, int]) -> dict[str, float]:
        """Executed-statement coverage per function."""
        out = {}
        for name, total in program_lines.items():
            covered = len(self.line_coverage.get(name, ()))
            out[name] = covered / total if total else 0.0
        return out

    def vulnerability_window(self, api_prefixes: tuple[str, ...] = ("omp_", "mpi_", "__sf_")) -> float:
        """Share of execution time spent inside runtime/API functions.

        This is the paper's "vulnerability window" of the
        parallelisation libraries (Section 4.2.2): the fraction of the
        run during which a fault would strike API code rather than
        application code.
        """
        if not self.total_instructions:
            return 0.0
        api = sum(
            count
            for name, count in self.function_instructions.items()
            if name.startswith(api_prefixes)
        )
        return api / self.total_instructions

    def top_functions(self, count: int = 10) -> list[tuple[str, int]]:
        return sorted(self.function_instructions.items(), key=lambda item: -item[1])[:count]


class FunctionalProfiler:
    """Runs a scenario with a per-instruction trace hook."""

    def __init__(
        self,
        api_prefixes: tuple[str, ...] = ("omp_", "mpi_", "__sf_"),
        instruction_counts: bool = False,
    ):
        self.api_prefixes = api_prefixes
        self.instruction_counts = instruction_counts

    def run(self, scenario: Scenario) -> FunctionalProfile:
        program = build_program(scenario.app, scenario.mode, scenario.isa, scenario.hardening)
        system = create_system(scenario, model_caches=False)
        launch_scenario(system, scenario, program)

        # Precompute instruction-index -> function and -> line for fast lookup.
        function_of = [""] * len(program.instructions)
        for name, (start, end) in program.function_ranges.items():
            for index in range(start, min(end, len(program.instructions))):
                function_of[index] = name
        line_of = program.line_table

        entry_of = {start: name for name, (start, _end) in program.function_ranges.items()}

        function_instructions: dict[str, int] = {}
        function_calls: dict[str, int] = {}
        line_coverage: dict[str, set] = {}
        instruction_counts: dict[int, int] = {}
        count_indices = self.instruction_counts
        text_base = system.kernel.loader.text_base

        def hook(core, pc):
            index = (pc - text_base) >> 2
            if 0 <= index < len(function_of):
                name = function_of[index]
                function_instructions[name] = function_instructions.get(name, 0) + 1
                if count_indices:
                    instruction_counts[index] = instruction_counts.get(index, 0) + 1
                entry = entry_of.get(index)
                if entry is not None:
                    function_calls[entry] = function_calls.get(entry, 0) + 1
                record = line_of.get(index)
                if record is not None:
                    line_coverage.setdefault(record[0], set()).add(record[1])

        for core in system.cores:
            core.trace_hook = hook

        system.run(max_instructions=instruction_budget(scenario))

        return FunctionalProfile(
            scenario_id=scenario.scenario_id,
            total_instructions=system.total_instructions,
            function_instructions=function_instructions,
            function_calls=function_calls,
            line_coverage=line_coverage,
            runtime_functions=tuple(
                name for name in program.function_ranges if name.startswith(self.api_prefixes)
            ),
            instruction_counts=instruction_counts,
        )
