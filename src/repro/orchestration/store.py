"""Append-mode campaign store: streaming persistence for suite runs.

A campaign of the paper's scale (130 scenarios, 8,000 injections each)
runs for a long time; holding every report only in memory means one
crash — or one Ctrl-C — loses the whole suite.  The store streams each
finished scenario to disk the moment it completes:

```
<root>/
    manifest.json               # suite composition + campaign config
    shards/<scenario_id>.json   # one lossless ScenarioReport per file
    failures/<scenario_id>.json # structured record of a failed scenario
```

Every file is written atomically (temp file + ``os.replace``), so a
shard either exists completely or not at all; an interrupted suite
leaves no torn shards behind.  ``run_suite(..., resume=True)`` skips
scenarios whose shards exist and retries the ones recorded as failures
(a later success clears the failure record).
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import SimulatorError
from repro.injection.campaign import ScenarioReport

#: Bumped when the shard/manifest layout changes incompatibly.
STORE_FORMAT = 1


@dataclass(frozen=True)
class ScenarioFailure:
    """Structured record of one scenario that failed inside a suite run.

    ``phase`` names the campaign phase that raised (``golden``,
    ``inject`` or ``assemble``); the suite continues past the failure
    and the record is what ``resume`` uses to retry it later.
    """

    scenario_id: str
    phase: str
    error_type: str
    error: str
    attempts: int = 1

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioFailure":
        return cls(
            scenario_id=str(payload["scenario_id"]),
            phase=str(payload["phase"]),
            error_type=str(payload["error_type"]),
            error=str(payload["error"]),
            attempts=int(payload.get("attempts", 1)),
        )


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON with no partially-visible state.

    The temp file lives in the destination directory so ``os.replace``
    stays a same-filesystem rename (atomic on POSIX and Windows).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class CampaignStore:
    """On-disk campaign state: manifest, per-scenario shards, failures."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def failures_dir(self) -> Path:
        return self.root / "failures"

    def shard_path(self, scenario_id: str) -> Path:
        return self.shards_dir / f"{scenario_id}.json"

    def failure_path(self, scenario_id: str) -> Path:
        return self.failures_dir / f"{scenario_id}.json"

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def read_manifest(self) -> Optional[dict]:
        if not self.manifest_path.exists():
            return None
        with self.manifest_path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def write_manifest(self, scenario_ids: Iterable[str], config: dict, faults: Optional[int]) -> None:
        _atomic_write_json(
            self.manifest_path,
            {
                "format": STORE_FORMAT,
                "scenario_ids": list(scenario_ids),
                "config": config,
                "faults": faults,
            },
        )

    def check_resumable(self, scenario_ids: list[str], config: dict, faults: Optional[int]) -> None:
        """Refuse to resume a store written by a different campaign.

        Shards are only interchangeable between runs with the same
        configuration (seed, fault count, checkpoint interval, ...), so
        a mismatch raises instead of silently mixing result sets.  The
        scenario list may differ (filters narrow a resumed run); only
        scenarios outside the stored suite are rejected.
        """
        manifest = self.read_manifest()
        if manifest is None:
            return
        if manifest.get("format") != STORE_FORMAT:
            raise SimulatorError(
                f"campaign store {self.root} has format {manifest.get('format')!r}, "
                f"expected {STORE_FORMAT}"
            )
        if manifest.get("config") != config or manifest.get("faults") != faults:
            raise SimulatorError(
                f"campaign store {self.root} was written with a different campaign "
                "configuration; resuming would mix incompatible result sets"
            )
        known = set(manifest.get("scenario_ids", []))
        unknown = [sid for sid in scenario_ids if sid not in known]
        if unknown:
            raise SimulatorError(
                f"campaign store {self.root} does not cover scenarios {unknown[:5]}; "
                "it was written for a different suite"
            )

    # ------------------------------------------------------------------
    # shards
    # ------------------------------------------------------------------

    def has_shard(self, scenario_id: str) -> bool:
        return self.shard_path(scenario_id).exists()

    def completed_ids(self) -> set[str]:
        if not self.shards_dir.exists():
            return set()
        return {path.stem for path in self.shards_dir.glob("*.json")}

    def write_shard(self, report: ScenarioReport) -> Path:
        """Persist one finished scenario; a success clears any stale failure."""
        path = self.shard_path(report.scenario_id)
        _atomic_write_json(path, {"format": STORE_FORMAT, "report": report.to_payload()})
        self.clear_failure(report.scenario_id)
        return path

    def load_shard(self, scenario_id: str) -> ScenarioReport:
        path = self.shard_path(scenario_id)
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != STORE_FORMAT:
            raise SimulatorError(f"shard {path} has unsupported format {payload.get('format')!r}")
        return ScenarioReport.from_payload(payload["report"])

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def write_failure(self, failure: ScenarioFailure) -> Path:
        path = self.failure_path(failure.scenario_id)
        _atomic_write_json(path, failure.as_dict())
        return path

    def clear_failure(self, scenario_id: str) -> None:
        path = self.failure_path(scenario_id)
        if path.exists():
            path.unlink()

    def load_failures(self) -> list[ScenarioFailure]:
        if not self.failures_dir.exists():
            return []
        failures = []
        for path in sorted(self.failures_dir.glob("*.json")):
            with path.open("r", encoding="utf-8") as handle:
                failures.append(ScenarioFailure.from_dict(json.load(handle)))
        return failures
