"""Append-mode campaign store: streaming persistence for suite runs.

A campaign of the paper's scale (130 scenarios, 8,000 injections each)
runs for a long time; holding every report only in memory means one
crash — or one Ctrl-C — loses the whole suite.  The store streams each
finished scenario to disk the moment it completes:

```
<root>/
    manifest.json               # suite composition + campaign config
    shards/<scenario_id>.json   # one lossless ScenarioReport per file
    failures/<scenario_id>.json # structured record of a failed scenario
    leases/<scenario_id>.json   # live claim of a scenario by one worker
```

Every file is written atomically (temp file + ``os.replace``), so a
shard either exists completely or not at all; an interrupted suite
leaves no torn shards behind.  ``run_suite(..., resume=True)`` skips
scenarios whose shards exist and retries the ones recorded as failures
(a later success clears the failure record).

The ``leases/`` directory is the store's distributed-execution
protocol: any number of processes — or hosts sharing the store root —
can partition one manifest without double-running a scenario.  A lease
is *acquired* by atomically creating its file (``os.open`` with
``O_CREAT | O_EXCL``: exactly one contender wins), *kept alive* by
heartbeat renewals that refresh the ``renewed_at`` timestamp, and
*expires* ``ttl`` seconds after the last renewal.  An expired lease is
*reclaimed* by atomically renaming it to a tombstone — again exactly
one contender wins the rename — after which the scenario is claimable
anew.  Completion goes through :meth:`CampaignStore.commit_leased`,
which refuses to write a shard for a lease the worker no longer holds,
so a worker that stalls past its ttl and resumes cannot duplicate the
shard of the worker that reclaimed its scenario.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import SimulatorError
from repro.injection.campaign import ScenarioReport

#: Bumped when the shard/manifest layout changes incompatibly.
STORE_FORMAT = 1

#: Default lease lifetime: a worker must renew within this window or
#: its scenario becomes reclaimable.  Generous relative to the renewal
#: period (see :class:`LeaseHeartbeat`) so one missed heartbeat — a GC
#: pause, a busy scheduler — never forfeits a live worker's lease.
DEFAULT_LEASE_TTL = 120.0

#: Tombstone counter: makes reclaim-rename targets unique within one
#: process (the pid makes them unique across processes).
_RECLAIM_COUNTER = itertools.count()


@dataclass(frozen=True)
class ScenarioFailure:
    """Structured record of one scenario that failed inside a suite run.

    ``phase`` names the campaign phase that raised (``golden``,
    ``inject`` or ``assemble``); the suite continues past the failure
    and the record is what ``resume`` uses to retry it later.
    """

    scenario_id: str
    phase: str
    error_type: str
    error: str
    attempts: int = 1

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioFailure":
        return cls(
            scenario_id=str(payload["scenario_id"]),
            phase=str(payload["phase"]),
            error_type=str(payload["error_type"]),
            error=str(payload["error"]),
            attempts=int(payload.get("attempts", 1)),
        )


@dataclass(frozen=True)
class ScenarioLease:
    """One worker's live claim on one scenario of a shared store.

    ``renewed_at`` starts equal to ``acquired_at`` and moves forward
    with every heartbeat; the lease expires ``ttl`` seconds after the
    last renewal.  Timestamps are ``time.time()`` seconds — wall-clock,
    because they must be comparable across hosts sharing the store.
    """

    scenario_id: str
    owner: str
    acquired_at: float
    renewed_at: float
    ttl: float

    @property
    def expires_at(self) -> float:
        return self.renewed_at + self.ttl

    def expired(self, now: Optional[float] = None) -> bool:
        return (time.time() if now is None else now) >= self.expires_at

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ScenarioLease":
        return cls(
            scenario_id=str(payload["scenario_id"]),
            owner=str(payload["owner"]),
            acquired_at=float(payload["acquired_at"]),
            renewed_at=float(payload["renewed_at"]),
            ttl=float(payload["ttl"]),
        )


class LeaseHeartbeat:
    """Background renewal of one lease while its scenario executes.

    A daemon thread renews every ``ttl / 4`` seconds (so three
    consecutive renewals must fail before the lease can expire).  If a
    renewal reports the lease lost — the worker stalled past its ttl
    and somebody reclaimed the scenario — the heartbeat records it and
    stops; the worker checks :attr:`lost` before committing results.
    """

    def __init__(self, store: "CampaignStore", scenario_id: str, owner: str, ttl: float) -> None:
        self.store = store
        self.scenario_id = scenario_id
        self.owner = owner
        self.interval = max(0.05, ttl / 4.0)
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{scenario_id}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            if not self.store.renew_lease(self.scenario_id, self.owner):
                self.lost = True
                return

    def __enter__(self) -> "LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _config_mismatches(stored: dict, requested: dict) -> list[str]:
    """Human-readable diff of two campaign-config dicts, by key."""
    mismatches = []
    missing = object()
    for key in sorted(set(stored) | set(requested)):
        ours, theirs = stored.get(key, missing), requested.get(key, missing)
        if ours != theirs:
            mismatches.append(
                f"{key}: store has {'<absent>' if ours is missing else repr(ours)}, "
                f"requested {'<absent>' if theirs is missing else repr(theirs)}"
            )
    return mismatches


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` as JSON with no partially-visible state.

    The temp file lives in the destination directory so ``os.replace``
    stays a same-filesystem rename (atomic on POSIX and Windows).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class CampaignStore:
    """On-disk campaign state: manifest, per-scenario shards, failures."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def shards_dir(self) -> Path:
        return self.root / "shards"

    @property
    def failures_dir(self) -> Path:
        return self.root / "failures"

    @property
    def leases_dir(self) -> Path:
        return self.root / "leases"

    @property
    def partials_dir(self) -> Path:
        return self.root / "partials"

    def shard_path(self, scenario_id: str) -> Path:
        return self.shards_dir / f"{scenario_id}.json"

    def failure_path(self, scenario_id: str) -> Path:
        return self.failures_dir / f"{scenario_id}.json"

    def lease_path(self, scenario_id: str) -> Path:
        return self.leases_dir / f"{scenario_id}.json"

    def partial_path(self, scenario_id: str) -> Path:
        return self.partials_dir / f"{scenario_id}.json"

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------

    def read_manifest(self) -> Optional[dict]:
        if not self.manifest_path.exists():
            return None
        with self.manifest_path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def write_manifest(
        self,
        scenario_ids: Iterable[str],
        config: dict,
        faults: Optional[int],
        plan: Optional[dict] = None,
    ) -> None:
        manifest = {
            "format": STORE_FORMAT,
            "scenario_ids": list(scenario_ids),
            "config": config,
            "faults": faults,
        }
        # The key is only present for adaptive campaigns: fixed-count
        # manifests must stay byte-identical to pre-plan stores.
        if plan is not None:
            manifest["plan"] = plan
        _atomic_write_json(self.manifest_path, manifest)

    def check_resumable(
        self,
        scenario_ids: list[str],
        config: dict,
        faults: Optional[int],
        plan: Optional[dict] = None,
    ) -> None:
        """Refuse to resume a store written by a different campaign.

        Shards are only interchangeable between runs with the same
        configuration (seed, fault count, checkpoint interval, ...), so
        a mismatch raises instead of silently mixing result sets.  The
        scenario list may differ (filters narrow a resumed run); only
        scenarios outside the stored suite are rejected.
        """
        manifest = self.read_manifest()
        if manifest is None:
            return
        if manifest.get("format") != STORE_FORMAT:
            raise SimulatorError(
                f"campaign store {self.root} has format {manifest.get('format')!r}, "
                f"expected {STORE_FORMAT}"
            )
        mismatches = _config_mismatches(dict(manifest.get("config") or {}), dict(config))
        if manifest.get("faults") != faults:
            mismatches.append(
                f"faults: store has {manifest.get('faults')!r}, requested {faults!r}"
            )
        if manifest.get("plan") != plan:
            mismatches.append(
                f"plan: store has {manifest.get('plan')!r}, requested {plan!r}"
            )
        if mismatches:
            raise SimulatorError(
                f"campaign store {self.root} was written with a different campaign "
                "configuration; resuming would mix incompatible result sets "
                f"({'; '.join(mismatches)})"
            )
        known = set(manifest.get("scenario_ids", []))
        unknown = [sid for sid in scenario_ids if sid not in known]
        if unknown:
            raise SimulatorError(
                f"campaign store {self.root} does not cover scenarios {unknown[:5]}; "
                "it was written for a different suite"
            )

    # ------------------------------------------------------------------
    # shards
    # ------------------------------------------------------------------

    def has_shard(self, scenario_id: str) -> bool:
        return self.shard_path(scenario_id).exists()

    def completed_ids(self) -> set[str]:
        if not self.shards_dir.exists():
            return set()
        return {path.stem for path in self.shards_dir.glob("*.json")}

    def write_shard(self, report: ScenarioReport) -> Path:
        """Persist one finished scenario; a success clears any stale failure."""
        path = self.shard_path(report.scenario_id)
        _atomic_write_json(path, {"format": STORE_FORMAT, "report": report.to_payload()})
        self.clear_failure(report.scenario_id)
        self.clear_partial(report.scenario_id)
        return path

    def load_shard(self, scenario_id: str) -> ScenarioReport:
        path = self.shard_path(scenario_id)
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != STORE_FORMAT:
            raise SimulatorError(f"shard {path} has unsupported format {payload.get('format')!r}")
        return ScenarioReport.from_payload(payload["report"])

    # ------------------------------------------------------------------
    # partials: batch-granular checkpoints of adaptive scenarios
    # ------------------------------------------------------------------

    def write_partial(self, scenario_id: str, payload: dict) -> Path:
        """Checkpoint an unconverged adaptive scenario after a batch.

        The payload is the batch provenance plus all injection results
        so far (see CampaignRunner's adaptive path); a resumed run — or
        a peer continuing a reclaimed lease — restores the controller
        from it and draws the *same* next batch the original process
        would have.
        """
        path = self.partial_path(scenario_id)
        _atomic_write_json(path, {"format": STORE_FORMAT, "partial": payload})
        return path

    def write_partial_leased(self, scenario_id: str, payload: dict, owner: str) -> bool:
        """Checkpoint iff ``owner`` still holds the scenario's lease.

        Mirrors ``commit_leased``: a worker that stalled past its ttl
        must not clobber the checkpoint stream of the peer that
        reclaimed the scenario.
        """
        lease = self.read_lease(scenario_id)
        if lease is None or lease.owner != owner or lease.expired():
            return False
        self.write_partial(scenario_id, payload)
        return True

    def load_partial(self, scenario_id: str) -> Optional[dict]:
        path = self.partial_path(scenario_id)
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if payload.get("format") != STORE_FORMAT:
            raise SimulatorError(
                f"partial {path} has unsupported format {payload.get('format')!r}"
            )
        return payload["partial"]

    def clear_partial(self, scenario_id: str) -> None:
        path = self.partial_path(scenario_id)
        if path.exists():
            path.unlink()

    def partial_ids(self) -> set[str]:
        if not self.partials_dir.exists():
            return set()
        return {path.stem for path in self.partials_dir.glob("*.json")}

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def write_failure(self, failure: ScenarioFailure) -> Path:
        path = self.failure_path(failure.scenario_id)
        _atomic_write_json(path, failure.as_dict())
        return path

    def clear_failure(self, scenario_id: str) -> None:
        path = self.failure_path(scenario_id)
        if path.exists():
            path.unlink()

    def load_failures(self) -> list[ScenarioFailure]:
        if not self.failures_dir.exists():
            return []
        failures = []
        for path in sorted(self.failures_dir.glob("*.json")):
            with path.open("r", encoding="utf-8") as handle:
                failures.append(ScenarioFailure.from_dict(json.load(handle)))
        return failures

    # ------------------------------------------------------------------
    # leases: distributed partitioning of one manifest
    # ------------------------------------------------------------------

    def acquire_lease(
        self,
        scenario_id: str,
        owner: str,
        ttl: float = DEFAULT_LEASE_TTL,
        now: Optional[float] = None,
    ) -> Optional[ScenarioLease]:
        """Atomically claim one scenario; ``None`` if somebody holds it.

        The ``O_CREAT | O_EXCL`` open is the claim: exactly one
        contender creates the file, everybody else gets
        ``FileExistsError``.  The payload is written with a single
        ``os.write`` after the claim is already decided, so a loser can
        never overwrite a winner.
        """
        if ttl <= 0:
            raise SimulatorError(f"invalid lease ttl {ttl}")
        now = time.time() if now is None else now
        self.leases_dir.mkdir(parents=True, exist_ok=True)
        lease = ScenarioLease(
            scenario_id=scenario_id, owner=owner, acquired_at=now, renewed_at=now, ttl=ttl
        )
        try:
            fd = os.open(self.lease_path(scenario_id), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return None
        try:
            os.write(fd, json.dumps(lease.as_dict(), sort_keys=True).encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        return lease

    def read_lease(self, scenario_id: str) -> Optional[ScenarioLease]:
        """The current lease on a scenario, or ``None``.

        A lease file caught between its ``O_EXCL`` creation and payload
        write reads as empty/torn JSON; it is reported as a live
        anonymous lease (owner ``"?"``, renewed at the file's mtime)
        rather than ignored, so a half-written claim is never treated
        as free.
        """
        path = self.lease_path(scenario_id)
        try:
            raw = path.read_text(encoding="utf-8")
            stamp = path.stat().st_mtime
        except FileNotFoundError:
            return None
        try:
            return ScenarioLease.from_dict(json.loads(raw))
        except (ValueError, KeyError):
            return ScenarioLease(
                scenario_id=scenario_id,
                owner="?",
                acquired_at=stamp,
                renewed_at=stamp,
                ttl=DEFAULT_LEASE_TTL,
            )

    def renew_lease(self, scenario_id: str, owner: str, now: Optional[float] = None) -> bool:
        """Heartbeat: refresh ``renewed_at``; ``False`` if the lease is lost.

        A lease is *lost* when its file is gone (released or reclaimed)
        or now names a different owner — the worker stalled past its
        ttl and somebody reclaimed the scenario.
        """
        lease = self.read_lease(scenario_id)
        if lease is None or lease.owner != owner:
            return False
        now = time.time() if now is None else now
        renewed = ScenarioLease(
            scenario_id=lease.scenario_id,
            owner=lease.owner,
            acquired_at=lease.acquired_at,
            renewed_at=now,
            ttl=lease.ttl,
        )
        _atomic_write_json(self.lease_path(scenario_id), renewed.as_dict())
        return True

    def release_lease(self, scenario_id: str, owner: str) -> bool:
        """Drop a lease this owner holds; ``False`` if it was not held."""
        lease = self.read_lease(scenario_id)
        if lease is None or lease.owner != owner:
            return False
        try:
            self.lease_path(scenario_id).unlink()
        except FileNotFoundError:
            return False
        return True

    def reclaim_lease(self, scenario_id: str, now: Optional[float] = None) -> bool:
        """Remove one *expired* lease; ``True`` if this call removed it.

        Reclaim must be race-free against other reclaimers: the lease
        file is atomically renamed to a unique tombstone first, so of N
        concurrent reclaimers exactly one wins the rename (the rest get
        ``FileNotFoundError``) and a loser can never unlink the *fresh*
        lease a winner's claimant just created under the original name.
        """
        lease = self.read_lease(scenario_id)
        if lease is None or not lease.expired(now):
            return False
        tombstone = self.lease_path(scenario_id).with_name(
            f".{scenario_id}.reclaimed-{os.getpid()}-{next(_RECLAIM_COUNTER)}"
        )
        try:
            os.rename(self.lease_path(scenario_id), tombstone)
        except FileNotFoundError:
            return False  # another reclaimer won
        tombstone.unlink()
        return True

    def active_leases(self, now: Optional[float] = None) -> list[ScenarioLease]:
        """All live (non-expired) leases, sorted by scenario id."""
        if not self.leases_dir.exists():
            return []
        leases = []
        for path in sorted(self.leases_dir.glob("*.json")):
            lease = self.read_lease(path.stem)
            if lease is not None and not lease.expired(now):
                leases.append(lease)
        return leases

    def claim_next(
        self,
        owner: str,
        scenario_ids: Optional[Iterable[str]] = None,
        ttl: float = DEFAULT_LEASE_TTL,
        now: Optional[float] = None,
    ) -> Optional[ScenarioLease]:
        """Claim the first scenario that is neither completed nor leased.

        Scans ``scenario_ids`` (default: the manifest's) in order;
        expired leases encountered on the way are reclaimed.  Returns
        the acquired lease, or ``None`` when every remaining scenario
        is done or held by a live lease — the caller then either backs
        off and retries (other workers may still die) or exits.
        """
        if scenario_ids is None:
            manifest = self.read_manifest()
            scenario_ids = list(manifest.get("scenario_ids", [])) if manifest else []
        completed = self.completed_ids()
        for scenario_id in scenario_ids:
            if scenario_id in completed:
                continue
            existing = self.read_lease(scenario_id)
            if existing is not None:
                if not existing.expired(now):
                    continue
                self.reclaim_lease(scenario_id, now)
            lease = self.acquire_lease(scenario_id, owner, ttl=ttl, now=now)
            if lease is None:
                continue  # lost the race for this one; try the next
            if self.has_shard(scenario_id):
                # Completed between our completed_ids() snapshot and the
                # claim: hand the lease straight back.
                self.release_lease(scenario_id, owner)
                continue
            return lease
        return None

    def commit_leased(self, report: ScenarioReport, owner: str) -> bool:
        """Write a leased scenario's shard iff the lease is still held.

        The guard against double execution: a worker that stalled past
        its ttl finds its lease reclaimed (or re-owned) here and must
        discard its result — the reclaiming worker's run of the same
        scenario is the one that counts.  Returns ``True`` when the
        shard was written; the lease is released either way only if
        this owner still holds it.
        """
        lease = self.read_lease(report.scenario_id)
        if lease is None or lease.owner != owner:
            return False
        self.write_shard(report)
        self.release_lease(report.scenario_id, owner)
        return True

    def pending_ids(self) -> list[str]:
        """Manifest scenarios that have no shard yet, in manifest order."""
        manifest = self.read_manifest()
        if manifest is None:
            return []
        completed = self.completed_ids()
        return [sid for sid in manifest.get("scenario_ids", []) if sid not in completed]
