"""Campaign runner: executes injection jobs serially or on a process pool.

Phases one and two (golden run, fault list) execute in the parent
process because they are common to all injections of a scenario; phase
three (the injections) fans out over worker processes; phase four
(assembling the database) runs back in the parent.

The golden reference — including its memory snapshots and system
checkpoints — is shipped to each worker exactly once through the pool
initializer.  Jobs themselves stay light (scenario + fault descriptors),
so the per-job pickling cost no longer scales with golden-run size.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Iterable, Optional

from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig, ScenarioCampaign, ScenarioReport, summarize
from repro.injection.golden import GoldenRunResult
from repro.injection.injector import FaultInjector, InjectionResult
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase
from repro.orchestration.jobs import CampaignJob, JobBatcher

#: Golden references shared per worker process, keyed by scenario id.
#: Populated by :func:`_init_worker` (pool initializer, or directly for
#: in-process execution) so jobs do not need to carry the golden data.
_WORKER_GOLDEN: dict[str, GoldenRunResult] = {}


def _init_worker(scenario: Scenario, golden: GoldenRunResult) -> None:
    """Install one scenario's golden reference in this worker process.

    Pools live for a single scenario, so earlier entries are dropped to
    keep long suite runs from accumulating golden data in the parent.
    """
    _WORKER_GOLDEN.clear()
    _WORKER_GOLDEN[scenario.scenario_id] = golden


def resolve_golden(job: CampaignJob) -> GoldenRunResult:
    """The golden reference for ``job``: inline if carried, else shared."""
    if job.golden is not None:
        return job.golden
    golden = _WORKER_GOLDEN.get(job.scenario.scenario_id)
    if golden is None:
        raise SimulatorError(
            f"no golden reference for {job.scenario.scenario_id}: job carries none "
            "and the worker was not initialised with one"
        )
    return golden


def execute_job(job: CampaignJob) -> list[InjectionResult]:
    """Execute one batch of injections (runs inside a worker process)."""
    allowed = job.allowed_target_kinds()
    if allowed is not None:
        for fault in job.faults:
            if fault.target_kind not in allowed:
                raise SimulatorError(
                    f"job {job.job_id} carries a {fault.target_kind!r} fault but its "
                    f"target mix only permits {sorted(allowed)}"
                )
    injector = FaultInjector(
        job.scenario, resolve_golden(job), watchdog_multiplier=job.watchdog_multiplier
    )
    return injector.run_many(job.faults)


def pool_context(start_method: Optional[str] = None):
    """A multiprocessing context, falling back to spawn-safe methods.

    ``fork`` is the cheapest start method (workers inherit the parent's
    compiled program cache), but it is unavailable on some platforms
    (Windows; macOS defaults away from it).  When no method is forced,
    fall back through ``fork`` → ``forkserver`` → ``spawn`` → the
    platform default.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    for method in ("fork", "forkserver", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return multiprocessing.get_context()


class CampaignRunner:
    """Runs fault-injection campaigns over many scenarios.

    Parameters
    ----------
    config:
        Campaign configuration (faults per scenario, seeds, watchdog,
        checkpoint interval).
    workers:
        Number of worker processes; 0 or 1 selects in-process execution.
    faults_per_job:
        Batch size used by the job batcher.
    start_method:
        Multiprocessing start method; ``None`` auto-selects (fork where
        available, spawn otherwise).
    """

    def __init__(
        self,
        config: Optional[CampaignConfig] = None,
        workers: int = 0,
        faults_per_job: int = 16,
        progress: Optional[Callable[[str], None]] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.config = config or CampaignConfig()
        self.workers = workers
        self.start_method = start_method
        self.batcher = JobBatcher(faults_per_job=faults_per_job)
        self.progress = progress or (lambda message: None)

    # ------------------------------------------------------------------

    def _run_jobs(
        self, jobs: list[CampaignJob], scenario: Scenario, golden: GoldenRunResult
    ) -> list[InjectionResult]:
        if self.workers and self.workers > 1 and len(jobs) > 1:
            context = pool_context(self.start_method)
            with context.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(scenario, golden),
            ) as pool:
                chunks = pool.map(execute_job, jobs)
        else:
            _init_worker(scenario, golden)
            chunks = [execute_job(job) for job in jobs]
        results: list[InjectionResult] = []
        for chunk in chunks:
            results.extend(chunk)
        return results

    def run_scenario(self, scenario: Scenario, faults: Optional[int] = None) -> ScenarioReport:
        """Run the four-phase workflow for one scenario."""
        start = time.perf_counter()
        campaign = ScenarioCampaign(scenario, self.config)
        self.progress(f"[golden] {scenario.scenario_id}")
        golden = campaign.run_golden()
        fault_list = campaign.build_fault_list(faults)
        # Jobs are payload-light: the golden reference (memory snapshots,
        # checkpoints) travels once per worker, not once per job.  The
        # effective target mix rides along so workers can sanity-check
        # the fault dimension they execute.
        jobs = self.batcher.batch(
            scenario,
            None,
            fault_list,
            watchdog_multiplier=self.config.watchdog_multiplier,
            target_mix=campaign.resolved_target_mix(),
        )
        self.progress(
            f"[inject] {scenario.scenario_id}: {len(fault_list)} faults in {len(jobs)} jobs, "
            f"{len(golden.checkpoints)} checkpoints"
        )
        results = self._run_jobs(jobs, scenario, golden)
        elapsed = time.perf_counter() - start
        report = summarize(
            scenario,
            golden,
            results,
            elapsed,
            keep_individual_results=self.config.keep_individual_results,
            target_mix=campaign.resolved_target_mix(),
        )
        self.progress(
            f"[done]   {scenario.scenario_id}: " +
            ", ".join(f"{k}={v}" for k, v in report.counts.items())
        )
        return report

    def run_suite(
        self,
        scenarios: Iterable[Scenario],
        faults: Optional[int] = None,
        database: Optional[ResultsDatabase] = None,
    ) -> ResultsDatabase:
        """Run a campaign over many scenarios, assembling a results database."""
        database = database if database is not None else ResultsDatabase()
        for scenario in scenarios:
            report = self.run_scenario(scenario, faults=faults)
            database.add_report(report)
        return database
