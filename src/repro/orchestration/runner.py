"""Campaign runner: a resilient, resumable, pipelined suite engine.

Phases one and two (golden run, fault list) execute in the parent
process because they are common to all injections of a scenario; phase
three (the injections) fans out over worker processes; phase four
(assembling the database) runs back in the parent.

Suite-scale orchestration is built around four ideas:

**Persistent pool.**  One worker pool lives for the whole suite.  Each
worker keeps a small keyed cache of golden references
(:class:`GoldenCache`); the parent broadcasts an explicit *install*
message when a scenario starts and an *evict* message when it ends,
instead of tearing the pool down between scenarios.  Broadcast delivery
is barrier-coordinated but never load-bearing: every job carries a
spool-file reference (:attr:`CampaignJob.golden_ref`), so a worker that
missed the broadcast lazily loads the golden it needs.

**Pipelined phases.**  While scenario N's injection jobs drain on the
pool, scenario N+1's golden run executes on a background thread.  The
parent is idle while waiting on the pool (the workers are separate
processes), so the golden phase no longer serialises the suite.

**Streaming persistence and resume.**  With a
:class:`~repro.orchestration.store.CampaignStore`, every finished
scenario is written to its own shard atomically; ``resume=True`` skips
scenarios whose shards exist and retries recorded failures.  An
exception in one scenario becomes a structured
:class:`~repro.orchestration.store.ScenarioFailure` and the suite
continues; a ``KeyboardInterrupt`` stops the suite but all completed
shards stay on disk.

**Per-job fault isolation.**  Jobs run through ``imap_unordered`` with
per-job error capture and bounded retry; a single poisoned job is
recorded in the report's ``job_failures`` instead of discarding the
scenario's other results.  Assembly sorts by job id, so the report is
deterministic regardless of worker scheduling.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Iterable, Optional, Union

from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig, ScenarioCampaign, ScenarioReport, summarize
from repro.injection.golden import GoldenRunResult
from repro.injection.injector import FaultInjector, InjectionResult
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase
from repro.orchestration.jobs import CampaignJob, JobBatcher
from repro.orchestration.store import (
    DEFAULT_LEASE_TTL,
    CampaignStore,
    LeaseHeartbeat,
    ScenarioFailure,
)
from repro.stats.controller import AdaptiveController
from repro.stats.plan import SamplingPlan
from repro.stats.prior import MinedPrior

#: How long a control broadcast waits for every worker to rendezvous.
#: Broadcasts happen at scenario boundaries when the pool is idle, so
#: hitting this means a worker is wedged; the suite then falls back to
#: lazy spool-file loading rather than failing.
CONTROL_BARRIER_TIMEOUT = 60.0


class GoldenCache:
    """Keyed per-worker cache of golden references, LRU-bounded.

    One instance lives at module level in every worker process (and in
    the parent for in-process execution).  ``capacity`` stays small —
    with pipelining at most two scenarios are in flight, so two entries
    bound worker memory no matter how long the suite is.
    """

    def __init__(self, capacity: int = 2) -> None:
        if capacity < 1:
            raise SimulatorError(f"invalid golden cache capacity {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, GoldenRunResult]" = OrderedDict()

    def install(self, scenario_id: str, golden: GoldenRunResult) -> None:
        self._entries[scenario_id] = golden
        self._entries.move_to_end(scenario_id)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def load(self, scenario_id: str, path: str) -> GoldenRunResult:
        with open(path, "rb") as handle:
            golden = pickle.load(handle)
        self.install(scenario_id, golden)
        return golden

    def evict(self, scenario_id: str) -> None:
        self._entries.pop(scenario_id, None)

    def get(self, scenario_id: str) -> Optional[GoldenRunResult]:
        golden = self._entries.get(scenario_id)
        if golden is not None:
            self._entries.move_to_end(scenario_id)
        return golden

    def clear(self) -> None:
        self._entries.clear()

    def ids(self) -> list[str]:
        return list(self._entries)

    def __contains__(self, scenario_id: str) -> bool:
        return scenario_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)


#: Per-process golden cache (worker processes and in-process execution).
_WORKER_CACHE = GoldenCache()

#: Barrier shared by all pool workers, used to deliver exactly one
#: control message per worker; ``None`` outside pool workers.
_WORKER_BARRIER = None


def _init_worker(barrier=None, cache_capacity: int = 2) -> None:
    """Pool initializer: reset this worker's golden cache.

    Runs once per worker for the lifetime of the *suite* (not per
    scenario); goldens arrive later through install broadcasts or lazy
    spool loads.
    """
    global _WORKER_BARRIER
    _WORKER_BARRIER = barrier
    _WORKER_CACHE.capacity = cache_capacity
    _WORKER_CACHE.clear()


def install_golden(scenario_id: str, golden: GoldenRunResult) -> None:
    """Install one golden reference in this process's keyed cache."""
    _WORKER_CACHE.install(scenario_id, golden)


def evict_golden(scenario_id: str) -> None:
    """Drop one golden reference from this process's keyed cache."""
    _WORKER_CACHE.evict(scenario_id)


def _worker_control(message: tuple) -> int:
    """Apply one install/evict control message in a worker.

    The message is applied *before* the barrier rendezvous, so delivery
    hiccups (a broken barrier, a worker taking two messages because a
    peer was slow) degrade to harmless duplicate application — install
    and evict are idempotent, and a missed install is covered by the
    jobs' lazy spool-file fallback.
    """
    kind = message[0]
    if kind == "install":
        _, scenario_id, path = message
        if scenario_id not in _WORKER_CACHE:
            try:
                _WORKER_CACHE.load(scenario_id, path)
            except FileNotFoundError:
                pass  # stale broadcast: the scenario already finished
    elif kind == "evict":
        _WORKER_CACHE.evict(message[1])
    else:
        raise SimulatorError(f"unknown worker control message {message!r}")
    if _WORKER_BARRIER is not None:
        try:
            _WORKER_BARRIER.wait(timeout=CONTROL_BARRIER_TIMEOUT)
        except threading.BrokenBarrierError:
            pass  # a peer timed out; the message was applied regardless
    return os.getpid()


def resolve_golden(job: CampaignJob) -> GoldenRunResult:
    """The golden reference for ``job``: inline, cached, or spooled."""
    if job.golden is not None:
        return job.golden
    golden = _WORKER_CACHE.get(job.scenario.scenario_id)
    if golden is not None:
        return golden
    if job.golden_ref is not None:
        try:
            return _WORKER_CACHE.load(job.scenario.scenario_id, job.golden_ref)
        except FileNotFoundError as exc:
            raise SimulatorError(
                f"golden spool file for {job.scenario.scenario_id} disappeared: {exc}"
            ) from exc
    raise SimulatorError(
        f"no golden reference for {job.scenario.scenario_id}: job carries none "
        "and the worker cache has no entry for it"
    )


def execute_job(job: CampaignJob) -> list[InjectionResult]:
    """Execute one batch of injections (runs inside a worker process)."""
    allowed = job.allowed_target_kinds()
    if allowed is not None:
        for fault in job.faults:
            if fault.target_kind not in allowed:
                raise SimulatorError(
                    f"job {job.job_id} carries a {fault.target_kind!r} fault but its "
                    f"target mix only permits {sorted(allowed)}"
                )
    injector = FaultInjector(
        job.scenario, resolve_golden(job), watchdog_multiplier=job.watchdog_multiplier
    )
    return injector.run_many(job.faults)


def _execute_job_guarded(job: CampaignJob):
    """Run one job, capturing any exception instead of raising.

    Returns ``(job_id, results, None)`` on success and
    ``(job_id, None, "ErrorType: message")`` on failure, so a poisoned
    job cannot sink the other jobs sharing its ``imap`` stream.
    ``KeyboardInterrupt`` is deliberately not captured.
    """
    try:
        return job.job_id, execute_job(job), None
    except Exception as exc:  # noqa: BLE001 — the whole point is capture
        return job.job_id, None, f"{type(exc).__name__}: {exc}"


def _drain_jobs(
    jobs: list[CampaignJob],
    submit: Callable[[list[CampaignJob]], Iterable[tuple]],
    retries: int,
    progress: Callable[[str], None] = lambda message: None,
) -> tuple[list[InjectionResult], list[dict]]:
    """Collect guarded job executions with bounded retry.

    ``submit`` maps a job list to an iterable of guarded result tuples
    (``imap_unordered`` on a pool, a plain ``map`` in process).  Failed
    jobs are resubmitted up to ``retries`` extra rounds; whatever still
    fails becomes a structured entry of the report's ``job_failures``.
    Results are assembled in job-id order, so the outcome is
    deterministic no matter how workers interleave.
    """
    by_id = {job.job_id: job for job in jobs}
    chunks: dict[int, list[InjectionResult]] = {}
    errors: dict[int, str] = {}
    attempts: dict[int, int] = {}
    outstanding = list(jobs)
    for round_index in range(max(0, retries) + 1):
        failed_ids: list[int] = []
        for job_id, results, error in submit(outstanding):
            attempts[job_id] = attempts.get(job_id, 0) + 1
            if error is None:
                chunks[job_id] = results
                errors.pop(job_id, None)
            else:
                errors[job_id] = error
                failed_ids.append(job_id)
        if not failed_ids:
            break
        outstanding = [by_id[job_id] for job_id in sorted(failed_ids)]
        if round_index < retries:
            progress(f"[retry]  {len(outstanding)} job(s) failed, retrying")
    failures = [
        {
            "job_id": job_id,
            "faults": len(by_id[job_id].faults),
            "error": errors[job_id],
            "attempts": attempts[job_id],
        }
        for job_id in sorted(errors)
    ]
    results = [result for job_id in sorted(chunks) for result in chunks[job_id]]
    return results, failures


class GoldenPrefetch:
    """One golden run computed ahead of time on a daemon thread.

    A plain ``ThreadPoolExecutor`` would be joined at interpreter exit,
    so a Ctrl-C during a suite would silently wait for the in-flight
    golden run of the *next* scenario to finish — minutes, at paper
    scale.  A daemon thread dies with the process instead; the suite's
    interrupt contract ("completed shards are preserved, stop now")
    costs at most the current scenario, never the prefetched one.
    """

    def __init__(self, compute: Callable[[Scenario], ScenarioCampaign], scenario: Scenario) -> None:
        self._done = threading.Event()
        self._result: Optional[ScenarioCampaign] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run,
            args=(compute, scenario),
            name=f"golden-prefetch-{scenario.scenario_id}",
            daemon=True,
        )
        self._thread.start()

    def _run(self, compute: Callable[[Scenario], ScenarioCampaign], scenario: Scenario) -> None:
        try:
            self._result = compute(scenario)
        except BaseException as exc:  # noqa: BLE001 — re-raised in result()
            self._error = exc
        finally:
            self._done.set()

    def result(self) -> ScenarioCampaign:
        self._done.wait()
        if self._error is not None:
            raise self._error
        return self._result


def pool_context(start_method: Optional[str] = None):
    """A multiprocessing context, falling back to spawn-safe methods.

    ``fork`` is the cheapest start method (workers inherit the parent's
    compiled program cache), but it is unavailable on some platforms
    (Windows; macOS defaults away from it).  When no method is forced,
    fall back through ``fork`` → ``forkserver`` → ``spawn`` → the
    platform default.
    """
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    for method in ("fork", "forkserver", "spawn"):
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            continue
    return multiprocessing.get_context()


class PersistentSuitePool:
    """A worker pool that lives for a whole suite run.

    Golden references are spooled to a temp directory once per scenario
    and announced to the workers with an install broadcast; an evict
    broadcast (plus spool-file removal) ends the scenario.  The barrier
    guarantees each worker takes exactly one control message per
    broadcast under normal operation; when a rendezvous fails the pool
    keeps going, because jobs can always load the spool file themselves.
    """

    def __init__(
        self,
        workers: int,
        start_method: Optional[str] = None,
        cache_capacity: int = 2,
        progress: Callable[[str], None] = lambda message: None,
    ) -> None:
        if workers < 2:
            raise SimulatorError(f"PersistentSuitePool needs >= 2 workers, got {workers}")
        self.workers = workers
        self.progress = progress
        context = pool_context(start_method)
        self._barrier = context.Barrier(workers)
        self._spool = tempfile.TemporaryDirectory(prefix="repro-golden-spool-")
        self.pool = context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(self._barrier, cache_capacity),
        )

    # ------------------------------------------------------------------

    def spool_path(self, scenario_id: str) -> str:
        return os.path.join(self._spool.name, f"{scenario_id}.golden.pickle")

    def broadcast(self, message: tuple, timeout: float = CONTROL_BARRIER_TIMEOUT) -> bool:
        """Deliver one control message to every worker (best effort)."""
        handles = [self.pool.apply_async(_worker_control, (message,)) for _ in range(self.workers)]
        deadline = time.monotonic() + timeout + 5.0
        delivered = True
        for handle in handles:
            try:
                handle.get(timeout=max(0.1, deadline - time.monotonic()))
            except multiprocessing.TimeoutError:
                delivered = False
        if not delivered:
            self._barrier.reset()  # unstick any waiters; lazy loads cover the miss
            self.progress(f"[pool]   control broadcast {message[0]!r} timed out; relying on lazy loads")
        return delivered

    def install(self, scenario_id: str, golden: GoldenRunResult) -> str:
        """Spool one golden reference and announce it to the workers."""
        path = self.spool_path(scenario_id)
        with open(path, "wb") as handle:
            pickle.dump(golden, handle, protocol=pickle.HIGHEST_PROTOCOL)
        self.broadcast(("install", scenario_id, path))
        return path

    def evict(self, scenario_id: str) -> None:
        """Drop one scenario's golden from the workers and the spool."""
        self.broadcast(("evict", scenario_id))
        path = self.spool_path(scenario_id)
        if os.path.exists(path):
            os.unlink(path)

    def run_jobs(
        self,
        jobs: list[CampaignJob],
        retries: int = 1,
        progress: Callable[[str], None] = lambda message: None,
    ) -> tuple[list[InjectionResult], list[dict]]:
        return _drain_jobs(
            jobs,
            lambda outstanding: self.pool.imap_unordered(_execute_job_guarded, outstanding),
            retries,
            progress,
        )

    # ------------------------------------------------------------------

    def close(self) -> None:
        self.pool.close()
        self.pool.join()
        self._spool.cleanup()

    def terminate(self) -> None:
        self.pool.terminate()
        self.pool.join()
        self._spool.cleanup()

    def __enter__(self) -> "PersistentSuitePool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()


def prepare_store(
    store: CampaignStore,
    suite_ids: list[str],
    config_dict: dict,
    faults: Optional[int],
    resume: bool,
    plan: Optional[dict] = None,
) -> dict[str, int]:
    """Validate and (re)write a store's manifest for a campaign run.

    The shared entry protocol of every driver — the local suite loop,
    lease-mode workers and the coordinator service all pass through
    here, so they enforce identical rules: a resume must match the
    stored configuration (mismatching keys are named in the error), a
    filtered resume keeps the manifest's scenario-id union, and a fresh
    run refuses a store that already holds a campaign.  Returns the
    prior failure-attempt counts (empty unless resuming).
    """
    prior_attempts: dict[str, int] = {}
    if resume:
        store.check_resumable(suite_ids, config_dict, faults, plan=plan)
        prior_attempts = {
            failure.scenario_id: failure.attempts for failure in store.load_failures()
        }
        # A filtered resume must not shrink the manifest: keep the
        # union so the full suite can still resume later.
        manifest = store.read_manifest()
        if manifest is not None:
            stored_ids = list(manifest.get("scenario_ids", []))
            known = set(stored_ids)
            suite_ids = stored_ids + [sid for sid in suite_ids if sid not in known]
    elif store.read_manifest() is not None:
        # A fresh run into a populated store would leave stale shards
        # from the previous campaign behind; a later resume would then
        # silently mix the two result sets.
        raise SimulatorError(
            f"campaign store {store.root} already holds a campaign; pass "
            "resume=True to continue it, or point at a fresh directory"
        )
    store.write_manifest(suite_ids, config_dict, faults, plan=plan)
    return prior_attempts


class CampaignRunner:
    """Runs fault-injection campaigns over many scenarios.

    Parameters
    ----------
    config:
        Campaign configuration (faults per scenario, seeds, watchdog,
        checkpoint interval).
    workers:
        Number of worker processes; 0 or 1 selects in-process execution.
    faults_per_job:
        Batch size used by the job batcher.
    start_method:
        Multiprocessing start method; ``None`` auto-selects (fork where
        available, spawn otherwise).
    job_retries:
        Extra execution rounds granted to failed jobs before they are
        recorded as ``job_failures`` on the scenario report.
    golden_cache_capacity:
        Entries kept in each worker's keyed golden cache.
    throughput:
        Report aggregate guest MIPS (injected-run guest instructions
        per wall second, summed across workers) and the last scenario's
        wall time in the suite progress/ETA line, so campaign speed
        regressions are visible from the CLI.
    plan:
        A :class:`~repro.stats.plan.SamplingPlan` switches every driver
        (run_one/run_suite/run_leased) into *adaptive* mode: instead of
        a fixed fault count, each scenario draws CI-driven batches from
        its canonical fault stream until the plan's stopping rule fires.
    prior:
        Optional :class:`~repro.stats.prior.MinedPrior` steering the
        adaptive allocation.  Must be identical across distributed
        workers (mine it from a *completed* store, never the one in
        flight) or their draws diverge.
    """

    def __init__(
        self,
        config: Optional[CampaignConfig] = None,
        workers: int = 0,
        faults_per_job: int = 16,
        progress: Optional[Callable[[str], None]] = None,
        start_method: Optional[str] = None,
        job_retries: int = 1,
        golden_cache_capacity: int = 2,
        throughput: bool = False,
        plan: Optional[SamplingPlan] = None,
        prior: Optional[MinedPrior] = None,
    ) -> None:
        self.config = config or CampaignConfig()
        self.plan = plan
        self.prior = prior
        self.workers = workers
        self.start_method = start_method
        self.batcher = JobBatcher(faults_per_job=faults_per_job)
        self.progress = progress or (lambda message: None)
        self.job_retries = job_retries
        self.golden_cache_capacity = golden_cache_capacity
        self.throughput = throughput
        #: guest instructions executed by this runner's injection runs
        #: (reset per run_suite; exposed for tests/tooling)
        self.guest_instructions = 0
        #: (guest_instructions, wall_seconds) of the last scenario
        self.last_scenario_throughput: Optional[tuple[int, float]] = None

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------

    @contextlib.contextmanager
    def _pool_scope(self):
        """A pool for the enclosed work, or ``None`` for in-process runs."""
        if self.workers and self.workers > 1:
            with PersistentSuitePool(
                self.workers,
                start_method=self.start_method,
                cache_capacity=self.golden_cache_capacity,
                progress=self.progress,
            ) as pool:
                yield pool
        else:
            yield None

    def _compute_golden(self, scenario: Scenario) -> ScenarioCampaign:
        """Phase one for one scenario (also runs on the prefetch thread)."""
        self.progress(f"[golden] {scenario.scenario_id}")
        campaign = ScenarioCampaign(scenario, self.config)
        campaign.run_golden()
        return campaign

    def _drain_fault_list(
        self,
        scenario: Scenario,
        fault_list,
        pool: Optional[PersistentSuitePool],
        campaign: ScenarioCampaign,
        golden_ref: Optional[str],
    ) -> tuple[list[InjectionResult], list[dict], int]:
        """Batch one fault list into jobs and drain them; returns
        (results, job_failures, job_count)."""
        jobs = self.batcher.batch(
            scenario,
            None,
            fault_list,
            watchdog_multiplier=self.config.watchdog_multiplier,
            target_mix=campaign.resolved_target_mix(),
            golden_ref=golden_ref,
        )
        if pool is not None:
            results, job_failures = pool.run_jobs(jobs, self.job_retries, self.progress)
        else:
            results, job_failures = _drain_jobs(
                jobs,
                lambda outstanding: map(_execute_job_guarded, outstanding),
                self.job_retries,
                self.progress,
            )
        return results, job_failures, len(jobs)

    def _partial_payload(
        self, scenario_id: str, controller: AdaptiveController, results: list[InjectionResult]
    ) -> dict:
        return {
            "scenario_id": scenario_id,
            "plan": self.plan.as_dict() if self.plan is not None else None,
            "batches": list(controller.batches),
            "results": [result.as_record() for result in results],
        }

    def _run_adaptive(
        self,
        scenario: Scenario,
        pool: Optional[PersistentSuitePool],
        campaign: ScenarioCampaign,
        golden_ref: Optional[str],
        partial: Optional[dict],
        checkpoint: Optional[Callable[[str, dict], None]],
    ) -> tuple[list[InjectionResult], AdaptiveController]:
        """Adaptive injection phase: drain controller batches on the pool.

        Batch results are recorded in ``fault_id`` order — the canonical
        order of :meth:`ScenarioCampaign.run_adaptive` — so every driver
        (in-process, pooled, leased) produces bit-identical tallies and
        draws.  A failed job inside a batch fails the whole scenario:
        the controller's accounting assumes complete batches, and a
        silently short batch would skew every later draw.

        ``partial`` replays a stored checkpoint before drawing anything
        new; ``checkpoint(scenario_id, payload)`` persists one after
        every unconverged batch.
        """
        scenario_id = scenario.scenario_id
        controller = AdaptiveController(campaign=campaign, plan=self.plan, prior=self.prior)
        results: list[InjectionResult] = []
        if partial is not None:
            restored = [InjectionResult.from_record(r) for r in partial.get("results", [])]
            controller.restore(partial.get("batches", []), restored)
            results.extend(restored)
            self.progress(
                f"[adapt]  {scenario_id}: restored {len(controller.batches)} batch(es), "
                f"{controller.spent} faults spent"
            )
        while True:
            batch = controller.next_batch()
            if batch is None:
                break
            batch_results, job_failures, _ = self._drain_fault_list(
                scenario, batch.faults, pool, campaign, golden_ref
            )
            if job_failures:
                raise SimulatorError(
                    f"adaptive batch {batch.index} of {scenario_id} lost "
                    f"{len(job_failures)} job(s) ({job_failures[0]['error']}); "
                    "adaptive accounting requires complete batches"
                )
            batch_results = sorted(batch_results, key=lambda r: r.fault.fault_id)
            record = controller.record_batch(batch, batch_results)
            results.extend(batch_results)
            self.progress(
                f"[adapt]  {scenario_id}: batch {record['index']} ({record['size']} faults), "
                f"spent {controller.spent}, half-width {record['half_width']:.4f}"
                + (f", stop: {record['stopping']}" if record["stopping"] else "")
            )
            if checkpoint is not None and controller.stopping is None:
                checkpoint(scenario_id, self._partial_payload(scenario_id, controller, results))
        return results, controller

    def run_one(
        self,
        scenario: Scenario,
        faults: Optional[int] = None,
        pool: Optional[PersistentSuitePool] = None,
        campaign: Optional[ScenarioCampaign] = None,
        partial: Optional[dict] = None,
        checkpoint: Optional[Callable[[str, dict], None]] = None,
    ) -> ScenarioReport:
        """Execute one scenario end to end: golden, fault list, jobs, report.

        This is the scenario-granular unit every execution driver is
        built from — the local suite loop, the lease loop
        (:meth:`run_leased`) and the service worker agent all funnel
        through here, so any driver combination yields bit-identical
        reports.  ``campaign`` supplies a pre-computed golden run (the
        suite's prefetch thread); without it the golden runs inline.

        With a sampling plan on the runner, the injection phase is
        adaptive (see :meth:`_run_adaptive`); ``partial`` and
        ``checkpoint`` then carry batch-granular resume state.
        """
        start = time.perf_counter()
        if campaign is None:
            campaign = self._compute_golden(scenario)
        golden = campaign.golden
        scenario_id = scenario.scenario_id
        if pool is not None:
            golden_ref = pool.install(scenario_id, golden)
        else:
            install_golden(scenario_id, golden)
            golden_ref = None
        interrupted = False
        adaptive: Optional[dict] = None
        try:
            if self.plan is not None:
                results, controller = self._run_adaptive(
                    scenario, pool, campaign, golden_ref, partial, checkpoint
                )
                adaptive = controller.summary()
                job_failures: list[dict] = []
            else:
                fault_list = campaign.build_fault_list(faults)
                job_count = -(-len(fault_list) // self.batcher.faults_per_job)
                self.progress(
                    f"[inject] {scenario_id}: {len(fault_list)} faults in {job_count} jobs, "
                    f"{len(golden.checkpoints)} checkpoints"
                )
                results, job_failures, _ = self._drain_fault_list(
                    scenario, fault_list, pool, campaign, golden_ref
                )
        except KeyboardInterrupt:
            interrupted = True
            raise
        finally:
            if pool is not None:
                # No evict broadcast on Ctrl-C: the workers are still
                # busy with this scenario's queued jobs, so the control
                # tasks would sit behind them until the barrier timeout
                # — and the pool is about to be terminated anyway.
                if not interrupted:
                    pool.evict(scenario_id)
            else:
                evict_golden(scenario_id)
        elapsed = time.perf_counter() - start
        guest = sum(result.executed_instructions for result in results)
        self.guest_instructions += guest
        self.last_scenario_throughput = (guest, elapsed)
        report = summarize(
            scenario,
            golden,
            results,
            elapsed,
            keep_individual_results=self.config.keep_individual_results,
            target_mix=campaign.resolved_target_mix(),
            job_failures=job_failures,
            adaptive=adaptive,
        )
        done = ", ".join(f"{k}={v}" for k, v in report.counts.items())
        if job_failures:
            done += f", failed_jobs={len(job_failures)}"
        if adaptive is not None:
            done += f", spent={adaptive['spent']}, stop={adaptive['stopping']}"
        self.progress(f"[done]   {scenario_id}: {done}")
        return report

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run_scenario(self, scenario: Scenario, faults: Optional[int] = None) -> ScenarioReport:
        """Run the four-phase workflow for one scenario."""
        with self._pool_scope() as pool:
            return self.run_one(scenario, faults, pool)

    def run_suite(
        self,
        scenarios: Iterable[Scenario],
        faults: Optional[int] = None,
        database: Optional[ResultsDatabase] = None,
        store: Optional[Union[CampaignStore, str, Path]] = None,
        resume: bool = False,
    ) -> ResultsDatabase:
        """Run a campaign over many scenarios, assembling a results database.

        With a ``store``, every completed scenario is persisted as one
        shard the moment it finishes, and ``resume=True`` skips the
        scenarios whose shards already exist (previously *failed*
        scenarios are retried).  A scenario that raises is recorded as a
        :class:`ScenarioFailure` and the suite continues; an interrupt
        stops the suite but completed shards stay on disk.
        """
        scenarios = list(scenarios)
        database = database if database is not None else ResultsDatabase()
        if store is not None and not isinstance(store, CampaignStore):
            store = CampaignStore(store)
        prior_attempts: dict[str, int] = {}
        plan_dict = self.plan.as_dict() if self.plan is not None else None
        if store is not None:
            prior_attempts = prepare_store(
                store,
                [scenario.scenario_id for scenario in scenarios],
                self.config.as_dict(),
                faults,
                resume,
                plan=plan_dict,
            )
        completed = store.completed_ids() if (store is not None and resume) else set()
        pending = [scenario for scenario in scenarios if scenario.scenario_id not in completed]

        suite_start = time.monotonic()
        executed = 0
        done = 0
        self.guest_instructions = 0
        self.last_scenario_throughput = None
        prefetched: dict[str, GoldenPrefetch] = {}

        def ensure_prefetch(index: int) -> None:
            if 0 <= index < len(pending):
                ahead = pending[index]
                if ahead.scenario_id not in prefetched:
                    prefetched[ahead.scenario_id] = GoldenPrefetch(self._compute_golden, ahead)

        def record_failure(scenario: Scenario, phase: str, exc: Exception) -> None:
            failure = ScenarioFailure(
                scenario_id=scenario.scenario_id,
                phase=phase,
                error_type=type(exc).__name__,
                error=str(exc),
                attempts=prior_attempts.get(scenario.scenario_id, 0) + 1,
            )
            database.add_failure(failure)
            if store is not None:
                store.write_failure(failure)
            self.progress(f"[fail]   {scenario.scenario_id}: {phase} phase: {failure.error_type}: {failure.error}")

        try:
            with self._pool_scope() as pool:
                pending_pos = 0
                for scenario in scenarios:
                    scenario_id = scenario.scenario_id
                    if scenario_id in completed:
                        database.add_report(store.load_shard(scenario_id))
                        done += 1
                        self.progress(f"[skip]   {scenario_id}: resumed from shard")
                        continue
                    ensure_prefetch(pending_pos)
                    prefetch = prefetched.pop(scenario_id)
                    # Start the next golden now: it overlaps with this
                    # scenario's injection jobs draining on the pool.
                    ensure_prefetch(pending_pos + 1)
                    pending_pos += 1
                    try:
                        campaign = prefetch.result()
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:  # noqa: BLE001 — isolate the scenario
                        record_failure(scenario, "golden", exc)
                        continue
                    partial = None
                    checkpoint = None
                    if store is not None and self.plan is not None:
                        if resume:
                            partial = store.load_partial(scenario_id)
                        checkpoint = store.write_partial
                    try:
                        report = self.run_one(
                            scenario,
                            faults,
                            pool,
                            campaign=campaign,
                            partial=partial,
                            checkpoint=checkpoint,
                        )
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:  # noqa: BLE001 — isolate the scenario
                        record_failure(scenario, "inject", exc)
                        continue
                    try:
                        database.add_report(report)
                        if store is not None:
                            store.write_shard(report)
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:  # noqa: BLE001 — isolate the scenario
                        record_failure(scenario, "assemble", exc)
                        continue
                    executed += 1
                    done += 1
                    elapsed = time.monotonic() - suite_start
                    remaining = len(scenarios) - done - len(database.failures)
                    eta = (elapsed / executed) * remaining if executed else 0.0
                    line = (
                        f"[suite]  {done}/{len(scenarios)} scenarios done"
                        + (f", {len(database.failures)} failed" if database.failures else "")
                        + (f", ETA {eta:.0f}s" if remaining > 0 else "")
                    )
                    if self.throughput and elapsed > 0:
                        mips = self.guest_instructions / elapsed / 1e6
                        line += f", {mips:.2f} guest MIPS"
                        if self.last_scenario_throughput is not None:
                            line += f", last scenario {self.last_scenario_throughput[1]:.1f}s"
                    self.progress(line)
        except KeyboardInterrupt:
            # Prefetch threads are daemons: an in-flight golden run of a
            # scenario we will never execute must not delay the stop.
            self.progress(
                "[suite]  interrupted — completed scenario shards are preserved; "
                "rerun with resume=True to continue"
            )
            raise
        return database

    def run_leased(
        self,
        scenarios: Iterable[Scenario],
        store: Union[CampaignStore, str, Path],
        faults: Optional[int] = None,
        owner: Optional[str] = None,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        database: Optional[ResultsDatabase] = None,
    ) -> ResultsDatabase:
        """Lease-driven execution: partition a shared store with peers.

        The distributed counterpart of :meth:`run_suite`'s local loop.
        Any number of processes (or hosts mounting the same store root)
        call this concurrently with the same suite; the store's lease
        protocol guarantees each scenario executes exactly once.  Each
        iteration claims the first unleased, uncompleted scenario,
        executes it through :meth:`run_one` under a heartbeat that
        keeps the lease alive, and commits the shard only if the lease
        survived (a worker that stalls past the ttl discards its result
        — the reclaiming peer's run is the one that counts).  Returns
        the scenarios *this* worker completed; the union of all
        workers' shards is bit-identical to a single-process
        ``run_suite`` of the same suite and seed.
        """
        if not isinstance(store, CampaignStore):
            store = CampaignStore(store)
        scenarios = list(scenarios)
        by_id = {scenario.scenario_id: scenario for scenario in scenarios}
        owner = owner or f"worker-{os.getpid()}"
        database = database if database is not None else ResultsDatabase()
        plan_dict = self.plan.as_dict() if self.plan is not None else None
        if store.read_manifest() is None:
            # First worker in: publish the manifest peers will claim
            # against.  Concurrent first workers write identical bytes,
            # and _atomic_write_json makes the race harmless.
            store.write_manifest(list(by_id), self.config.as_dict(), faults, plan=plan_dict)
        else:
            store.check_resumable(list(by_id), self.config.as_dict(), faults, plan=plan_dict)
        prior_attempts = {
            failure.scenario_id: failure.attempts for failure in store.load_failures()
        }
        # Scenarios that failed in *this* invocation are quarantined from
        # further claims — mirroring run_suite's attempt-once-per-run
        # semantics.  Without this, fail -> release -> claim_next would
        # re-claim the same broken scenario forever.
        attempted_failures: set = set()
        with self._pool_scope() as pool:
            while True:
                claimable = [sid for sid in by_id if sid not in attempted_failures]
                lease = store.claim_next(owner, scenario_ids=claimable, ttl=lease_ttl)
                if lease is None:
                    break
                scenario = by_id[lease.scenario_id]
                scenario_id = scenario.scenario_id
                self.progress(f"[lease]  {scenario_id}: claimed by {owner}")
                partial = None
                checkpoint = None
                if self.plan is not None:
                    # A reclaimed lease continues its predecessor's batch
                    # stream from the checkpoint; commit-iff-held writes
                    # keep a stalled predecessor from clobbering ours.
                    partial = store.load_partial(scenario_id)

                    def checkpoint(sid: str, payload: dict, _store=store, _owner=owner):
                        _store.write_partial_leased(sid, payload, _owner)

                with LeaseHeartbeat(store, scenario_id, owner, lease_ttl) as heartbeat:
                    try:
                        report = self.run_one(
                            scenario, faults, pool, partial=partial, checkpoint=checkpoint
                        )
                    except KeyboardInterrupt:
                        store.release_lease(scenario_id, owner)
                        raise
                    except Exception as exc:  # noqa: BLE001 — isolate the scenario
                        failure = ScenarioFailure(
                            scenario_id=scenario_id,
                            phase="run",
                            error_type=type(exc).__name__,
                            error=str(exc),
                            attempts=prior_attempts.get(scenario_id, 0) + 1,
                        )
                        database.add_failure(failure)
                        store.write_failure(failure)
                        attempted_failures.add(scenario_id)
                        store.release_lease(scenario_id, owner)
                        self.progress(
                            f"[fail]   {scenario_id}: {failure.error_type}: {failure.error}"
                        )
                        continue
                if heartbeat.lost or not store.commit_leased(report, owner):
                    self.progress(
                        f"[lease]  {scenario_id}: lease lost during execution; "
                        "discarding result (a peer reclaimed the scenario)"
                    )
                    continue
                database.add_report(report)
        return database
