"""Campaign runner: executes injection jobs serially or on a process pool.

Phases one and two (golden run, fault list) execute in the parent
process because they are common to all injections of a scenario; phase
three (the injections) fans out over worker processes; phase four
(assembling the database) runs back in the parent.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Iterable, Optional

from repro.injection.campaign import CampaignConfig, ScenarioCampaign, ScenarioReport, summarize
from repro.injection.injector import FaultInjector, InjectionResult
from repro.npb.suite import Scenario
from repro.orchestration.database import ResultsDatabase
from repro.orchestration.jobs import CampaignJob, JobBatcher


def execute_job(job: CampaignJob) -> list[InjectionResult]:
    """Execute one batch of injections (runs inside a worker process)."""
    injector = FaultInjector(job.scenario, job.golden, watchdog_multiplier=job.watchdog_multiplier)
    return injector.run_many(job.faults)


class CampaignRunner:
    """Runs fault-injection campaigns over many scenarios.

    Parameters
    ----------
    config:
        Campaign configuration (faults per scenario, seeds, watchdog).
    workers:
        Number of worker processes; 0 or 1 selects in-process execution.
    faults_per_job:
        Batch size used by the job batcher.
    """

    def __init__(
        self,
        config: Optional[CampaignConfig] = None,
        workers: int = 0,
        faults_per_job: int = 16,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.config = config or CampaignConfig()
        self.workers = workers
        self.batcher = JobBatcher(faults_per_job=faults_per_job)
        self.progress = progress or (lambda message: None)

    # ------------------------------------------------------------------

    def _run_jobs(self, jobs: list[CampaignJob]) -> list[InjectionResult]:
        if self.workers and self.workers > 1 and len(jobs) > 1:
            context = multiprocessing.get_context("fork") if hasattr(multiprocessing, "get_context") else multiprocessing
            with context.Pool(processes=self.workers) as pool:
                chunks = pool.map(execute_job, jobs)
        else:
            chunks = [execute_job(job) for job in jobs]
        results: list[InjectionResult] = []
        for chunk in chunks:
            results.extend(chunk)
        return results

    def run_scenario(self, scenario: Scenario, faults: Optional[int] = None) -> ScenarioReport:
        """Run the four-phase workflow for one scenario."""
        start = time.perf_counter()
        campaign = ScenarioCampaign(scenario, self.config)
        self.progress(f"[golden] {scenario.scenario_id}")
        golden = campaign.run_golden()
        fault_list = campaign.build_fault_list(faults)
        jobs = self.batcher.batch(
            scenario, golden, fault_list, watchdog_multiplier=self.config.watchdog_multiplier
        )
        self.progress(f"[inject] {scenario.scenario_id}: {len(fault_list)} faults in {len(jobs)} jobs")
        results = self._run_jobs(jobs)
        elapsed = time.perf_counter() - start
        report = summarize(
            scenario,
            golden,
            results,
            elapsed,
            keep_individual_results=self.config.keep_individual_results,
        )
        self.progress(
            f"[done]   {scenario.scenario_id}: " +
            ", ".join(f"{k}={v}" for k, v in report.counts.items())
        )
        return report

    def run_suite(
        self,
        scenarios: Iterable[Scenario],
        faults: Optional[int] = None,
        database: Optional[ResultsDatabase] = None,
    ) -> ResultsDatabase:
        """Run a campaign over many scenarios, assembling a results database."""
        database = database if database is not None else ResultsDatabase()
        for scenario in scenarios:
            report = self.run_scenario(scenario, faults=faults)
            database.add_report(report)
        return database
