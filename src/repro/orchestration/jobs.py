"""Job batching for fault injection campaigns.

Matching several injections into a single job "improves the HPC
scheduling algorithm performance by reducing job management and
synchronization overheads" (Section 3.2.4); the same batching keeps the
process-pool overhead negligible here.

Jobs shipped to a worker pool stay *light*: the golden reference (with
its memory snapshots and checkpoints) is shared once per worker via the
pool initializer, not pickled into every job.  A job optionally carries
the golden result inline for standalone execution (tests, debugging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.injection.fault import FaultDescriptor
from repro.injection.golden import GoldenRunResult
from repro.npb.suite import Scenario, normalize_target_mix


@dataclass
class CampaignJob:
    """A batch of fault injections for one scenario.

    The job carries what a worker needs beyond the per-worker shared
    golden data: the scenario description, the fault descriptors and the
    fault-target mix they were drawn from (so a worker can verify the
    descriptors it executes belong to the campaign's target dimension).
    Programs are rebuilt (deterministically) inside the worker, which is
    cheaper than shipping them.  ``golden`` is ``None`` for pool jobs —
    the worker resolves it from its shared state — and set inline only
    for standalone execution.
    """

    job_id: int
    scenario: Scenario
    faults: list[FaultDescriptor] = field(default_factory=list)
    watchdog_multiplier: int = 4
    golden: Optional[GoldenRunResult] = None
    #: normalized (kind, weight) pairs; None = the default register mix
    target_mix: Optional[tuple[tuple[str, float], ...]] = None
    #: spool-file path of the scenario's pickled golden reference; a
    #: worker whose keyed cache misses (it joined the pool after the
    #: install broadcast, or the broadcast timed out) loads it lazily,
    #: so job correctness never depends on broadcast delivery
    golden_ref: Optional[str] = None

    def __len__(self) -> int:
        return len(self.faults)

    def allowed_target_kinds(self) -> Optional[set[str]]:
        """Kinds the mix permits (None when no mix travels with the job)."""
        if self.target_mix is None:
            return None
        return {kind for kind, weight in self.target_mix if weight > 0}

    def describe(self) -> dict:
        description = {
            "job_id": self.job_id,
            "scenario_id": self.scenario.scenario_id,
            "faults": len(self.faults),
        }
        if self.target_mix is not None:
            description["target_mix"] = dict(self.target_mix)
        return description


class JobBatcher:
    """Splits a scenario's fault list into jobs of bounded size.

    ``sort_by_injection_time`` orders the fault list by injection point
    first, so each job's faults cluster around the same golden
    checkpoints and the per-job fast-forward distance stays short.
    """

    def __init__(self, faults_per_job: int = 64, sort_by_injection_time: bool = True):
        if faults_per_job < 1:
            raise ValueError(f"invalid faults_per_job {faults_per_job}")
        self.faults_per_job = faults_per_job
        self.sort_by_injection_time = sort_by_injection_time
        self._next_job_id = 0

    def batch(
        self,
        scenario: Scenario,
        golden: Optional[GoldenRunResult],
        faults: list[FaultDescriptor],
        watchdog_multiplier: int = 4,
        target_mix=None,
        golden_ref: Optional[str] = None,
    ) -> list[CampaignJob]:
        """Build jobs; pass ``golden=None`` for payload-light pool jobs."""
        if self.sort_by_injection_time:
            faults = sorted(faults, key=lambda f: (f.injection_time, f.fault_id))
        mix = normalize_target_mix(target_mix)
        jobs: list[CampaignJob] = []
        for start in range(0, len(faults), self.faults_per_job):
            chunk = faults[start : start + self.faults_per_job]
            jobs.append(
                CampaignJob(
                    job_id=self._next_job_id,
                    scenario=scenario,
                    faults=chunk,
                    watchdog_multiplier=watchdog_multiplier,
                    golden=golden,
                    target_mix=mix,
                    golden_ref=golden_ref,
                )
            )
            self._next_job_id += 1
        return jobs
