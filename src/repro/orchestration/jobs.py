"""Job batching for fault injection campaigns.

Matching several injections into a single job "improves the HPC
scheduling algorithm performance by reducing job management and
synchronization overheads" (Section 3.2.4); the same batching keeps the
process-pool overhead negligible here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.injection.fault import FaultDescriptor
from repro.injection.golden import GoldenRunResult
from repro.npb.suite import Scenario


@dataclass
class CampaignJob:
    """A batch of fault injections for one scenario.

    The job carries everything a worker process needs: the scenario
    description, the golden reference data and the fault descriptors.
    Programs are rebuilt (deterministically) inside the worker, which is
    cheaper than shipping them.
    """

    job_id: int
    scenario: Scenario
    golden: GoldenRunResult
    faults: list[FaultDescriptor] = field(default_factory=list)
    watchdog_multiplier: int = 4

    def __len__(self) -> int:
        return len(self.faults)

    def describe(self) -> dict:
        return {
            "job_id": self.job_id,
            "scenario_id": self.scenario.scenario_id,
            "faults": len(self.faults),
        }


class JobBatcher:
    """Splits a scenario's fault list into jobs of bounded size."""

    def __init__(self, faults_per_job: int = 64):
        if faults_per_job < 1:
            raise ValueError(f"invalid faults_per_job {faults_per_job}")
        self.faults_per_job = faults_per_job
        self._next_job_id = 0

    def batch(
        self,
        scenario: Scenario,
        golden: GoldenRunResult,
        faults: list[FaultDescriptor],
        watchdog_multiplier: int = 4,
    ) -> list[CampaignJob]:
        jobs: list[CampaignJob] = []
        for start in range(0, len(faults), self.faults_per_job):
            chunk = faults[start : start + self.faults_per_job]
            jobs.append(
                CampaignJob(
                    job_id=self._next_job_id,
                    scenario=scenario,
                    golden=golden,
                    faults=chunk,
                    watchdog_multiplier=watchdog_multiplier,
                )
            )
            self._next_job_id += 1
        return jobs
