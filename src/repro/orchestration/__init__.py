"""Campaign orchestration: job batching, parallel execution, result database.

The paper executes its 1,040,000 fault injections on an HPC system with
more than 5,000 cores by batching injections into jobs (phase three of
the workflow) and assembling all individual reports into a single
database afterwards (phase four).  This package reproduces that
pipeline at workstation scale — and hardens it for campaign length:
a persistent suite pool with per-worker golden caches, pipelined
golden/injection phases, streaming per-scenario shards with resume, and
per-job fault isolation.  See ``docs/orchestration.md``.
"""

from repro.orchestration.jobs import CampaignJob, JobBatcher
from repro.orchestration.logging import CampaignLogger
from repro.orchestration.runner import (
    CampaignRunner,
    GoldenCache,
    PersistentSuitePool,
    prepare_store,
)
from repro.orchestration.database import DuplicateReportError, ResultsDatabase
from repro.orchestration.store import (
    DEFAULT_LEASE_TTL,
    CampaignStore,
    LeaseHeartbeat,
    ScenarioFailure,
    ScenarioLease,
)

__all__ = [
    "CampaignJob",
    "CampaignLogger",
    "JobBatcher",
    "CampaignRunner",
    "CampaignStore",
    "DEFAULT_LEASE_TTL",
    "DuplicateReportError",
    "GoldenCache",
    "LeaseHeartbeat",
    "PersistentSuitePool",
    "ResultsDatabase",
    "ScenarioFailure",
    "ScenarioLease",
    "prepare_store",
]
