"""Campaign orchestration: job batching, parallel execution, result database.

The paper executes its 1,040,000 fault injections on an HPC system with
more than 5,000 cores by batching injections into jobs (phase three of
the workflow) and assembling all individual reports into a single
database afterwards (phase four).  This package reproduces that
pipeline at workstation scale: jobs are batches of fault descriptors,
the runner executes them on a local process pool, and the database
collects the per-scenario reports that the data-mining tool consumes.
"""

from repro.orchestration.jobs import CampaignJob, JobBatcher
from repro.orchestration.runner import CampaignRunner
from repro.orchestration.database import ResultsDatabase

__all__ = ["CampaignJob", "JobBatcher", "CampaignRunner", "ResultsDatabase"]
