"""Campaign orchestration: job batching, parallel execution, result database.

The paper executes its 1,040,000 fault injections on an HPC system with
more than 5,000 cores by batching injections into jobs (phase three of
the workflow) and assembling all individual reports into a single
database afterwards (phase four).  This package reproduces that
pipeline at workstation scale — and hardens it for campaign length:
a persistent suite pool with per-worker golden caches, pipelined
golden/injection phases, streaming per-scenario shards with resume, and
per-job fault isolation.  See ``docs/orchestration.md``.
"""

from repro.orchestration.jobs import CampaignJob, JobBatcher
from repro.orchestration.runner import CampaignRunner, GoldenCache, PersistentSuitePool
from repro.orchestration.database import DuplicateReportError, ResultsDatabase
from repro.orchestration.store import CampaignStore, ScenarioFailure

__all__ = [
    "CampaignJob",
    "JobBatcher",
    "CampaignRunner",
    "CampaignStore",
    "DuplicateReportError",
    "GoldenCache",
    "PersistentSuitePool",
    "ResultsDatabase",
    "ScenarioFailure",
]
