"""Structured campaign logging: one line format for every role.

Distributed campaigns interleave output from a coordinator and N
workers (often from N hosts) onto one terminal or one aggregated log.
The ad-hoc ``progress: Callable[[str], None]`` print plumbing gave
every process its own format and no timestamps; this module replaces
it with a tiny shared logger so interleaved lines stay attributable:

```
14:02:31 [coordinator] leased IS-SER-1-armv8 to worker-1
14:02:31 [worker-1] [golden] IS-SER-1-armv8
```

Each line is emitted with a single ``write`` call, so concurrent
processes sharing a pipe interleave at line granularity, never mid
line.  The :meth:`CampaignLogger.progress` adapter keeps the runner's
``progress`` callable contract intact — existing callers (and tests)
that pass a bare ``messages.append`` keep working unchanged.

Levels are deliberately minimal: ``debug`` (shown with ``--verbose``),
``info`` (default), ``warning``/``error`` (always shown, even with
``--quiet``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional, TextIO

#: Numeric levels, stdlib-logging-compatible ordering.
DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40

_LEVEL_TAGS = {WARNING: "WARN ", ERROR: "ERROR "}


class CampaignLogger:
    """Timestamped, role-prefixed line logger for campaign processes.

    Parameters
    ----------
    role:
        Prefix naming the emitting process (``coordinator``,
        ``worker-1``, ``run``, ...).
    verbose / quiet:
        ``verbose`` lowers the threshold to ``debug``; ``quiet`` raises
        it to ``warning``.  ``quiet`` wins when both are set (scripted
        invocations append flags; the stricter one should stick).
    stream:
        Destination (default ``sys.stderr``, keeping stdout clean for
        command output like tables and scenario listings).
    clock:
        Seconds-since-epoch source, injectable for tests.
    """

    def __init__(
        self,
        role: str,
        verbose: bool = False,
        quiet: bool = False,
        stream: Optional[TextIO] = None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.role = role
        self.level = WARNING if quiet else (DEBUG if verbose else INFO)
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock

    def log(self, level: int, message: str) -> None:
        if level < self.level:
            return
        stamp = time.strftime("%H:%M:%S", time.localtime(self.clock()))
        tag = _LEVEL_TAGS.get(level, "")
        self.stream.write(f"{stamp} [{self.role}] {tag}{message}\n")
        self.stream.flush()

    def debug(self, message: str) -> None:
        self.log(DEBUG, message)

    def info(self, message: str) -> None:
        self.log(INFO, message)

    def warning(self, message: str) -> None:
        self.log(WARNING, message)

    def error(self, message: str) -> None:
        self.log(ERROR, message)

    def progress(self) -> Callable[[str], None]:
        """Adapter for the runner's ``progress`` callable contract.

        Retry and failure progress lines surface as warnings so they
        stay visible under ``--quiet``; everything else is info.
        """

        def emit(message: str) -> None:
            if message.startswith(("[retry]", "[fail]", "[pool]")):
                self.warning(message)
            else:
                self.info(message)

        return emit

    def child(self, role: str) -> "CampaignLogger":
        """Same sink and threshold, different role prefix."""
        clone = CampaignLogger(role, stream=self.stream, clock=self.clock)
        clone.level = self.level
        return clone


def add_logging_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--quiet`` / ``--verbose`` pair to a subcommand."""
    group = parser.add_argument_group("logging")
    group.add_argument("--quiet", "-q", action="store_true",
                       help="only warnings and errors")
    group.add_argument("--verbose", "-v", action="store_true",
                       help="debug-level detail (lease traffic, backoff waits)")


def logger_from_args(args: argparse.Namespace, role: str) -> CampaignLogger:
    """Build the role's logger from parsed ``--quiet``/``--verbose`` flags."""
    return CampaignLogger(
        role, verbose=getattr(args, "verbose", False), quiet=getattr(args, "quiet", False)
    )
