"""Results database: phase four of the campaign workflow.

All per-scenario reports are assembled into a single queryable store
that can be saved to / loaded from JSON and exported as flat record
lists (one row per scenario, one row per individual injection) for the
data-mining tool.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from repro.injection.campaign import ScenarioReport
from repro.injection.classify import OUTCOME_ORDER


class ResultsDatabase:
    """Holds the fault-injection reports of a campaign."""

    def __init__(self) -> None:
        self.reports: dict[str, ScenarioReport] = {}
        self.metadata: dict[str, object] = {}

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------

    def add_report(self, report: ScenarioReport) -> None:
        self.reports[report.scenario_id] = report

    def add_reports(self, reports: Iterable[ScenarioReport]) -> None:
        for report in reports:
            self.add_report(report)

    def __len__(self) -> int:
        return len(self.reports)

    def __contains__(self, scenario_id: str) -> bool:
        return scenario_id in self.reports

    def get(self, scenario_id: str) -> Optional[ScenarioReport]:
        return self.reports.get(scenario_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def scenario_records(self) -> list[dict]:
        """One flat record per scenario (classification + golden statistics)."""
        return [report.as_record() for report in self.reports.values()]

    def injection_records(self) -> list[dict]:
        """One flat record per individual injection (when kept)."""
        records = []
        for report in self.reports.values():
            for result in report.results:
                records.append(result.as_record())
        return records

    def select(self, app=None, mode=None, isa=None, cores=None) -> list[ScenarioReport]:
        out = []
        for report in self.reports.values():
            scenario = report.scenario
            if app is not None and scenario.app != app:
                continue
            if mode is not None and scenario.mode != mode:
                continue
            if isa is not None and scenario.isa != isa:
                continue
            if cores is not None and scenario.cores != cores:
                continue
            out.append(report)
        return out

    def percentages(self, scenario_id: str) -> dict[str, float]:
        report = self.reports[scenario_id]
        return dict(report.percentages)

    def total_injections(self) -> int:
        return sum(report.faults_injected for report in self.reports.values())

    def outcome_totals(self) -> dict[str, int]:
        totals = {outcome.value: 0 for outcome in OUTCOME_ORDER}
        for report in self.reports.values():
            for outcome, count in report.counts.items():
                totals[outcome] = totals.get(outcome, 0) + count
        return totals

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self, include_injections: bool = False) -> dict:
        payload = {
            "metadata": self.metadata,
            "scenarios": self.scenario_records(),
        }
        if include_injections:
            payload["injections"] = self.injection_records()
        return payload

    def save_json(self, path: str | Path, include_injections: bool = False) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(include_injections=include_injections), handle, indent=2, sort_keys=True)
        return path

    @staticmethod
    def load_json(path: str | Path) -> dict:
        """Load a previously saved campaign summary (flat records).

        Full :class:`ScenarioReport` objects are not reconstructed; the
        mining layer operates on the flat records directly.
        """
        with Path(path).open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def export_csv(self, path: str | Path) -> Path:
        """Write the per-scenario records as CSV (no external dependencies)."""
        records = self.scenario_records()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if not records:
            path.write_text("", encoding="utf-8")
            return path
        columns: list[str] = []
        for record in records:
            for key in record:
                if key not in columns:
                    columns.append(key)
        lines = [",".join(columns)]
        for record in records:
            lines.append(",".join(str(record.get(column, "")) for column in columns))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path
