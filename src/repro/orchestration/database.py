"""Results database: phase four of the campaign workflow.

All per-scenario reports are assembled into a single queryable store
that can be saved to / loaded from JSON and exported as flat record
lists (one row per scenario, one row per individual injection) for the
data-mining tool.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Optional

from repro.errors import SimulatorError
from repro.injection.campaign import ScenarioReport
from repro.injection.classify import REPORT_OUTCOME_ORDER
from repro.injection.injector import InjectionResult
from repro.orchestration.store import ScenarioFailure


def strip_wall_times(payload):
    """Recursively drop every wall-time key from a database payload.

    Campaign results are deterministic except for wall-clock fields;
    this is the canonical normalisation behind "bit-identical modulo
    wall times" comparisons (resume tests, the CI resumability smoke).
    """
    if isinstance(payload, dict):
        return {k: strip_wall_times(v) for k, v in payload.items() if "wall_time" not in k}
    if isinstance(payload, list):
        return [strip_wall_times(item) for item in payload]
    return payload


def campaign_fingerprint(database: "ResultsDatabase") -> str:
    """Canonical string form of a database, wall times stripped."""
    return json.dumps(
        strip_wall_times(database.to_dict(include_injections=True)), sort_keys=True
    )


class DuplicateReportError(SimulatorError):
    """A report for the same scenario id is already in the database.

    A silent overwrite would let a re-run with a different seed shadow
    the original result set; callers that really mean to replace a
    report pass ``replace=True``.
    """


class ResultsDatabase:
    """Holds the fault-injection reports of a campaign."""

    def __init__(self) -> None:
        self.reports: dict[str, ScenarioReport] = {}
        self.metadata: dict[str, object] = {}
        #: scenarios that failed during a suite run (see CampaignStore);
        #: kept next to the reports so a partial campaign is auditable
        self.failures: list[ScenarioFailure] = []

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------

    def add_report(self, report: ScenarioReport, replace: bool = False) -> None:
        if not replace and report.scenario_id in self.reports:
            raise DuplicateReportError(
                f"database already holds a report for {report.scenario_id}; "
                "pass replace=True to overwrite it"
            )
        self.reports[report.scenario_id] = report

    def add_reports(self, reports: Iterable[ScenarioReport], replace: bool = False) -> None:
        for report in reports:
            self.add_report(report, replace=replace)

    def add_failure(self, failure: ScenarioFailure) -> None:
        self.failures = [f for f in self.failures if f.scenario_id != failure.scenario_id]
        self.failures.append(failure)

    def __len__(self) -> int:
        return len(self.reports)

    def __contains__(self, scenario_id: str) -> bool:
        return scenario_id in self.reports

    def get(self, scenario_id: str) -> Optional[ScenarioReport]:
        return self.reports.get(scenario_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def scenario_records(self) -> list[dict]:
        """One flat record per scenario (classification + golden statistics)."""
        return [report.as_record() for report in self.reports.values()]

    def injection_records(self) -> list[dict]:
        """One flat record per individual injection (when kept)."""
        records = []
        for report in self.reports.values():
            for result in report.results:
                records.append(result.as_record())
        return records

    def select(self, app=None, mode=None, isa=None, cores=None) -> list[ScenarioReport]:
        out = []
        for report in self.reports.values():
            scenario = report.scenario
            if app is not None and scenario.app != app:
                continue
            if mode is not None and scenario.mode != mode:
                continue
            if isa is not None and scenario.isa != isa:
                continue
            if cores is not None and scenario.cores != cores:
                continue
            out.append(report)
        return out

    def percentages(self, scenario_id: str) -> dict[str, float]:
        report = self.reports[scenario_id]
        return dict(report.percentages)

    def total_injections(self) -> int:
        return sum(report.faults_injected for report in self.reports.values())

    def outcome_totals(self) -> dict[str, int]:
        totals = {outcome.value: 0 for outcome in REPORT_OUTCOME_ORDER}
        for report in self.reports.values():
            for outcome, count in report.counts.items():
                totals[outcome] = totals.get(outcome, 0) + count
        return totals

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_dict(self, include_injections: bool = False) -> dict:
        payload = {
            "metadata": self.metadata,
            "scenarios": self.scenario_records(),
            "failures": [failure.as_dict() for failure in self.failures],
            # flat rows only carry the failed-job count; the structured
            # entries live here so load() round-trips them
            "job_failures": {
                report.scenario_id: [dict(f) for f in report.job_failures]
                for report in self.reports.values()
                if report.job_failures
            },
        }
        if include_injections:
            payload["injections"] = self.injection_records()
        return payload

    def save_json(self, path: str | Path, include_injections: bool = False) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(include_injections=include_injections), handle, indent=2, sort_keys=True)
        return path

    @staticmethod
    def load_json(path: str | Path) -> dict:
        """Load a previously saved campaign summary as raw flat records.

        This is the mining layer's path: no :class:`ScenarioReport`
        objects are built.  Use :meth:`load` to get a queryable database
        back instead.
        """
        with Path(path).open("r", encoding="utf-8") as handle:
            return json.load(handle)

    @classmethod
    def from_dict(cls, payload: dict) -> "ResultsDatabase":
        """Rebuild a queryable database from :meth:`to_dict` output.

        Scenario reports come back with exact counts (percentages and
        masking rate are recomputed from them rather than parsed from
        the display-rounded flat fields); when the payload carries
        individual injections they are re-attached to their scenarios.
        """
        database = cls()
        database.metadata = dict(payload.get("metadata", {}))
        results_by_scenario: dict[str, list[InjectionResult]] = {}
        for record in payload.get("injections", []):
            result = InjectionResult.from_record(record)
            results_by_scenario.setdefault(result.scenario_id, []).append(result)
        job_failures = payload.get("job_failures", {})
        for record in payload.get("scenarios", []):
            scenario_id = record["scenario_id"]
            report = ScenarioReport.from_record(
                record,
                results=results_by_scenario.get(scenario_id),
                job_failures=job_failures.get(scenario_id),
            )
            database.add_report(report)
        for failure in payload.get("failures", []):
            database.add_failure(ScenarioFailure.from_dict(failure))
        return database

    @classmethod
    def load(cls, path: str | Path) -> "ResultsDatabase":
        """Round-trip counterpart of :meth:`save_json`."""
        return cls.from_dict(cls.load_json(path))

    def export_csv(self, path: str | Path) -> Path:
        """Write the per-scenario records as CSV (stdlib ``csv`` quoting)."""
        records = self.scenario_records()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        if not records:
            path.write_text("", encoding="utf-8")
            return path
        columns: list[str] = []
        for record in records:
            for key in record:
                if key not in columns:
                    columns.append(key)
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns, restval="")
            writer.writeheader()
            writer.writerows(records)
        return path
