"""The multicore system: cores, caches, kernel and the simulation loop.

The system steps cores in a fixed round-robin order with a bounded
burst per core, which makes every simulation fully deterministic — a
prerequisite for comparing faulty runs against the golden execution.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.core import Core
from repro.cpu.statistics import CoreStats, aggregate_stats, load_balance
from repro.errors import DeadlockError, GuestFault, WatchdogTimeout
from repro.kernel.kernel import Kernel
from repro.memory.cache import Cache
from repro.memory.hierarchy import CacheHierarchy
from repro.soc.config import ProcessorConfig, make_processor_config


class MulticoreSystem:
    """A simulated multicore processor running the mini OS."""

    def __init__(
        self,
        config: ProcessorConfig,
        model_caches: bool = True,
        burst: int = 100,
        engine: bool = True,
    ):
        self.config = config
        self.arch = config.arch
        self.model_caches = model_caches
        self.burst = burst
        #: False pins every core to the reference interpreter; the
        #: differential tests run both engines over identical workloads
        self.engine = engine
        self.shared_l2 = Cache(config.cache_configs["l2"])
        self.cores: list[Core] = []
        self.kernel = Kernel(self, quantum=config.scheduler_quantum)
        for core_id in range(config.num_cores):
            hierarchy = CacheHierarchy.build(shared_l2=self.shared_l2, configs=config.cache_configs)
            core = Core(
                core_id,
                config.arch,
                caches=hierarchy,
                syscall_handler=self.kernel.handle_syscall,
                model_caches=model_caches,
                use_engine=engine,
            )
            self.cores.append(core)
        self.total_instructions = 0
        self.run_reason: Optional[str] = None
        # Mid-iteration resume point set when run() pauses at a breakpoint:
        # (core_index, instructions the core already used of its burst,
        # progress accumulated so far in the interrupted iteration).
        self._resume: Optional[tuple[int, int, int]] = None

    # ------------------------------------------------------------------
    # workload launch helpers (thin wrappers around the kernel)
    # ------------------------------------------------------------------

    def load_process(self, program, name: str = "proc", nthreads_hint: int = 1):
        return self.kernel.launch(program, name=name, nthreads_hint=nthreads_hint)

    def load_mpi_job(self, program, nranks: int, name: str = "mpi"):
        return self.kernel.launch_mpi_job(program, nranks, name=name)

    # ------------------------------------------------------------------
    # simulation loop
    # ------------------------------------------------------------------

    def _step_core(self, core: Core, budget: int) -> int:
        """Run one core for at most ``budget`` instructions.

        One :meth:`Core.run_burst` call per burst: the per-instruction
        loop lives inside the core's execution engine, which keeps
        state and statistics interpreter-exact at every boundary (and
        at a mid-burst guest fault).
        """
        thread = core.thread
        start = core.stats.instructions
        try:
            core.run_burst(budget)
        except GuestFault as fault:
            self.kernel.handle_fault(core, fault)
        executed = core.stats.instructions - start
        if thread is not None:
            thread.slice_used += executed
            thread.instructions_executed += executed
        return executed

    def run(
        self,
        max_instructions: Optional[int] = None,
        stop_at_instruction: Optional[int] = None,
    ) -> str:
        """Run until every process has terminated.

        Returns ``"completed"`` when all processes terminated,
        ``"breakpoint"`` when ``stop_at_instruction`` was reached, or
        ``"ft_detected"`` when the kernel runs in recovery mode and a
        hardening check fired (the fault injector's rollback loop takes
        over; outside recovery mode a detection simply kills the process
        and the run coasts to its normal end).
        Raises :class:`WatchdogTimeout` the moment ``max_instructions``
        is reached (``WatchdogTimeout.executed`` equals the budget
        exactly — per-core burst budgets are clamped to the remainder,
        so a run never overshoots) and :class:`DeadlockError` when no
        runnable thread exists but live processes remain blocked.

        Pausing is schedule-neutral: a breakpoint stops execution exactly
        at ``stop_at_instruction`` (mid-burst, mid-iteration) and the next
        ``run()`` call continues from that exact point, so a run paused
        any number of times executes the same instruction interleaving as
        an uninterrupted run.  The checkpoint subsystem and the fault
        injector both rely on this guarantee.
        """
        kernel = self.kernel
        resume = self._resume
        self._resume = None
        if stop_at_instruction is not None and self.total_instructions >= stop_at_instruction:
            self._resume = resume  # keep the pause point for the real continuation
            self.run_reason = "breakpoint"
            return "breakpoint"
        if resume is None:
            kernel.schedule()
        while kernel.has_live_processes():
            if resume is None:
                if max_instructions is not None and self.total_instructions >= max_instructions:
                    raise WatchdogTimeout(
                        f"instruction budget of {max_instructions} exhausted", executed=self.total_instructions
                    )
                start_index, start_used, progress = 0, 0, 0
            else:
                start_index, start_used, progress = resume
                resume = None
            for index in range(start_index, len(self.cores)):
                core = self.cores[index]
                burst_used = start_used if index == start_index else 0
                remaining = self.burst - burst_used
                if remaining <= 0:
                    continue
                if core.thread is None:
                    if burst_used == 0:
                        core.stats.idle_cycles += self.burst
                    continue
                budget = remaining
                if stop_at_instruction is not None:
                    budget = min(budget, stop_at_instruction - self.total_instructions)
                if max_instructions is not None:
                    # Exact clamp: the former ``max(1, ...)`` granted every
                    # core after the budget boundary one bonus instruction,
                    # so a run could overshoot ``max_instructions`` by up to
                    # ``len(cores) - 1`` before the top-of-iteration check
                    # raised.  Clamping to the true remainder (and skipping
                    # exhausted cores) makes ``WatchdogTimeout.executed``
                    # exact: ``total_instructions`` never exceeds the budget.
                    budget = min(budget, max_instructions - self.total_instructions)
                    if budget <= 0:
                        continue
                executed = self._step_core(core, budget)
                progress += executed
                self.total_instructions += executed
                if kernel.detection_event is not None:
                    # Checked before the breakpoint: a snapshot taken at
                    # this boundary would capture the killed process, so
                    # the detection must win when both coincide.  The
                    # event is stamped with the exact stop position; the
                    # system is abandoned by the recovery loop, so no
                    # resume point is recorded.
                    kernel.detection_event["instruction"] = self.total_instructions
                    self.run_reason = "ft_detected"
                    return "ft_detected"
                if stop_at_instruction is not None and self.total_instructions >= stop_at_instruction:
                    self._resume = (index, burst_used + executed, progress)
                    self.run_reason = "breakpoint"
                    return "breakpoint"
            kernel.schedule()
            if progress == 0 and not kernel.runnable_exists():
                if kernel.has_live_processes():
                    raise DeadlockError(
                        f"no runnable threads but {len(kernel.live_processes())} live process(es) remain"
                    )
                break
        self.run_reason = "completed"
        return "completed"

    # ------------------------------------------------------------------
    # state capture (used by the golden run and the classifier)
    # ------------------------------------------------------------------

    def architectural_state(self) -> tuple:
        return tuple(core.architectural_state() for core in self.cores)

    def memory_snapshot(self) -> dict[str, dict[str, bytes]]:
        """Writable-memory snapshot of every process (data + heap + stacks)."""
        return {
            process.name: process.address_space.snapshot(names=["data", "heap"])
            for process in self.kernel.processes
        }

    def combined_output(self) -> str:
        return self.kernel.combined_output()

    def aggregate_stats(self) -> CoreStats:
        return aggregate_stats([core.stats for core in self.cores])

    def per_core_stats(self) -> list[CoreStats]:
        return [core.stats for core in self.cores]

    def load_balance(self) -> float:
        return load_balance([core.stats for core in self.cores])

    def cache_stats(self) -> dict[str, float]:
        stats: dict[str, float] = {}
        for core in self.cores:
            if core.caches is None:
                continue
            for key, value in core.caches.stats().items():
                stats[f"core{core.core_id}_{key}"] = value
        # The shared L2 is exported exactly once at the SoC level; the
        # per-core hierarchies skip it (owns_l2 is False) so summing the
        # per-core dicts cannot multiply L2 counters by the core count.
        stats.update(self.shared_l2.stats.as_dict("l2_"))
        return stats

    def flush_caches(self) -> None:
        """Invalidate every cache in the SoC: per-core L1s, then the shared L2 once."""
        for core in self.cores:
            if core.caches is not None:
                core.caches.flush(include_l2=False)
        self.shared_l2.flush()

    def processes_ok(self) -> bool:
        """True when every process exited normally with code 0."""
        return all(
            process.state.value == "exited" and process.exit_code == 0 for process in self.kernel.processes
        )

    def any_process_killed(self) -> bool:
        return any(process.state.value == "killed" for process in self.kernel.processes)


def build_system(
    isa: str = "armv7",
    cores: int = 1,
    model_caches: bool = True,
    burst: int = 100,
    quantum: int = 20_000,
    engine: bool = True,
) -> MulticoreSystem:
    """Convenience constructor used throughout examples and tests."""
    config = make_processor_config(isa, cores, quantum=quantum)
    return MulticoreSystem(config, model_caches=model_caches, burst=burst, engine=engine)
