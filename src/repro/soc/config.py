"""Processor model presets.

The paper evaluates six processor models: ARM Cortex-A9 (ARMv7) and
ARM Cortex-A72 (ARMv8), each in single, dual and quad-core variants,
all with the same two-level cache hierarchy (L1I 32kB/4-way,
L1D 32kB/4-way, L2 512kB/8-way).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.arch import ARMV7, ARMV8, ArchSpec, get_arch
from repro.memory.cache import CacheConfig
from repro.memory.hierarchy import CORTEX_A_CACHE_CONFIG


@dataclass(frozen=True)
class ProcessorConfig:
    """One of the six processor models used in the study."""

    name: str
    arch: ArchSpec
    num_cores: int
    cache_configs: dict[str, CacheConfig] = field(default_factory=lambda: dict(CORTEX_A_CACHE_CONFIG))
    scheduler_quantum: int = 20_000

    @property
    def model_id(self) -> str:
        return f"{self.arch.cpu_model}x{self.num_cores}"

    def describe(self) -> dict:
        info = {
            "name": self.name,
            "cores": self.num_cores,
            "model_id": self.model_id,
        }
        info.update(self.arch.describe())
        for level, cfg in self.cache_configs.items():
            info[f"{level}_size_kb"] = cfg.size_bytes // 1024
            info[f"{level}_assoc"] = cfg.associativity
        return info


def _make_models() -> dict[str, ProcessorConfig]:
    models = {}
    for arch in (ARMV7, ARMV8):
        for cores in (1, 2, 4):
            name = f"{arch.cpu_model}x{cores}"
            models[name] = ProcessorConfig(name=name, arch=arch, num_cores=cores)
    return models


#: The six processor models of Section 3.1.
PROCESSOR_MODELS: dict[str, ProcessorConfig] = _make_models()


def get_processor_model(name: str) -> ProcessorConfig:
    """Look up a processor model preset by name (e.g. ``cortex-a9x2``)."""
    key = name.lower()
    if key in PROCESSOR_MODELS:
        return PROCESSOR_MODELS[key]
    raise KeyError(f"unknown processor model {name!r}; expected one of {sorted(PROCESSOR_MODELS)}")


def make_processor_config(isa: str, cores: int, quantum: int = 20_000) -> ProcessorConfig:
    """Build a processor configuration from an ISA name and core count."""
    arch = get_arch(isa)
    if cores < 1:
        raise ValueError(f"invalid core count {cores}")
    return ProcessorConfig(name=f"{arch.cpu_model}x{cores}", arch=arch, num_cores=cores, scheduler_quantum=quantum)
