"""System-on-chip assembly: processor models and the multicore system."""

from repro.soc.config import PROCESSOR_MODELS, ProcessorConfig, get_processor_model
from repro.soc.multicore import MulticoreSystem, build_system

__all__ = [
    "PROCESSOR_MODELS",
    "ProcessorConfig",
    "get_processor_model",
    "MulticoreSystem",
    "build_system",
]
