"""Fault injection framework (the paper's gem5 extension).

The framework emulates single-bit-upsets (SBUs) by flipping one bit of
one microarchitectural component (general purpose register, FP
register, program counter, a data-memory byte, or a live L1-data/L2
cache line) at a uniformly random point of the application lifespan,
then comparing the faulty run with the golden execution and classifying
the outcome with the five-group taxonomy of Cho et al. (Vanished / ONA
/ OMM / UT / Hang).  Runs that finish before their injection point are
reported as ``NotInjected`` and excluded from outcome statistics.
"""

from repro.injection.fault import (
    ALL_TARGET_KINDS,
    TARGET_CACHE,
    TARGET_FPR,
    TARGET_GPR,
    TARGET_MEMORY,
    TARGET_PC,
    FaultDescriptor,
    FaultModel,
)
from repro.injection.golden import GoldenRunner, GoldenRunResult
from repro.injection.classify import NOT_INJECTED, Outcome, classify_run
from repro.injection.injector import FaultInjector, InjectionResult
from repro.injection.campaign import CampaignConfig, ScenarioCampaign, ScenarioReport

__all__ = [
    "ALL_TARGET_KINDS",
    "TARGET_CACHE",
    "TARGET_FPR",
    "TARGET_GPR",
    "TARGET_MEMORY",
    "TARGET_PC",
    "NOT_INJECTED",
    "FaultDescriptor",
    "FaultModel",
    "GoldenRunner",
    "GoldenRunResult",
    "Outcome",
    "classify_run",
    "FaultInjector",
    "InjectionResult",
    "CampaignConfig",
    "ScenarioCampaign",
    "ScenarioReport",
]
