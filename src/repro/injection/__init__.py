"""Fault injection framework (the paper's gem5 extension).

The framework emulates single-bit-upsets (SBUs) by flipping one bit of
one microarchitectural CPU component (general purpose register, FP
register, program counter or a data-memory byte) at a uniformly random
point of the application lifespan, then comparing the faulty run with
the golden execution and classifying the outcome with the five-group
taxonomy of Cho et al. (Vanished / ONA / OMM / UT / Hang).
"""

from repro.injection.fault import FaultDescriptor, FaultModel
from repro.injection.golden import GoldenRunner, GoldenRunResult
from repro.injection.classify import Outcome, classify_run
from repro.injection.injector import FaultInjector, InjectionResult
from repro.injection.campaign import CampaignConfig, ScenarioCampaign, ScenarioReport

__all__ = [
    "FaultDescriptor",
    "FaultModel",
    "GoldenRunner",
    "GoldenRunResult",
    "Outcome",
    "classify_run",
    "FaultInjector",
    "InjectionResult",
    "CampaignConfig",
    "ScenarioCampaign",
    "ScenarioReport",
]
