"""Fault injection campaigns over single scenarios and scenario suites.

One *campaign* corresponds to one scenario of the paper's matrix: a
golden run, a fault target list and N injections, summarised into the
per-category percentages that Figures 2 and 3 plot.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.injection.classify import NOT_INJECTED, empty_outcome_counts, masking_rate, outcome_percentages
from repro.injection.fault import FaultDescriptor, FaultModel
from repro.injection.golden import GoldenRunner, GoldenRunResult
from repro.injection.injector import FaultInjector, InjectionResult
from repro.npb.suite import Scenario, format_target_mix


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of a fault injection campaign.

    The paper uses 8,000 faults per scenario; the default here is kept
    as a parameter so laptop-scale campaigns can dial it down.

    ``checkpoint_interval`` is the base spacing (in instructions) of the
    golden run's checkpoints, which injection runs restore instead of
    re-simulating from boot.  ``None`` picks the default spacing, ``0``
    disables checkpointing (every injection replays from boot).
    """

    faults_per_scenario: int = 8000
    seed: int = 2018
    watchdog_multiplier: int = 4
    include_pc: bool = True
    target_mix: Optional[dict] = None
    model_caches_golden: bool = True
    keep_individual_results: bool = True
    checkpoint_interval: Optional[int] = None

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class ScenarioReport:
    """Aggregated result of one scenario's campaign.

    ``faults_injected`` counts the faults actually applied; runs that
    finished before their injection point are tallied under the
    ``NotInjected`` pseudo-outcome and excluded from the percentages.
    """

    scenario: Scenario
    faults_injected: int
    counts: dict[str, int]
    percentages: dict[str, float]
    masking_rate_pct: float
    golden_summary: dict
    golden_stats: dict[str, float]
    wall_time_seconds: float
    results: list[InjectionResult] = field(default_factory=list)
    #: label of the mix the faults were actually drawn from — the
    #: scenario's own mix or the campaign-level one ("default" = the
    #: paper's register-file campaign)
    target_mix_label: str = "default"

    @property
    def scenario_id(self) -> str:
        return self.scenario.scenario_id

    def as_record(self) -> dict:
        record = {
            "scenario_id": self.scenario_id,
            "app": self.scenario.app,
            "mode": self.scenario.mode,
            "cores": self.scenario.cores,
            "isa": self.scenario.isa,
            "target_mix": self.target_mix_label,
            "faults": self.faults_injected,
            "masking_rate_pct": round(self.masking_rate_pct, 3),
            "wall_time_seconds": round(self.wall_time_seconds, 3),
        }
        for outcome, count in self.counts.items():
            record[f"count_{outcome}"] = count
        for outcome, pct in self.percentages.items():
            record[f"pct_{outcome}"] = round(pct, 3)
        for key, value in self.golden_stats.items():
            record[f"stat_{key}"] = value
        return record


def aggregate_results(results: list[InjectionResult]) -> dict[str, int]:
    counts = empty_outcome_counts()
    for result in results:
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
    return counts


def summarize(
    scenario: Scenario,
    golden: GoldenRunResult,
    results: list[InjectionResult],
    wall_time_seconds: float,
    keep_individual_results: bool = True,
    target_mix: Optional[dict] = None,
) -> ScenarioReport:
    """Aggregate one scenario's injection results into a report.

    ``target_mix`` is the mix the fault list was drawn from (the
    resolved scenario- or campaign-level mix); it defaults to the
    scenario's own mix so standalone callers stay correct.
    """
    counts = aggregate_results(results)
    if target_mix is None:
        target_mix = scenario.target_mix_dict()
    return ScenarioReport(
        scenario=scenario,
        faults_injected=len(results) - counts.get(NOT_INJECTED, 0),
        counts=counts,
        percentages=outcome_percentages(counts),
        masking_rate_pct=masking_rate(counts),
        golden_summary=golden.summary(),
        golden_stats=dict(golden.stats),
        wall_time_seconds=wall_time_seconds,
        results=list(results) if keep_individual_results else [],
        target_mix_label=format_target_mix(target_mix),
    )


class ScenarioCampaign:
    """Runs the full four-phase workflow for one scenario, in process."""

    def __init__(self, scenario: Scenario, config: CampaignConfig | None = None):
        self.scenario = scenario
        self.config = config or CampaignConfig()
        self.golden: Optional[GoldenRunResult] = None

    def run_golden(self) -> GoldenRunResult:
        runner = GoldenRunner(
            model_caches=self.config.model_caches_golden,
            checkpoint_interval=self.config.checkpoint_interval,
        )
        self.golden = runner.run(self.scenario)
        return self.golden

    def resolved_target_mix(self) -> Optional[dict]:
        """The effective mix: the scenario's own axis wins over the config."""
        scenario_mix = self.scenario.target_mix_dict()
        return scenario_mix if scenario_mix is not None else self.config.target_mix

    def build_fault_list(self, count: Optional[int] = None) -> list[FaultDescriptor]:
        if self.golden is None:
            self.run_golden()
        # zlib.crc32 is used instead of hash() so the derived seed is stable
        # across interpreter invocations and worker processes.
        scenario_tag = zlib.crc32(self.scenario.scenario_id.encode()) % 100_000
        model = FaultModel(
            isa=self.scenario.isa,
            cores=self.scenario.cores,
            seed=self.config.seed + scenario_tag,
            target_mix=self.resolved_target_mix(),
            include_pc=self.config.include_pc,
        )
        return model.generate(
            total_instructions=self.golden.total_instructions,
            count=count if count is not None else self.config.faults_per_scenario,
            memory_ranges=self.golden.injectable_memory_ranges(),
            num_processes=len(self.golden.process_names),
        )

    def run(self, count: Optional[int] = None) -> ScenarioReport:
        start = time.perf_counter()
        if self.golden is None:
            self.run_golden()
        faults = self.build_fault_list(count)
        injector = FaultInjector(
            self.scenario,
            self.golden,
            watchdog_multiplier=self.config.watchdog_multiplier,
        )
        results = injector.run_many(faults)
        elapsed = time.perf_counter() - start
        return summarize(
            self.scenario,
            self.golden,
            results,
            elapsed,
            keep_individual_results=self.config.keep_individual_results,
            target_mix=self.resolved_target_mix(),
        )
