"""Fault injection campaigns over single scenarios and scenario suites.

One *campaign* corresponds to one scenario of the paper's matrix: a
golden run, a fault target list and N injections, summarised into the
per-category percentages that Figures 2 and 3 plot.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import asdict, dataclass, field, fields as dataclasses_fields
from typing import Optional

from repro.injection.classify import (
    NOT_INJECTED,
    Outcome,
    empty_outcome_counts,
    masking_rate,
    outcome_percentages,
)
from repro.injection.fault import FaultDescriptor, FaultModel
from repro.injection.golden import GoldenRunner, GoldenRunResult
from repro.hardening.schemes import compile_scheme, normalize_hardening, recovery_retries
from repro.isa.arch import get_arch
from repro.injection.injector import FaultInjector, InjectionResult
from repro.npb.suite import Scenario, format_target_mix, parse_target_mix_label


@dataclass(frozen=True)
class CampaignConfig:
    """Configuration of a fault injection campaign.

    The paper uses 8,000 faults per scenario; the default here is kept
    as a parameter so laptop-scale campaigns can dial it down.

    ``checkpoint_interval`` is the base spacing (in instructions) of the
    golden run's checkpoints, which injection runs restore instead of
    re-simulating from boot.  ``None`` picks the default spacing, ``0``
    disables checkpointing (every injection replays from boot).
    """

    faults_per_scenario: int = 8000
    seed: int = 2018
    watchdog_multiplier: int = 4
    include_pc: bool = True
    target_mix: Optional[dict] = None
    model_caches_golden: bool = True
    keep_individual_results: bool = True
    checkpoint_interval: Optional[int] = None

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignConfig":
        """Rebuild a config from :meth:`as_dict` output (JSON-safe).

        The coordinator hands its campaign configuration to workers
        over the wire; unknown keys raise so a version-skewed worker
        fails loudly instead of silently running a different campaign.
        """
        known = {f.name for f in dataclasses_fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown campaign config keys {unknown}")
        return cls(**payload)


@dataclass
class ScenarioReport:
    """Aggregated result of one scenario's campaign.

    ``faults_injected`` counts the faults actually applied; runs that
    finished before their injection point are tallied under the
    ``NotInjected`` pseudo-outcome and excluded from the percentages.
    """

    scenario: Scenario
    faults_injected: int
    counts: dict[str, int]
    percentages: dict[str, float]
    masking_rate_pct: float
    golden_summary: dict
    golden_stats: dict[str, float]
    wall_time_seconds: float
    results: list[InjectionResult] = field(default_factory=list)
    #: label of the mix the faults were actually drawn from — the
    #: scenario's own mix or the campaign-level one ("default" = the
    #: paper's register-file campaign)
    target_mix_label: str = "default"
    #: jobs whose execution failed after retries: the scenario survives
    #: with the remaining jobs' results, and each failure is recorded as
    #: ``{"job_id", "faults", "error", "attempts"}``
    job_failures: list[dict] = field(default_factory=list)
    #: provenance of CI-driven adaptive sampling (plan, batches, interval
    #: estimates, stopping reason — see repro.stats.controller); None for
    #: fixed-count campaigns, whose payloads stay byte-identical
    adaptive: Optional[dict] = None
    #: aggregate rollback accounting of a ``rec`` scheme (retry budget,
    #: total rollbacks, re-executed instructions, escalations); None for
    #: every other scheme, whose payloads stay byte-identical
    recovery: Optional[dict] = None

    @property
    def scenario_id(self) -> str:
        return self.scenario.scenario_id

    # ------------------------------------------------------------------
    # raw-count access: estimators must consume integer counts, never
    # the display-rounded percentages
    # ------------------------------------------------------------------

    def observed_counts(self) -> dict[str, int]:
        """Raw outcome counts over *injected* runs (NotInjected excluded)."""
        return {key: value for key, value in self.counts.items() if key != NOT_INJECTED}

    @property
    def not_injected(self) -> int:
        """Runs that finished before their injection point."""
        return self.counts.get(NOT_INJECTED, 0)

    @property
    def observed_total(self) -> int:
        """Number of injected runs — the denominator of every rate."""
        return sum(self.observed_counts().values())

    def as_record(self) -> dict:
        record = {
            "scenario_id": self.scenario_id,
            "app": self.scenario.app,
            "mode": self.scenario.mode,
            "cores": self.scenario.cores,
            "isa": self.scenario.isa,
            "target_mix": self.target_mix_label,
            "hardening": self.scenario.hardening_label,
            "faults": self.faults_injected,
            "failed_jobs": len(self.job_failures),
            "masking_rate_pct": round(self.masking_rate_pct, 3),
            "wall_time_seconds": round(self.wall_time_seconds, 3),
        }
        for outcome, count in self.counts.items():
            record[f"count_{outcome}"] = count
        for outcome, pct in self.percentages.items():
            record[f"pct_{outcome}"] = round(pct, 3)
        for key, value in self.golden_stats.items():
            record[f"stat_{key}"] = value
        if self.adaptive:
            # flat-row summary of the adaptive run; fixed-count rows are
            # untouched (no new keys) so existing datasets stay identical
            record["adaptive_spent"] = self.adaptive.get("spent")
            record["adaptive_batches"] = len(self.adaptive.get("batches", []))
            record["adaptive_stopping"] = self.adaptive.get("stopping")
            widths = [
                estimate.get("half_width")
                for estimate in self.adaptive.get("estimates", {}).values()
                if estimate.get("half_width") is not None
            ]
            if widths:
                record["adaptive_ci_half_width"] = round(max(widths), 6)
        if self.recovery:
            # flat-row summary of the recovery policy; non-rec rows are
            # untouched (no new keys) so existing datasets stay identical
            record["recovery_retries"] = self.recovery.get("retries")
            record["recovery_rollbacks"] = self.recovery.get("rollbacks")
            record["recovery_reexecuted_instructions"] = self.recovery.get(
                "reexecuted_instructions"
            )
            record["recovery_escalations"] = self.recovery.get("escalations")
            record["recovery_multi_retry_injections"] = self.recovery.get(
                "multi_retry_injections"
            )
        return record

    # ------------------------------------------------------------------
    # serialisation: lossless payload (campaign shards) and flat-record
    # reconstruction (the save_json summary path)
    # ------------------------------------------------------------------

    def to_payload(self) -> dict:
        """Lossless JSON-safe form, the unit the campaign store shards."""
        payload = {
            "scenario": self.scenario.as_dict(),
            "faults_injected": self.faults_injected,
            "counts": dict(self.counts),
            "percentages": dict(self.percentages),
            "masking_rate_pct": self.masking_rate_pct,
            "golden_summary": dict(self.golden_summary),
            "golden_stats": dict(self.golden_stats),
            "wall_time_seconds": self.wall_time_seconds,
            "target_mix_label": self.target_mix_label,
            "job_failures": [dict(failure) for failure in self.job_failures],
            "results": [result.as_record() for result in self.results],
        }
        # emitted only for adaptive campaigns: fixed-count shard payloads
        # (and therefore pinned fingerprints) stay byte-identical
        if self.adaptive is not None:
            payload["adaptive"] = dict(self.adaptive)
        # likewise emitted only for rec schemes: every pre-recovery
        # shard (and every non-rec shard) keeps its exact byte layout
        if self.recovery is not None:
            payload["recovery"] = dict(self.recovery)
        return payload

    @classmethod
    def from_payload(cls, payload: dict) -> "ScenarioReport":
        """Rebuild a full report from :meth:`to_payload` output."""
        return cls(
            scenario=Scenario.from_dict(payload["scenario"]),
            faults_injected=int(payload["faults_injected"]),
            counts={str(k): int(v) for k, v in payload["counts"].items()},
            percentages={str(k): float(v) for k, v in payload["percentages"].items()},
            masking_rate_pct=float(payload["masking_rate_pct"]),
            golden_summary=dict(payload["golden_summary"]),
            # values stay as-parsed: coercing int-valued stats to float
            # would break bit-identical resume (10000 vs 10000.0 in JSON)
            golden_stats=dict(payload["golden_stats"]),
            wall_time_seconds=float(payload["wall_time_seconds"]),
            results=[InjectionResult.from_record(r) for r in payload.get("results", [])],
            target_mix_label=str(payload.get("target_mix_label", "default")),
            job_failures=[dict(failure) for failure in payload.get("job_failures", [])],
            adaptive=dict(payload["adaptive"]) if payload.get("adaptive") is not None else None,
            recovery=dict(payload["recovery"]) if payload.get("recovery") is not None else None,
        )

    @classmethod
    def from_record(
        cls,
        record: dict,
        results: Optional[list[InjectionResult]] = None,
        job_failures: Optional[list[dict]] = None,
    ) -> "ScenarioReport":
        """Rebuild a queryable report from an :meth:`as_record` row.

        The flat record stores percentages rounded for display, so they
        (and the masking rate) are recomputed exactly from the counts.
        Golden statistics survive under their ``stat_`` prefix; the rest
        of the golden summary is not part of the flat row.  The flat row
        only carries the failed-job *count*, so the caller supplies the
        structured ``job_failures`` (the database payload keeps them in
        a side table).
        """
        scenario = Scenario(
            app=str(record["app"]),
            mode=str(record["mode"]),
            cores=int(record["cores"]),
            isa=str(record["isa"]),
            target_mix=parse_target_mix_label(record.get("target_mix", "default")),
            hardening=normalize_hardening(record.get("hardening")),
        )
        counts = {
            key[len("count_"):]: int(value)
            for key, value in record.items()
            if key.startswith("count_")
        }
        stats = {
            key[len("stat_"):]: value for key, value in record.items() if key.startswith("stat_")
        }
        recovery = None
        if "recovery_rollbacks" in record:
            recovery = {
                "retries": record.get("recovery_retries"),
                "recovered": counts.get(Outcome.RECOVERED.value, 0),
                "rollbacks": record.get("recovery_rollbacks"),
                "reexecuted_instructions": record.get("recovery_reexecuted_instructions"),
                "escalations": record.get("recovery_escalations"),
                "multi_retry_injections": record.get("recovery_multi_retry_injections"),
            }
        return cls(
            scenario=scenario,
            faults_injected=int(record["faults"]),
            counts=counts,
            percentages=outcome_percentages(counts),
            masking_rate_pct=masking_rate(counts),
            golden_summary={"scenario": scenario.scenario_id},
            golden_stats=stats,
            wall_time_seconds=float(record.get("wall_time_seconds", 0.0)),
            results=list(results) if results else [],
            target_mix_label=str(record.get("target_mix", "default")),
            job_failures=[dict(failure) for failure in job_failures] if job_failures else [],
            recovery=recovery,
        )


def aggregate_results(results: list[InjectionResult]) -> dict[str, int]:
    counts = empty_outcome_counts()
    for result in results:
        counts[result.outcome] = counts.get(result.outcome, 0) + 1
    return counts


def summarize(
    scenario: Scenario,
    golden: GoldenRunResult,
    results: list[InjectionResult],
    wall_time_seconds: float,
    keep_individual_results: bool = True,
    target_mix: Optional[dict] = None,
    job_failures: Optional[list[dict]] = None,
    adaptive: Optional[dict] = None,
) -> ScenarioReport:
    """Aggregate one scenario's injection results into a report.

    ``target_mix`` is the mix the fault list was drawn from (the
    resolved scenario- or campaign-level mix); it defaults to the
    scenario's own mix so standalone callers stay correct.
    ``job_failures`` records jobs that failed after retries; their
    faults contribute no outcomes but the failure stays visible.
    ``adaptive`` attaches the sampling controller's provenance (plan,
    batches, interval estimates) for CI-driven adaptive campaigns.

    Scenarios under a ``rec`` scheme additionally seed the ``Recovered``
    zero entry (so recovery tables always see the column) and aggregate
    the per-injection rollback metadata into the report's ``recovery``
    dict — both strictly opt-in, keeping every other scheme's report
    byte-identical to the pre-recovery format.
    """
    counts = aggregate_results(results)
    retries = recovery_retries(scenario.hardening)
    recovery = None
    if retries is not None:
        counts.setdefault(Outcome.RECOVERED.value, 0)
        with_meta = [r for r in results if r.recovery is not None]
        recovery = {
            "retries": retries,
            "recovered": counts.get(Outcome.RECOVERED.value, 0),
            "rollbacks": sum(r.recovery["rollbacks"] for r in with_meta),
            "reexecuted_instructions": sum(
                r.recovery["reexecuted_instructions"] for r in with_meta
            ),
            "escalations": sum(1 for r in with_meta if r.recovery.get("escalated")),
            "multi_retry_injections": sum(
                1 for r in with_meta if r.recovery["rollbacks"] >= 2
            ),
        }
    if target_mix is None:
        target_mix = scenario.target_mix_dict()
    return ScenarioReport(
        scenario=scenario,
        faults_injected=len(results) - counts.get(NOT_INJECTED, 0),
        counts=counts,
        percentages=outcome_percentages(counts),
        masking_rate_pct=masking_rate(counts),
        golden_summary=golden.summary(),
        golden_stats=dict(golden.stats),
        wall_time_seconds=wall_time_seconds,
        results=list(results) if keep_individual_results else [],
        target_mix_label=format_target_mix(target_mix),
        job_failures=list(job_failures) if job_failures else [],
        adaptive=adaptive,
        recovery=recovery,
    )


class ScenarioCampaign:
    """Runs the full four-phase workflow for one scenario, in process."""

    def __init__(self, scenario: Scenario, config: CampaignConfig | None = None):
        self.scenario = scenario
        self.config = config or CampaignConfig()
        self.golden: Optional[GoldenRunResult] = None

    def run_golden(self) -> GoldenRunResult:
        runner = GoldenRunner(
            model_caches=self.config.model_caches_golden,
            checkpoint_interval=self.config.checkpoint_interval,
        )
        self.golden = runner.run(self.scenario)
        return self.golden

    def resolved_target_mix(self) -> Optional[dict]:
        """The effective mix: the scenario's own axis wins over the config."""
        scenario_mix = self.scenario.target_mix_dict()
        return scenario_mix if scenario_mix is not None else self.config.target_mix

    def build_fault_list(
        self, count: Optional[int] = None, vulnerability=None
    ) -> list[FaultDescriptor]:
        """The scenario's fault list; deterministic given (scenario, seed).

        ``vulnerability`` optionally supplies a
        :class:`repro.staticlint.ace.ScenarioVulnerability`: register
        draws are then importance-weighted by its predicted per-register
        ACE fractions (via :class:`WeightedFaultModel`).  The default is
        the uniform model — its fault lists, and therefore campaign
        fingerprints, are unaffected by the weighting feature.
        """
        if self.golden is None:
            self.run_golden()
        # zlib.crc32 is used instead of hash() so the derived seed is stable
        # across interpreter invocations and worker processes.  The tag is
        # derived from the recovery-stripped scenario id: recovery is a
        # response policy, not a fault-model axis, so a rec scheme faces
        # the exact fault list of its detect-and-die twin (which is what
        # makes their Detected counts directly comparable).  Non-rec
        # scenario ids are unchanged by the stripping.
        fault_stream_id = self.scenario.with_hardening(
            compile_scheme(self.scenario.hardening)
        ).scenario_id
        scenario_tag = zlib.crc32(fault_stream_id.encode()) % 100_000
        model_args = dict(
            isa=self.scenario.isa,
            cores=self.scenario.cores,
            seed=self.config.seed + scenario_tag,
            target_mix=self.resolved_target_mix(),
            include_pc=self.config.include_pc,
        )
        if vulnerability is not None:
            from repro.injection.fault import WeightedFaultModel

            arch = get_arch(self.scenario.isa)
            fpr_weights = vulnerability.register_weights("fpr") if arch.num_fpr else None
            model = WeightedFaultModel(
                gpr_weights=vulnerability.register_weights("gpr") or None,
                fpr_weights=fpr_weights or None,
                **model_args,
            )
        else:
            model = FaultModel(**model_args)
        return model.generate(
            total_instructions=self.golden.total_instructions,
            count=count if count is not None else self.config.faults_per_scenario,
            memory_ranges=self.golden.injectable_memory_ranges(),
            num_processes=len(self.golden.process_names),
        )

    def run_adaptive(self, plan, prior=None) -> ScenarioReport:
        """CI-driven adaptive campaign, in process (the reference driver).

        Draws deterministic stratified batches from the canonical fault
        stream until the plan's stopping rule fires (see
        :mod:`repro.stats.controller`).  Batch results are recorded in
        ``fault_id`` order — the canonical order every driver (pool,
        distributed) must reproduce for adaptive runs to be
        bit-identical across execution modes.
        """
        from repro.stats.controller import AdaptiveController

        start = time.perf_counter()
        if self.golden is None:
            self.run_golden()
        controller = AdaptiveController(campaign=self, plan=plan, prior=prior)
        injector = FaultInjector(
            self.scenario,
            self.golden,
            watchdog_multiplier=self.config.watchdog_multiplier,
        )
        results: list[InjectionResult] = []
        while True:
            batch = controller.next_batch()
            if batch is None:
                break
            batch_results = sorted(
                injector.run_many(batch.faults), key=lambda r: r.fault.fault_id
            )
            controller.record_batch(batch, batch_results)
            results.extend(batch_results)
        elapsed = time.perf_counter() - start
        return summarize(
            self.scenario,
            self.golden,
            results,
            elapsed,
            keep_individual_results=self.config.keep_individual_results,
            target_mix=self.resolved_target_mix(),
            adaptive=controller.summary(),
        )

    def run(self, count: Optional[int] = None) -> ScenarioReport:
        start = time.perf_counter()
        if self.golden is None:
            self.run_golden()
        faults = self.build_fault_list(count)
        injector = FaultInjector(
            self.scenario,
            self.golden,
            watchdog_multiplier=self.config.watchdog_multiplier,
        )
        results = injector.run_many(faults)
        elapsed = time.perf_counter() - start
        return summarize(
            self.scenario,
            self.golden,
            results,
            elapsed,
            keep_individual_results=self.config.keep_individual_results,
            target_mix=self.resolved_target_mix(),
        )
