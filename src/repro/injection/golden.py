"""Golden execution: the fault-free reference run of a scenario.

Phase one of the paper's four-stage workflow.  The golden run records
everything the classifier needs to detect misbehaviour (executed
instruction count, final memory state, program output, architectural
state) plus the microarchitectural statistics consumed by the
data-mining stage.

The golden run also records periodic :class:`SystemSnapshot`
checkpoints.  Injection runs restore the nearest checkpoint at or
before their injection point instead of re-simulating from boot, which
turns the quadratic cost of a campaign (every injection replays the
whole prefix) into a near-linear one.  Pausing for a checkpoint is
schedule-neutral (see :meth:`MulticoreSystem.run`), so a checkpointed
golden run is bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.checkpoint import SystemSnapshot, capture_snapshot
from repro.errors import SimulatorError
from repro.npb.suite import Scenario, build_program, create_system, instruction_budget, launch_scenario
from repro.profiling.stats_collector import collect_microarch_stats

#: Base checkpoint spacing (instructions) when no interval is requested.
DEFAULT_CHECKPOINT_INTERVAL = 4096

#: Checkpoint count cap: when a run outgrows it, every other checkpoint
#: is dropped and the interval doubles, bounding memory at ~2x the cap.
MAX_CHECKPOINTS = 48


@dataclass
class GoldenRunResult:
    """Reference behaviour of one scenario."""

    scenario: Scenario
    total_instructions: int
    output: str
    memory_snapshots: dict[str, dict[str, bytes]]
    final_state: tuple
    exit_ok: bool
    wall_time_seconds: float
    stats: dict[str, float] = field(default_factory=dict)
    per_core_instructions: list[int] = field(default_factory=list)
    load_balance_pct: float = 0.0
    syscall_counts: dict[str, int] = field(default_factory=dict)
    process_names: list[str] = field(default_factory=list)
    checkpoints: list[SystemSnapshot] = field(default_factory=list)
    #: per-process injectable memory layout: one (base, size, name) list
    #: per process (data, heap and thread stacks), index-aligned with
    #: ``process_names``; derived from the loader's final segment map
    memory_ranges: list[list[tuple[int, int, str]]] = field(default_factory=list)

    def watchdog_budget(self, multiplier: int = 4, floor: int = 50_000) -> int:
        return max(floor, multiplier * self.total_instructions)

    def injectable_memory_ranges(self) -> list[list[tuple[int, int]]]:
        """Per-process (base, size) fault-target ranges for the fault model."""
        return [[(base, size) for base, size, _name in ranges] for ranges in self.memory_ranges]

    def checkpoint_instructions(self) -> list[int]:
        return [checkpoint.instruction_count for checkpoint in self.checkpoints]

    def summary(self) -> dict:
        return {
            "scenario": self.scenario.scenario_id,
            "instructions": self.total_instructions,
            "exit_ok": self.exit_ok,
            "wall_time_seconds": round(self.wall_time_seconds, 4),
            "load_balance_pct": round(self.load_balance_pct, 3),
            "processes": len(self.process_names),
            "checkpoints": len(self.checkpoints),
        }


class GoldenRunner:
    """Runs scenarios without faults and captures their reference behaviour.

    Parameters
    ----------
    model_caches:
        Model the cache hierarchy (needed for the profiling statistics).
    checkpoint_interval:
        Base spacing between checkpoints in instructions.  ``None``
        selects :data:`DEFAULT_CHECKPOINT_INTERVAL`; ``0`` (the
        constructor default — bare golden runs for profiling or analysis
        have no use for snapshots) disables checkpointing.  Campaigns
        enable checkpointing through ``CampaignConfig``.  Long runs
        adaptively double the spacing so at most ~:data:`MAX_CHECKPOINTS`
        snapshots are kept.
    """

    def __init__(self, model_caches: bool = True, checkpoint_interval: Optional[int] = 0):
        self.model_caches = model_caches
        self.checkpoint_interval = self._resolve_interval(checkpoint_interval)

    @staticmethod
    def _resolve_interval(checkpoint_interval: Optional[int]) -> int:
        if checkpoint_interval is None:
            return DEFAULT_CHECKPOINT_INTERVAL
        if checkpoint_interval < 0:
            raise SimulatorError(f"invalid checkpoint interval {checkpoint_interval}")
        return checkpoint_interval

    def run(
        self,
        scenario: Scenario,
        collect_stats: bool = True,
        checkpoint_interval: Optional[int] = None,
    ) -> GoldenRunResult:
        if checkpoint_interval is None:
            interval = self.checkpoint_interval
        else:
            interval = self._resolve_interval(checkpoint_interval)
        program = build_program(scenario.app, scenario.mode, scenario.isa, scenario.hardening)
        system = create_system(scenario, model_caches=self.model_caches)
        launch_scenario(system, scenario, program)
        budget = instruction_budget(scenario)
        start = time.perf_counter()
        checkpoints: list[SystemSnapshot] = []
        if interval:
            checkpoints.append(capture_snapshot(system))  # boot state, instruction 0
            next_stop = interval
            while True:
                reason = system.run(max_instructions=budget, stop_at_instruction=next_stop)
                if reason != "breakpoint":
                    break
                checkpoints.append(capture_snapshot(system))
                next_stop += interval
                if len(checkpoints) > MAX_CHECKPOINTS:
                    checkpoints = checkpoints[::2]
                    interval *= 2
                    next_stop = checkpoints[-1].instruction_count + interval
        else:
            reason = system.run(max_instructions=budget)
        elapsed = time.perf_counter() - start
        if reason != "completed":
            raise SimulatorError(f"golden run of {scenario.scenario_id} did not complete ({reason})")
        if not system.processes_ok():
            summary = system.kernel.process_summary()
            raise SimulatorError(f"golden run of {scenario.scenario_id} terminated abnormally: {summary}")
        stats = collect_microarch_stats(system, program) if collect_stats else {}
        return GoldenRunResult(
            scenario=scenario,
            total_instructions=system.total_instructions,
            output=system.combined_output(),
            memory_snapshots=system.memory_snapshot(),
            final_state=system.architectural_state(),
            exit_ok=True,
            wall_time_seconds=elapsed,
            stats=stats,
            per_core_instructions=[core.stats.instructions for core in system.cores],
            load_balance_pct=system.load_balance(),
            syscall_counts=dict(system.kernel.syscall_counts),
            process_names=[p.name for p in system.kernel.processes],
            checkpoints=checkpoints,
            memory_ranges=[
                process.address_space.injectable_ranges() for process in system.kernel.processes
            ],
        )
