"""Golden execution: the fault-free reference run of a scenario.

Phase one of the paper's four-stage workflow.  The golden run records
everything the classifier needs to detect misbehaviour (executed
instruction count, final memory state, program output, architectural
state) plus the microarchitectural statistics consumed by the
data-mining stage.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SimulatorError
from repro.npb.suite import Scenario, build_program, create_system, instruction_budget, launch_scenario
from repro.profiling.stats_collector import collect_microarch_stats


@dataclass
class GoldenRunResult:
    """Reference behaviour of one scenario."""

    scenario: Scenario
    total_instructions: int
    output: str
    memory_snapshots: dict[str, dict[str, bytes]]
    final_state: tuple
    exit_ok: bool
    wall_time_seconds: float
    stats: dict[str, float] = field(default_factory=dict)
    per_core_instructions: list[int] = field(default_factory=list)
    load_balance_pct: float = 0.0
    syscall_counts: dict[str, int] = field(default_factory=dict)
    process_names: list[str] = field(default_factory=list)

    def watchdog_budget(self, multiplier: int = 4, floor: int = 50_000) -> int:
        return max(floor, multiplier * self.total_instructions)

    def summary(self) -> dict:
        return {
            "scenario": self.scenario.scenario_id,
            "instructions": self.total_instructions,
            "exit_ok": self.exit_ok,
            "wall_time_seconds": round(self.wall_time_seconds, 4),
            "load_balance_pct": round(self.load_balance_pct, 3),
            "processes": len(self.process_names),
        }


class GoldenRunner:
    """Runs scenarios without faults and captures their reference behaviour."""

    def __init__(self, model_caches: bool = True):
        self.model_caches = model_caches

    def run(self, scenario: Scenario, collect_stats: bool = True) -> GoldenRunResult:
        program = build_program(scenario.app, scenario.mode, scenario.isa)
        system = create_system(scenario, model_caches=self.model_caches)
        launch_scenario(system, scenario, program)
        start = time.perf_counter()
        reason = system.run(max_instructions=instruction_budget(scenario))
        elapsed = time.perf_counter() - start
        if reason != "completed":
            raise SimulatorError(f"golden run of {scenario.scenario_id} did not complete ({reason})")
        if not system.processes_ok():
            summary = system.kernel.process_summary()
            raise SimulatorError(f"golden run of {scenario.scenario_id} terminated abnormally: {summary}")
        stats = collect_microarch_stats(system, program) if collect_stats else {}
        return GoldenRunResult(
            scenario=scenario,
            total_instructions=system.total_instructions,
            output=system.combined_output(),
            memory_snapshots=system.memory_snapshot(),
            final_state=system.architectural_state(),
            exit_ok=True,
            wall_time_seconds=elapsed,
            stats=stats,
            per_core_instructions=[core.stats.instructions for core in system.cores],
            load_balance_pct=system.load_balance(),
            syscall_counts=dict(system.kernel.syscall_counts),
            process_names=[p.name for p in system.kernel.processes],
        )
