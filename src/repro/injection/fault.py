"""Fault model: single bit upsets with uniform random target selection.

Following Section 3.2.1 of the paper, the default configuration draws
the injection time, the target register and the target bit from uniform
distributions over the application lifespan and the architectural state
of the simulated cores.  The OS boot is not simulated, so the whole run
is application lifespan.
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass
from typing import Optional, Sequence

from repro.errors import SimulatorError
from repro.isa.arch import ArchSpec, get_arch

#: Target kinds supported by the injector.
TARGET_GPR = "gpr"
TARGET_FPR = "fpr"
TARGET_PC = "pc"
TARGET_MEMORY = "memory"

ALL_TARGET_KINDS = (TARGET_GPR, TARGET_FPR, TARGET_PC, TARGET_MEMORY)


@dataclass(frozen=True)
class FaultDescriptor:
    """A fully specified single-bit upset."""

    fault_id: int
    injection_time: int
    core_id: int
    target_kind: str
    register_index: int
    bit: int
    address: Optional[int] = None
    process_index: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    def target_label(self, arch: ArchSpec | None = None) -> str:
        if self.target_kind == TARGET_PC:
            return "pc"
        if self.target_kind == TARGET_MEMORY:
            return f"mem[{self.address:#x}]"
        if self.target_kind == TARGET_FPR:
            return f"d{self.register_index}"
        if arch is not None:
            return arch.register_names()[self.register_index]
        return f"r{self.register_index}"


class FaultModel:
    """Uniform-random SBU generator.

    Parameters
    ----------
    isa:
        Target architecture name (``armv7``/``armv8``).
    cores:
        Number of cores in the simulated processor.
    seed:
        Seed of the private random generator; campaigns are reproducible
        given (scenario, seed, fault count).
    target_mix:
        Mapping from target kind to relative weight.  The paper's main
        campaigns target the general purpose register file; PC and
        memory targets are available for extension studies.
    """

    def __init__(
        self,
        isa: str,
        cores: int,
        seed: int = 12345,
        target_mix: Optional[dict[str, float]] = None,
        include_pc: bool = True,
    ) -> None:
        self.arch = get_arch(isa)
        self.cores = cores
        self.seed = seed
        if target_mix is None:
            target_mix = {TARGET_GPR: 0.95, TARGET_PC: 0.05} if include_pc else {TARGET_GPR: 1.0}
        for kind in target_mix:
            if kind not in ALL_TARGET_KINDS:
                raise SimulatorError(f"unknown fault target kind {kind!r}")
        if self.arch.num_fpr == 0 and target_mix.get(TARGET_FPR):
            raise SimulatorError(f"{self.arch.name} has no FP register file to target")
        total = sum(target_mix.values())
        if total <= 0:
            raise SimulatorError("fault target mix must have positive total weight")
        self.target_mix = {k: v / total for k, v in target_mix.items()}

    def _pick_kind(self, rng: random.Random) -> str:
        roll = rng.random()
        cumulative = 0.0
        for kind, weight in self.target_mix.items():
            cumulative += weight
            if roll <= cumulative:
                return kind
        return next(iter(self.target_mix))

    def generate(
        self,
        total_instructions: int,
        count: int,
        memory_ranges: Sequence[tuple[int, int]] = (),
        num_processes: int = 1,
    ) -> list[FaultDescriptor]:
        """Generate ``count`` fault descriptors for one scenario.

        ``total_instructions`` is the golden run length; injection times
        are drawn from ``[1, total_instructions - 1]``.
        """
        if total_instructions < 3:
            raise SimulatorError(f"golden run too short ({total_instructions} instructions) to inject faults")
        rng = random.Random(self.seed)
        faults: list[FaultDescriptor] = []
        for fault_id in range(count):
            kind = self._pick_kind(rng)
            time = rng.randint(1, total_instructions - 1)
            core = rng.randrange(self.cores)
            address = None
            register = 0
            if kind == TARGET_GPR:
                register = rng.randrange(self.arch.num_gpr)
                bit = rng.randrange(self.arch.xlen)
            elif kind == TARGET_FPR:
                register = rng.randrange(max(1, self.arch.num_fpr))
                bit = rng.randrange(64 if self.arch.has_hw_float else 32)
            elif kind == TARGET_PC:
                bit = rng.randrange(self.arch.xlen)
            else:  # memory
                if not memory_ranges:
                    raise SimulatorError("memory fault requested but no memory ranges provided")
                base, size = memory_ranges[rng.randrange(len(memory_ranges))]
                address = base + rng.randrange(size)
                bit = rng.randrange(8)
            faults.append(
                FaultDescriptor(
                    fault_id=fault_id,
                    injection_time=time,
                    core_id=core,
                    target_kind=kind,
                    register_index=register,
                    bit=bit,
                    address=address,
                    process_index=rng.randrange(max(1, num_processes)),
                )
            )
        return faults
