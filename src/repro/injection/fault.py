"""Fault model: single bit upsets with uniform random target selection.

Following Section 3.2.1 of the paper, the default configuration draws
the injection time, the target register and the target bit from uniform
distributions over the application lifespan and the architectural state
of the simulated cores.  The OS boot is not simulated, so the whole run
is application lifespan.

Beyond the register file the model covers the paper's extension
dimensions: data-memory targets (drawn from the injectable segment
layout the golden run records: data, heap and thread stacks of every
process) and cache targets (a bit of a live L1-data or L2 line, whose
architectural effect depends on the line's write-back fate).
"""

from __future__ import annotations

import random
from dataclasses import asdict, dataclass, replace
from typing import Optional, Sequence

from repro.errors import SimulatorError
from repro.isa.arch import ArchSpec, get_arch
from repro.memory.hierarchy import CORTEX_A_CACHE_CONFIG

#: Target kinds supported by the injector.
TARGET_GPR = "gpr"
TARGET_FPR = "fpr"
TARGET_PC = "pc"
TARGET_MEMORY = "memory"
TARGET_CACHE = "cache"

ALL_TARGET_KINDS = (TARGET_GPR, TARGET_FPR, TARGET_PC, TARGET_MEMORY, TARGET_CACHE)

#: Cache levels a cache fault can land in.  The L1 instruction cache is
#: excluded: instruction semantics come from the decoded program image,
#: so a corrupted I-cache line has no architectural effect to model.
CACHE_LEVELS = ("l1d", "l2")

#: Line size of every cache in the modelled hierarchy (Section 3.1),
#: taken from the authoritative cache geometry so the bit-draw range
#: cannot drift from the lines the injector actually targets.
CACHE_LINE_BYTES = CORTEX_A_CACHE_CONFIG["l1d"].line_bytes


def normalize_memory_ranges(
    memory_ranges: Sequence, num_processes: int
) -> list[list[tuple[int, int]]]:
    """Normalise ``memory_ranges`` into one ``(base, size)`` list per process.

    Accepts either a flat sequence of ``(base, size[, name])`` tuples
    (applied to every process — the layouts are identical) or a
    per-process sequence of such sequences, as recorded by the golden
    run.
    """
    if not memory_ranges:
        return []
    first = memory_ranges[0]
    if first and isinstance(first[0], int):  # flat: one layout for all processes
        flat = [(int(r[0]), int(r[1])) for r in memory_ranges]
        return [list(flat) for _ in range(max(1, num_processes))]
    return [[(int(r[0]), int(r[1])) for r in ranges] for ranges in memory_ranges]


@dataclass(frozen=True)
class FaultDescriptor:
    """A fully specified single-bit upset.

    ``register_index`` is overloaded per target kind: a register number
    for GPR/FPR targets and a resident-line selector for cache targets
    (the injector resolves it against the lines live at the injection
    point, keeping the choice deterministic without fixing an address
    the cache might not hold).  For cache targets ``bit`` indexes a bit
    within the whole line (0..line_bytes*8-1); for memory targets it
    indexes a bit of the addressed byte.
    """

    fault_id: int
    injection_time: int
    core_id: int
    target_kind: str
    register_index: int
    bit: int
    address: Optional[int] = None
    process_index: int = 0
    cache_level: Optional[str] = None

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultDescriptor":
        """Rebuild a descriptor from :meth:`as_dict` output.

        Extra keys are ignored, so flat injection records (which merge
        result and fault fields into one mapping) deserialise directly.
        """
        address = payload.get("address")
        cache_level = payload.get("cache_level")
        return cls(
            fault_id=int(payload["fault_id"]),
            injection_time=int(payload["injection_time"]),
            core_id=int(payload["core_id"]),
            target_kind=str(payload["target_kind"]),
            register_index=int(payload["register_index"]),
            bit=int(payload["bit"]),
            address=None if address is None else int(address),
            process_index=int(payload.get("process_index", 0)),
            cache_level=None if cache_level is None else str(cache_level),
        )

    def target_label(self, arch: ArchSpec | None = None) -> str:
        if self.target_kind == TARGET_PC:
            return "pc"
        if self.target_kind == TARGET_MEMORY:
            return f"mem[{self.address:#x}]"
        if self.target_kind == TARGET_CACHE:
            return f"{self.cache_level or 'l1d'}[line sel {self.register_index}, bit {self.bit}]"
        if self.target_kind == TARGET_FPR:
            return f"d{self.register_index}"
        if arch is not None:
            return arch.register_names()[self.register_index]
        return f"r{self.register_index}"


class FaultModel:
    """Uniform-random SBU generator.

    Parameters
    ----------
    isa:
        Target architecture name (``armv7``/``armv8``).
    cores:
        Number of cores in the simulated processor.
    seed:
        Seed of the private random generator; campaigns are reproducible
        given (scenario, seed, fault count).
    target_mix:
        Mapping from target kind to relative weight.  The paper's main
        campaigns target the general purpose register file; PC, memory
        and cache targets open the extension dimensions.
    """

    def __init__(
        self,
        isa: str,
        cores: int,
        seed: int = 12345,
        target_mix: Optional[dict[str, float]] = None,
        include_pc: bool = True,
        line_bytes: int = CACHE_LINE_BYTES,
    ) -> None:
        self.arch = get_arch(isa)
        self.cores = cores
        self.seed = seed
        self.line_bytes = line_bytes
        if target_mix is None:
            target_mix = {TARGET_GPR: 0.95, TARGET_PC: 0.05} if include_pc else {TARGET_GPR: 1.0}
        for kind in target_mix:
            if kind not in ALL_TARGET_KINDS:
                raise SimulatorError(f"unknown fault target kind {kind!r}")
        if self.arch.num_fpr == 0 and target_mix.get(TARGET_FPR):
            raise SimulatorError(f"{self.arch.name} has no FP register file to target")
        total = sum(target_mix.values())
        if total <= 0:
            raise SimulatorError("fault target mix must have positive total weight")
        # Zero-weight kinds are dropped: they can never be drawn on purpose,
        # and keeping them would let the float-drift tail fallback of
        # _pick_kind hand out a kind the mix explicitly excludes.
        self.target_mix = {k: v / total for k, v in target_mix.items() if v > 0}

    def _pick_kind(self, rng: random.Random) -> str:
        roll = rng.random()
        cumulative = 0.0
        kind = TARGET_GPR
        for kind, weight in self.target_mix.items():
            cumulative += weight
            if roll <= cumulative:
                return kind
        # Float accumulation can leave the cumulative total fractionally
        # below 1.0; a roll in that sliver belongs to the tail of the
        # distribution, not its head.
        return kind

    def generate(
        self,
        total_instructions: int,
        count: int,
        memory_ranges: Sequence = (),
        num_processes: int = 1,
    ) -> list[FaultDescriptor]:
        """Generate ``count`` fault descriptors for one scenario.

        ``total_instructions`` is the golden run length; injection times
        are drawn from ``[1, total_instructions - 1]``.  ``memory_ranges``
        supplies the injectable memory layout (flat, or one list per
        process; see :func:`normalize_memory_ranges`) and is required
        when the mix contains memory targets.
        """
        if total_instructions < 3:
            raise SimulatorError(f"golden run too short ({total_instructions} instructions) to inject faults")
        per_process = normalize_memory_ranges(memory_ranges, num_processes)
        rng = random.Random(self.seed)
        faults: list[FaultDescriptor] = []
        for fault_id in range(count):
            kind = self._pick_kind(rng)
            time = rng.randint(1, total_instructions - 1)
            core = rng.randrange(self.cores)
            address = None
            register = 0
            cache_level = None
            if kind == TARGET_GPR:
                register = rng.randrange(self.arch.num_gpr)
                bit = rng.randrange(self.arch.xlen)
            elif kind == TARGET_FPR:
                register = rng.randrange(max(1, self.arch.num_fpr))
                bit = rng.randrange(64 if self.arch.has_hw_float else 32)
            elif kind == TARGET_PC:
                bit = rng.randrange(self.arch.xlen)
            elif kind == TARGET_CACHE:
                cache_level = CACHE_LEVELS[rng.randrange(len(CACHE_LEVELS))]
                register = rng.randrange(1 << 20)  # resident-line selector
                bit = rng.randrange(self.line_bytes * 8)
            process = rng.randrange(max(1, num_processes))
            if kind == TARGET_MEMORY:
                # drawn after the process: the address must come from the
                # target process's own injectable layout
                if not per_process:
                    raise SimulatorError("memory fault requested but no memory ranges provided")
                ranges = per_process[process % len(per_process)]
                if not ranges:
                    raise SimulatorError(f"process {process} has no injectable memory ranges")
                base, size = ranges[rng.randrange(len(ranges))]
                address = base + rng.randrange(size)
                bit = rng.randrange(8)
            faults.append(
                FaultDescriptor(
                    fault_id=fault_id,
                    injection_time=time,
                    core_id=core,
                    target_kind=kind,
                    register_index=register,
                    bit=bit,
                    address=address,
                    process_index=process,
                    cache_level=cache_level,
                )
            )
        return faults


class WeightedFaultModel(FaultModel):
    """Importance-weighted SBU generator steered by static analysis.

    Register draws for the ``gpr``/``fpr`` kinds are biased by
    per-register weights — typically the ACE fractions predicted by
    :mod:`repro.staticlint` — so campaigns spend fewer injections
    discovering that dead registers mask faults.  Every other draw
    (kind, time, core, bit, process, address) keeps the base model's
    uniform distribution *and* its exact draw order, so a weighted
    campaign differs from the unweighted one only in the register
    indices.

    This generator is opt-in: unweighted campaigns keep using
    :class:`FaultModel` and their fingerprints are untouched.  Weighted
    campaigns are biased samples — outcome percentages from them are
    not directly comparable to uniform campaigns without reweighting
    (see docs/static_analysis.md).
    """

    def __init__(
        self,
        isa: str,
        cores: int,
        seed: int = 12345,
        target_mix: Optional[dict[str, float]] = None,
        include_pc: bool = True,
        line_bytes: int = CACHE_LINE_BYTES,
        gpr_weights: Optional[Sequence[float]] = None,
        fpr_weights: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__(isa, cores, seed, target_mix, include_pc, line_bytes)
        self.gpr_weights = self._check_weights(gpr_weights, self.arch.num_gpr, "gpr")
        self.fpr_weights = self._check_weights(fpr_weights, self.arch.num_fpr, "fpr")

    @staticmethod
    def _check_weights(weights, count: int, kind: str):
        if weights is None:
            return None
        weights = tuple(float(w) for w in weights)
        if len(weights) != count:
            raise SimulatorError(
                f"{kind} weight vector has {len(weights)} entries, expected {count}"
            )
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise SimulatorError(f"{kind} weights must be non-negative with positive total")
        return weights

    def _weighted_index(self, rng: random.Random, weights: Sequence[float]) -> int:
        roll = rng.random() * sum(weights)
        cumulative = 0.0
        index = len(weights) - 1
        for index, weight in enumerate(weights):
            cumulative += weight
            if roll <= cumulative:
                return index
        return index

    def generate(
        self,
        total_instructions: int,
        count: int,
        memory_ranges: Sequence = (),
        num_processes: int = 1,
    ) -> list[FaultDescriptor]:
        faults = super().generate(total_instructions, count, memory_ranges, num_processes)
        if self.gpr_weights is None and self.fpr_weights is None:
            return faults
        # Re-draw only the register index, from a *separate* stream so
        # the base model's draw sequence stays untouched.
        rng = random.Random(self.seed ^ 0x5EED_ACE5)
        redrawn: list[FaultDescriptor] = []
        for fault in faults:
            if fault.target_kind == TARGET_GPR and self.gpr_weights is not None:
                fault = replace(fault, register_index=self._weighted_index(rng, self.gpr_weights))
            elif fault.target_kind == TARGET_FPR and self.fpr_weights is not None:
                fault = replace(fault, register_index=self._weighted_index(rng, self.fpr_weights))
            redrawn.append(fault)
        return redrawn
