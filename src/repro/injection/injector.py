"""Fault injector: runs one faulty execution and classifies it.

Phase three of the paper's workflow.  A fresh system is built for every
injection and fast-forwarded to the nearest golden checkpoint at or
before the injection time (falling back to simulating from boot when
the golden run recorded no checkpoints), simulated up to the injection
time, the single bit upset is applied to the live architectural state,
and the run continues until normal termination, abnormal termination or
the watchdog budget.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Optional

from repro.checkpoint import nearest_checkpoint, restore_snapshot
from repro.errors import DeadlockError, SimulatorError, WatchdogTimeout
from repro.injection.classify import Classification, Outcome, classify_run
from repro.injection.fault import (
    TARGET_FPR,
    TARGET_GPR,
    TARGET_MEMORY,
    TARGET_PC,
    FaultDescriptor,
)
from repro.injection.golden import GoldenRunResult
from repro.npb.suite import Scenario, build_program, create_system, launch_scenario
from repro.soc.multicore import MulticoreSystem


@dataclass
class InjectionResult:
    """Outcome record of one fault injection."""

    fault: FaultDescriptor
    outcome: str
    detail: str
    executed_instructions: int
    wall_time_seconds: float
    scenario_id: str = ""

    def as_record(self) -> dict:
        record = {
            "scenario_id": self.scenario_id,
            "outcome": self.outcome,
            "detail": self.detail,
            "executed_instructions": self.executed_instructions,
            "wall_time_seconds": round(self.wall_time_seconds, 6),
        }
        record.update(self.fault.as_dict())
        return record


class FaultInjector:
    """Runs fault injections for one scenario against its golden reference."""

    def __init__(
        self,
        scenario: Scenario,
        golden: GoldenRunResult,
        watchdog_multiplier: int = 4,
        model_caches: bool = False,
        use_checkpoints: bool = True,
    ) -> None:
        self.scenario = scenario
        self.golden = golden
        self.watchdog_multiplier = watchdog_multiplier
        self.model_caches = model_caches
        self.use_checkpoints = use_checkpoints
        self.program = build_program(scenario.app, scenario.mode, scenario.isa)
        #: injections fast-forwarded from a checkpoint vs simulated from boot
        self.fast_forwards = 0
        self.boot_replays = 0

    # ------------------------------------------------------------------

    def _build_system(self) -> MulticoreSystem:
        system = create_system(self.scenario, model_caches=self.model_caches)
        launch_scenario(system, self.scenario, self.program)
        return system

    def _system_at(self, injection_time: int) -> MulticoreSystem:
        """A system ready to run up to ``injection_time``.

        Restores the latest golden checkpoint at or before the injection
        point when one exists; otherwise the system boots from zero.
        Both paths produce bit-identical state at the injection point
        because pausing and restoring are schedule-neutral.
        """
        system = self._build_system()
        checkpoint = None
        if self.use_checkpoints:
            checkpoint = nearest_checkpoint(self.golden.checkpoints, injection_time)
        if checkpoint is not None and checkpoint.instruction_count > 0:
            restore_snapshot(checkpoint, system)
            self.fast_forwards += 1
        else:
            self.boot_replays += 1
        return system

    def _apply_fault(self, system: MulticoreSystem, fault: FaultDescriptor) -> None:
        if fault.target_kind == TARGET_MEMORY:
            processes = system.kernel.processes
            process = processes[fault.process_index % len(processes)]
            process.address_space.flip_bit(fault.address, fault.bit)
            return
        core = system.cores[fault.core_id % len(system.cores)]
        if fault.target_kind == TARGET_GPR:
            core.regs.flip_bit(fault.register_index % core.arch.num_gpr, fault.bit)
        elif fault.target_kind == TARGET_FPR:
            core.fregs.flip_bit(fault.register_index % max(1, core.arch.num_fpr), fault.bit)
        elif fault.target_kind == TARGET_PC:
            core.pc = (core.pc ^ (1 << fault.bit)) & core.arch.word_mask
        else:
            raise SimulatorError(f"unknown fault target kind {fault.target_kind!r}")

    def _compare(self, system: MulticoreSystem) -> tuple[bool, bool, bool]:
        output_matches = system.combined_output() == self.golden.output
        memory_matches = system.memory_snapshot() == self.golden.memory_snapshots
        state_matches = system.architectural_state() == self.golden.final_state
        return output_matches, memory_matches, state_matches

    # ------------------------------------------------------------------

    def run_one(self, fault: FaultDescriptor) -> InjectionResult:
        """Execute a single fault injection and classify its outcome."""
        start = time.perf_counter()
        system = self._system_at(fault.injection_time)
        budget = self.golden.watchdog_budget(self.watchdog_multiplier)
        watchdog_expired = False
        deadlocked = False
        detail_prefix = ""
        try:
            reason = system.run(max_instructions=budget, stop_at_instruction=fault.injection_time)
            if reason == "breakpoint":
                self._apply_fault(system, fault)
                system.run(max_instructions=budget)
            else:
                detail_prefix = "completed before injection point; "
        except WatchdogTimeout:
            watchdog_expired = True
        except DeadlockError:
            deadlocked = True
        output_matches, memory_matches, state_matches = self._compare(system)
        killed = system.any_process_killed()
        all_zero = system.processes_ok()
        fault_detail = ""
        if killed:
            kinds = {p.fault_kind for p in system.kernel.processes if p.fault_kind}
            fault_detail = "process killed: " + ", ".join(sorted(kinds))
        classification: Classification = classify_run(
            any_process_killed=killed,
            all_exited_zero=all_zero,
            watchdog_expired=watchdog_expired,
            deadlocked=deadlocked,
            output_matches=output_matches,
            memory_matches=memory_matches,
            state_matches=state_matches,
            fault_detail=fault_detail,
        )
        elapsed = time.perf_counter() - start
        return InjectionResult(
            fault=fault,
            outcome=classification.outcome.value,
            detail=detail_prefix + classification.detail,
            executed_instructions=system.total_instructions,
            wall_time_seconds=elapsed,
            scenario_id=self.scenario.scenario_id,
        )

    def run_many(self, faults: list[FaultDescriptor]) -> list[InjectionResult]:
        return [self.run_one(fault) for fault in faults]
