"""Fault injector: runs one faulty execution and classifies it.

Phase three of the paper's workflow.  A fresh system is built for every
injection and fast-forwarded to the nearest golden checkpoint at or
before the injection point (falling back to simulating from boot when
the golden run recorded no checkpoints), simulated up to the injection
time, the single bit upset is applied to the live state — a register,
the PC, a data-memory byte or a live cache line — and the run continues
until normal termination, abnormal termination or the watchdog budget.

Cache faults need a cache-modelling system: those injections enable the
cache hierarchy regardless of the injector-wide ``model_caches`` flag
and restore the golden run's cache residency from the checkpoint, so
that the targeted line population matches a boot replay bit for bit.
The corrupted line's fate (consumed on the next hit, written back with
a dirty eviction, or silently dropped with a clean one) decides whether
the flip ever becomes architectural — see ``repro.memory.cache``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.checkpoint import capture_snapshot, nearest_checkpoint, restore_snapshot
from repro.errors import DeadlockError, SimulatorError, WatchdogTimeout
from repro.hardening.schemes import recovery_retries
from repro.injection.classify import NOT_INJECTED, Classification, classify_run
from repro.injection.fault import (
    TARGET_CACHE,
    TARGET_FPR,
    TARGET_GPR,
    TARGET_MEMORY,
    TARGET_PC,
    FaultDescriptor,
)
from repro.injection.golden import GoldenRunResult
from repro.npb.suite import Scenario, build_program, create_system, launch_scenario
from repro.soc.multicore import MulticoreSystem


@dataclass
class InjectionResult:
    """Outcome record of one fault injection."""

    fault: FaultDescriptor
    outcome: str
    detail: str
    executed_instructions: int
    wall_time_seconds: float
    scenario_id: str = ""
    #: Recovery metadata, present only for injections run under a
    #: ``rec`` scheme: ``{"rollbacks": int, "reexecuted_instructions":
    #: int, "escalated": bool}``.  ``None`` keeps detect-and-die and
    #: unhardened records (and their serialized form) exactly as before.
    recovery: Optional[dict] = None

    def as_record(self) -> dict:
        record = {
            "scenario_id": self.scenario_id,
            "outcome": self.outcome,
            "detail": self.detail,
            "executed_instructions": self.executed_instructions,
            "wall_time_seconds": round(self.wall_time_seconds, 6),
        }
        if self.recovery is not None:
            record["recovery_rollbacks"] = int(self.recovery.get("rollbacks", 0))
            record["recovery_reexecuted_instructions"] = int(
                self.recovery.get("reexecuted_instructions", 0)
            )
            record["recovery_escalated"] = bool(self.recovery.get("escalated", False))
        record.update(self.fault.as_dict())
        return record

    @classmethod
    def from_record(cls, record: dict) -> "InjectionResult":
        """Rebuild a result from :meth:`as_record` output.

        The flat record merges result and fault fields;
        :meth:`FaultDescriptor.from_dict` picks out the fault's share.
        Records written before the recovery axis existed carry no
        ``recovery_*`` keys and come back with ``recovery=None``.
        """
        recovery = None
        if "recovery_rollbacks" in record:
            recovery = {
                "rollbacks": int(record["recovery_rollbacks"]),
                "reexecuted_instructions": int(
                    record.get("recovery_reexecuted_instructions", 0)
                ),
                "escalated": bool(record.get("recovery_escalated", False)),
            }
        return cls(
            fault=FaultDescriptor.from_dict(record),
            outcome=str(record["outcome"]),
            detail=str(record.get("detail", "")),
            executed_instructions=int(record["executed_instructions"]),
            wall_time_seconds=float(record.get("wall_time_seconds", 0.0)),
            scenario_id=str(record.get("scenario_id", "")),
            recovery=recovery,
        )


class FaultInjector:
    """Runs fault injections for one scenario against its golden reference."""

    def __init__(
        self,
        scenario: Scenario,
        golden: GoldenRunResult,
        watchdog_multiplier: int = 4,
        model_caches: bool = False,
        use_checkpoints: bool = True,
    ) -> None:
        self.scenario = scenario
        self.golden = golden
        self.watchdog_multiplier = watchdog_multiplier
        self.model_caches = model_caches
        self.use_checkpoints = use_checkpoints
        self.program = build_program(scenario.app, scenario.mode, scenario.isa, scenario.hardening)
        #: bounded rollback attempts of the scenario's recovery policy
        #: (``None`` for detect-and-die and unhardened schemes)
        self.recovery_retries = recovery_retries(scenario.hardening)
        #: injections fast-forwarded from a checkpoint vs simulated from boot
        self.fast_forwards = 0
        self.boot_replays = 0

    # ------------------------------------------------------------------

    def _build_system(self, with_caches: bool = False) -> MulticoreSystem:
        system = create_system(self.scenario, model_caches=self.model_caches or with_caches)
        launch_scenario(system, self.scenario, self.program)
        if self.recovery_retries is not None:
            # A hardening detection surfaces as an ``"ft_detected"`` run
            # stop for the rollback loop instead of coasting to the
            # run's fail-stop end.
            system.kernel.recovery_mode = True
        return system

    def _system_at(self, injection_time: int, with_caches: bool = False) -> MulticoreSystem:
        """A system ready to run up to ``injection_time``.

        Restores the latest golden checkpoint at or before the injection
        point when one exists; otherwise the system boots from zero.
        Both paths produce bit-identical state at the injection point
        because pausing and restoring are schedule-neutral.  A system
        that models caches only restores from checkpoints that captured
        cache state — otherwise the restored cache residency (empty)
        would diverge from a boot replay.
        """
        system = self._build_system(with_caches=with_caches)
        checkpoint = None
        if self.use_checkpoints:
            checkpoint = nearest_checkpoint(self.golden.checkpoints, injection_time)
            if checkpoint is not None and system.model_caches and not checkpoint.model_caches:
                checkpoint = None
        if checkpoint is not None and checkpoint.instruction_count > 0:
            restore_snapshot(checkpoint, system)
            self.fast_forwards += 1
        else:
            self.boot_replays += 1
        return system

    def _apply_fault(self, system: MulticoreSystem, fault: FaultDescriptor) -> str:
        """Apply ``fault`` to the live system; returns a detail note ("" usually)."""
        if fault.target_kind == TARGET_MEMORY:
            processes = system.kernel.processes
            process = processes[fault.process_index % len(processes)]
            space = process.address_space
            if space.find_segment(fault.address) is None:
                # The target segment (a late-mapped thread stack) does not
                # exist yet at this injection point; the flipped DRAM bit
                # is outside the process image and cannot affect it.
                return "memory target unmapped at injection point; "
            space.flip_bit(fault.address, fault.bit)
            return ""
        if fault.target_kind == TARGET_CACHE:
            return self._apply_cache_fault(system, fault)
        core = system.cores[fault.core_id % len(system.cores)]
        if fault.target_kind == TARGET_GPR:
            core.regs.flip_bit(fault.register_index % core.arch.num_gpr, fault.bit)
        elif fault.target_kind == TARGET_FPR:
            if core.arch.num_fpr == 0:
                raise SimulatorError(f"{core.arch.name} has no FP register file to target")
            core.fregs.flip_bit(fault.register_index % core.arch.num_fpr, fault.bit)
        elif fault.target_kind == TARGET_PC:
            core.pc = (core.pc ^ (1 << fault.bit)) & core.arch.word_mask
        else:
            raise SimulatorError(f"unknown fault target kind {fault.target_kind!r}")
        # Decode-invalidation barrier for the block engine.  Its decoded
        # blocks specialize on instruction encodings only — never on
        # register, flag or memory values — so flipped state cannot make
        # a cached block stale; the explicit (cheap) invalidation keeps
        # that contract auditable at the injection site, and a corrupted
        # PC is re-validated by the engine's per-block fetch checks.
        core.invalidate_decode()
        return ""

    def _target_cache(self, system: MulticoreSystem, fault: FaultDescriptor):
        level = fault.cache_level or "l1d"
        core = system.cores[fault.core_id % len(system.cores)]
        if level == "l2":
            cache = system.shared_l2 if system.model_caches else None
        elif level == "l1d":
            cache = core.caches.l1d if core.model_caches else None
        else:
            raise SimulatorError(f"unknown cache level {level!r}")
        if cache is None:
            raise SimulatorError("cache fault requested but the system does not model caches")
        return cache

    def _install_cache_sink(self, system: MulticoreSystem, fault: FaultDescriptor) -> None:
        """Attach the architectural-commit sink for ``fault`` to ``system``.

        Pending line corruption travels inside cache snapshots, but the
        sink is a live closure over one system's cache and address
        space — it must be re-attached whenever the run continues on a
        freshly built system (rollback restores during recovery).
        """
        cache = self._target_cache(system, fault)
        space = system.kernel.processes[
            fault.process_index % len(system.kernel.processes)
        ].address_space

        def sink(line: int, byte_offset: int, bit: int) -> None:
            # The corrupted copy became architecturally visible: commit the
            # flip to the backing memory of the chosen process.  Radiation
            # does not respect page protections, but a line outside the
            # process image (or a read-only text line, whose semantics come
            # from the decoded program) has nothing architectural to corrupt.
            address = cache.line_base(line) + byte_offset
            segment = space.find_segment(address)
            if segment is None or not segment.perms.write:
                return
            space.flip_bit(address, bit)

        cache.fault_sink = sink

    def _apply_cache_fault(self, system: MulticoreSystem, fault: FaultDescriptor) -> str:
        level = fault.cache_level or "l1d"
        cache = self._target_cache(system, fault)
        target = cache.inject_resident_fault(fault.register_index, fault.bit)
        if target is None:
            return f"{level} holds no resident line; fault landed in an invalid entry; "
        self._install_cache_sink(system, fault)
        return ""

    def _compare(self, system: MulticoreSystem) -> tuple[bool, bool, bool]:
        output_matches = system.combined_output() == self.golden.output
        memory_matches = system.memory_snapshot() == self.golden.memory_snapshots
        state_matches = system.architectural_state() == self.golden.final_state
        return output_matches, memory_matches, state_matches

    # ------------------------------------------------------------------
    # checkpoint-rollback recovery (``rec`` schemes)
    # ------------------------------------------------------------------

    def _run_with_recovery(
        self,
        system: MulticoreSystem,
        fault: FaultDescriptor,
        budget: int,
        with_caches: bool,
    ) -> tuple[MulticoreSystem, dict, bool, bool]:
        """Forward-run ``system`` under the detect→rollback→re-execute policy.

        ``system`` sits at the injection point with the fault freshly
        applied.  The run proceeds under the *same absolute* watchdog
        budget as a detect-and-die run — rollbacks rewind the
        instruction counter, so re-executed spans are not double-charged
        and the Hang semantics are unchanged; bounded retries are what
        keep a persistently re-detecting run finite.

        Rollback candidates are (a) the golden run's checkpoints at or
        before the injection point — state from before the upset is
        fault-free — and (b) snapshots the policy captures of the
        *faulty* run itself at the golden checkpoint schedule beyond the
        injection point, latent corruption included (a real system
        cannot checkpoint cleaner state than it has).  A detection rolls
        back to the latest candidate at or before the detection point;
        a re-detection walks strictly below the previous restore point
        to escape corruption that predates the nearest snapshot, with
        boot (instruction 0) as the final implicit candidate.  When the
        retry budget is exhausted — or nothing earlier remains — the
        detection escalates to the fail-stop ``Detected`` terminal
        state.

        Returns ``(final_system, recovery_meta, watchdog_expired,
        deadlocked)``.
        """
        candidates: list = []
        schedule: list[int] = []
        if self.use_checkpoints:
            for checkpoint in self.golden.checkpoints:
                if checkpoint.instruction_count > fault.injection_time:
                    break
                if checkpoint.instruction_count == 0:
                    continue  # boot is the implicit final candidate
                if system.model_caches and not checkpoint.model_caches:
                    continue
                candidates.append(checkpoint)
            schedule = [
                count
                for count in self.golden.checkpoint_instructions()
                if count > fault.injection_time
            ]
        rollbacks = 0
        reexecuted = 0
        escalated = False
        watchdog_expired = False
        deadlocked = False
        floor: Optional[int] = None

        def forward(current: MulticoreSystem, capture: bool) -> str:
            # Run to completion or detection; the first pass additionally
            # pauses at the checkpoint schedule to snapshot the live run.
            # Pausing is schedule-neutral, so the captured-and-resumed
            # execution is bit-identical to an uninterrupted one.
            nonlocal watchdog_expired, deadlocked
            index = 0
            while True:
                stop = None
                if capture and schedule:
                    while index < len(schedule) and schedule[index] <= current.total_instructions:
                        index += 1
                    if index < len(schedule):
                        stop = schedule[index]
                try:
                    reason = current.run(max_instructions=budget, stop_at_instruction=stop)
                except WatchdogTimeout:
                    watchdog_expired = True
                    return "hang"
                except DeadlockError:
                    deadlocked = True
                    return "hang"
                if reason == "breakpoint":
                    candidates.append(capture_snapshot(current))
                    continue
                return reason

        outcome = forward(system, capture=True)
        while outcome == "ft_detected":
            detected_at = system.kernel.detection_event.get(
                "instruction", system.total_instructions
            )
            if rollbacks >= self.recovery_retries:
                escalated = True
                break
            limit = detected_at if floor is None else floor - 1
            snapshot = None
            for candidate in candidates:  # ascending instruction order
                if candidate.instruction_count <= limit:
                    snapshot = candidate
                else:
                    break
            restore_at = snapshot.instruction_count if snapshot is not None else 0
            if floor is not None and restore_at >= floor:
                escalated = True  # nothing strictly earlier remains
                break
            rollbacks += 1
            reexecuted += detected_at - restore_at
            floor = restore_at
            system = self._build_system(with_caches=with_caches)
            if snapshot is not None:
                restore_snapshot(snapshot, system)
            if fault.target_kind == TARGET_CACHE:
                # The snapshot carries any still-pending corrupted line;
                # the commit sink is a live closure and must be
                # re-attached to the fresh system's caches.
                self._install_cache_sink(system, fault)
            # No re-capture on re-execution: the restore floor only ever
            # moves down and the simulator is deterministic, so the
            # first pass's snapshots remain the complete candidate set.
            outcome = forward(system, capture=False)
        recovery = {
            "rollbacks": rollbacks,
            "reexecuted_instructions": reexecuted,
            "escalated": escalated,
        }
        return system, recovery, watchdog_expired, deadlocked

    # ------------------------------------------------------------------

    def run_one(self, fault: FaultDescriptor) -> InjectionResult:
        """Execute a single fault injection and classify its outcome."""
        start = time.perf_counter()
        with_caches = fault.target_kind == TARGET_CACHE
        system = self._system_at(fault.injection_time, with_caches=with_caches)
        budget = self.golden.watchdog_budget(self.watchdog_multiplier)
        watchdog_expired = False
        deadlocked = False
        injected = False
        detail_prefix = ""
        recovery: Optional[dict] = None
        try:
            reason = system.run(max_instructions=budget, stop_at_instruction=fault.injection_time)
            if reason == "breakpoint":
                detail_prefix = self._apply_fault(system, fault)
                injected = True
                if self.recovery_retries is None:
                    system.run(max_instructions=budget)
                else:
                    system, recovery, watchdog_expired, deadlocked = self._run_with_recovery(
                        system, fault, budget, with_caches
                    )
        except WatchdogTimeout:
            watchdog_expired = True
        except DeadlockError:
            deadlocked = True
        elapsed = time.perf_counter() - start
        if not injected and (watchdog_expired or deadlocked):
            # The fault-free prefix never reached the injection point: the
            # golden run completed within this budget, so this is a broken
            # configuration (pathologically small watchdog budget), not a
            # fault outcome — surface it instead of misfiling the run.
            what = "watchdog expired" if watchdog_expired else "deadlock"
            raise SimulatorError(
                f"{what} at {system.total_instructions} instructions before the "
                f"injection point of fault {fault.fault_id} "
                f"(t={fault.injection_time}, budget={budget})"
            )
        if not injected:
            # The workload finished before the injection point was reached:
            # no bit was flipped, so the run says nothing about fault
            # behaviour.  Report it explicitly instead of letting it pose
            # as a (masking-rate-inflating) Vanished outcome.
            return InjectionResult(
                fault=fault,
                outcome=NOT_INJECTED,
                detail="completed before injection point; fault not applied",
                executed_instructions=system.total_instructions,
                wall_time_seconds=elapsed,
                scenario_id=self.scenario.scenario_id,
            )
        output_matches, memory_matches, state_matches = self._compare(system)
        killed = system.any_process_killed()
        all_zero = system.processes_ok()
        # The hardening trap kills the process with the distinct
        # ``ft_detected`` kind; it must classify as Detected, not UT.
        detected = any(p.fault_kind == "ft_detected" for p in system.kernel.processes)
        fault_detail = ""
        if killed:
            kinds = {p.fault_kind for p in system.kernel.processes if p.fault_kind}
            fault_detail = "process killed: " + ", ".join(sorted(kinds))
        classification: Classification = classify_run(
            any_process_killed=killed,
            all_exited_zero=all_zero,
            watchdog_expired=watchdog_expired,
            deadlocked=deadlocked,
            output_matches=output_matches,
            memory_matches=memory_matches,
            state_matches=state_matches,
            fault_detail=fault_detail,
            fault_detected=detected,
            recovery_rollbacks=recovery["rollbacks"] if recovery else 0,
        )
        return InjectionResult(
            fault=fault,
            outcome=classification.outcome.value,
            detail=detail_prefix + classification.detail,
            executed_instructions=system.total_instructions,
            wall_time_seconds=time.perf_counter() - start,
            scenario_id=self.scenario.scenario_id,
            recovery=recovery,
        )

    def run_many(self, faults: list[FaultDescriptor]) -> list[InjectionResult]:
        return [self.run_one(fault) for fault in faults]
