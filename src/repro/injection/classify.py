"""Fault outcome classification (Cho et al., DAC 2013).

The five categories of Section 3.2.2:

* **Vanished** — no fault traces are left.
* **ONA** (Output Not Affected) — the resulting memory is not modified,
  but one or more remaining bits of the architectural state are wrong.
* **OMM** (Output MisMatch) — the application terminates without an
  error indication, but the resulting memory (or output) is affected.
* **UT** (Unexpected Termination) — abnormal termination with an error
  indication (segmentation fault, abort, non-zero exit code).
* **Hang** — the application does not finish and needs preemptive
  removal (watchdog expiry or deadlock).

Software-hardened binaries (see :mod:`repro.hardening`) add a sixth
category:

* **Detected** — the binary's own redundancy check (duplicate compare
  or control-flow signature) caught the fault and the run terminated
  through the ``__ft_fault_detected`` trap.  Detected is reported
  alongside the five Cho categories and is never folded into UT: a
  detected error is the hardening scheme *working*, an unexpected
  termination is it failing.

Recovery schemes (``dwc+rec`` and friends, see
:mod:`repro.hardening.schemes`) add a seventh:

* **Recovered** — a hardening check fired, the injector rolled the run
  back to a checkpoint and re-execution completed reproducing the
  golden output and memory image.  Recovered requires golden-output
  verification: a rolled-back run that completes but silently diverges
  is an OMM, one that crashes is a UT, one that never finishes is a
  Hang, and one whose detections outlast the retry budget escalates to
  fail-stop Detected.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Outcome(Enum):
    VANISHED = "Vanished"
    ONA = "ONA"
    OMM = "OMM"
    UT = "UT"
    HANG = "Hang"
    DETECTED = "Detected"
    RECOVERED = "Recovered"


#: Plot/report order used by the paper's figures (the five Cho
#: categories; unhardened campaigns never produce anything else).
OUTCOME_ORDER = [Outcome.VANISHED, Outcome.ONA, Outcome.OMM, Outcome.UT, Outcome.HANG]

#: Full report order: the paper's five categories plus Detected, the
#: outcome only software-hardened binaries can produce.
REPORT_OUTCOME_ORDER = OUTCOME_ORDER + [Outcome.DETECTED]

#: Report order for recovery campaigns: Recovered is appended *after*
#: the detect-and-die order so that fixed-count reports of non-recovery
#: schemes keep their exact historical key set (and byte-identical
#: serialized payloads).  :func:`empty_outcome_counts` deliberately
#: excludes Recovered for the same reason — recovery-scheme reports
#: seed the zero entry themselves (see ``injection.campaign``).
RECOVERY_OUTCOME_ORDER = REPORT_OUTCOME_ORDER + [Outcome.RECOVERED]

#: Pseudo-outcome for runs that terminated before their injection point:
#: the fault was never applied, so the run carries no information about
#: fault behaviour and is excluded from the outcome percentages (it is
#: reported separately instead of silently inflating Vanished).
NOT_INJECTED = "NotInjected"


@dataclass
class Classification:
    outcome: Outcome
    detail: str


def classify_run(
    *,
    any_process_killed: bool,
    all_exited_zero: bool,
    watchdog_expired: bool,
    deadlocked: bool,
    output_matches: bool,
    memory_matches: bool,
    state_matches: bool,
    fault_detail: str = "",
    fault_detected: bool = False,
    recovery_rollbacks: int = 0,
) -> Classification:
    """Classify one faulty run against its golden reference.

    The precedence follows the paper's semantics: an abnormal
    termination (UT) dominates, a run that never finishes is a Hang,
    then memory/output corruption (OMM), then latent architectural
    state corruption (ONA), and finally Vanished.  ``fault_detected``
    (the hardening trap fired) dominates everything: the kill that
    delivers the trap must not masquerade as UT, and ranks deadlocking
    after a peer's detection stop are part of the detected outcome.

    ``recovery_rollbacks`` counts checkpoint rollbacks the injector
    performed before this final state.  Recovered is claimed only below
    OMM: a rolled-back run must *reproduce the golden output and
    memory image* to count as recovered — silent divergence stays OMM,
    a crash stays UT, a hang stays Hang, and a detection that survives
    the retry budget arrives here with ``fault_detected`` still set
    (escalated fail-stop Detected).
    """
    if fault_detected:
        detail = fault_detail or "software hardening check detected the fault"
        if recovery_rollbacks > 0:
            detail += f"; detection persisted through {recovery_rollbacks} rollback(s)"
        return Classification(Outcome.DETECTED, detail)
    if any_process_killed:
        return Classification(Outcome.UT, fault_detail or "process killed by exception")
    if watchdog_expired:
        return Classification(Outcome.HANG, "instruction budget exhausted")
    if deadlocked:
        return Classification(Outcome.HANG, "all remaining threads blocked")
    if not all_exited_zero:
        return Classification(Outcome.UT, "non-zero exit code")
    if not output_matches or not memory_matches:
        what = []
        if not output_matches:
            what.append("output")
        if not memory_matches:
            what.append("memory")
        detail = f"{' and '.join(what)} differ from golden run"
        if recovery_rollbacks > 0:
            detail += f" (silent divergence after {recovery_rollbacks} rollback(s))"
        return Classification(Outcome.OMM, detail)
    if recovery_rollbacks > 0:
        detail = f"rolled back {recovery_rollbacks} time(s); golden output reproduced"
        if not state_matches:
            detail += " (latent architectural state divergence)"
        return Classification(Outcome.RECOVERED, detail)
    if not state_matches:
        return Classification(Outcome.ONA, "architectural state differs from golden run")
    return Classification(Outcome.VANISHED, "no visible effect")


def empty_outcome_counts() -> dict[str, int]:
    return {outcome.value: 0 for outcome in REPORT_OUTCOME_ORDER}


def detection_rate(counts: dict[str, int]) -> float:
    """Share of injected faults the hardened binary detected (percent)."""
    total = sum(value for key, value in counts.items() if key != NOT_INJECTED)
    if total == 0:
        return 0.0
    return 100.0 * counts.get(Outcome.DETECTED.value, 0) / total


def recovery_rate(counts: dict[str, int]) -> float:
    """Share of injected faults the rollback policy recovered (percent).

    The availability counterpart of :func:`detection_rate`: of every
    injected fault, how many ended with the golden output reproduced
    after at least one rollback.  Zero for detect-and-die schemes and
    for legacy count dicts that predate the Recovered outcome.
    """
    total = sum(value for key, value in counts.items() if key != NOT_INJECTED)
    if total == 0:
        return 0.0
    return 100.0 * counts.get(Outcome.RECOVERED.value, 0) / total


def outcome_percentages(counts: dict[str, int]) -> dict[str, float]:
    """Per-category percentages over the *injected* runs.

    Not-injected runs carry no fault-behaviour information and are
    excluded from both the numerator set and the denominator.
    """
    observed = {key: value for key, value in counts.items() if key != NOT_INJECTED}
    total = sum(observed.values())
    if total == 0:
        return {key: 0.0 for key in observed}
    return {key: 100.0 * value / total for key, value in observed.items()}


def masking_rate(counts: dict[str, int]) -> float:
    """Executions without any error: Vanished + ONA share (percent).

    The paper's "masking rate" counts runs whose output is unaffected.
    Not-injected runs are excluded from the denominator.
    """
    total = sum(value for key, value in counts.items() if key != NOT_INJECTED)
    if total == 0:
        return 0.0
    ok = counts.get(Outcome.VANISHED.value, 0) + counts.get(Outcome.ONA.value, 0)
    return 100.0 * ok / total


def mismatch(counts_a: dict[str, float], counts_b: dict[str, float]) -> dict[str, float]:
    """Per-category difference used by Figures 2c and 3c (A minus B).

    Keys are sorted so the result's iteration order (and anything
    rendered from it) is independent of string hashing.
    """
    return {
        key: counts_a.get(key, 0.0) - counts_b.get(key, 0.0)
        for key in sorted(set(counts_a) | set(counts_b))
    }


def total_mismatch(counts_a: dict[str, float], counts_b: dict[str, float]) -> float:
    """Sum of absolute per-category differences (the paper's mismatch metric)."""
    diffs = mismatch(counts_a, counts_b)
    return sum(abs(value) for value in diffs.values())
