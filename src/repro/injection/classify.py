"""Fault outcome classification (Cho et al., DAC 2013).

The five categories of Section 3.2.2:

* **Vanished** — no fault traces are left.
* **ONA** (Output Not Affected) — the resulting memory is not modified,
  but one or more remaining bits of the architectural state are wrong.
* **OMM** (Output MisMatch) — the application terminates without an
  error indication, but the resulting memory (or output) is affected.
* **UT** (Unexpected Termination) — abnormal termination with an error
  indication (segmentation fault, abort, non-zero exit code).
* **Hang** — the application does not finish and needs preemptive
  removal (watchdog expiry or deadlock).

Software-hardened binaries (see :mod:`repro.hardening`) add a sixth
category:

* **Detected** — the binary's own redundancy check (duplicate compare
  or control-flow signature) caught the fault and the run terminated
  through the ``__ft_fault_detected`` trap.  Detected is reported
  alongside the five Cho categories and is never folded into UT: a
  detected error is the hardening scheme *working*, an unexpected
  termination is it failing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Outcome(Enum):
    VANISHED = "Vanished"
    ONA = "ONA"
    OMM = "OMM"
    UT = "UT"
    HANG = "Hang"
    DETECTED = "Detected"


#: Plot/report order used by the paper's figures (the five Cho
#: categories; unhardened campaigns never produce anything else).
OUTCOME_ORDER = [Outcome.VANISHED, Outcome.ONA, Outcome.OMM, Outcome.UT, Outcome.HANG]

#: Full report order: the paper's five categories plus Detected, the
#: outcome only software-hardened binaries can produce.
REPORT_OUTCOME_ORDER = OUTCOME_ORDER + [Outcome.DETECTED]

#: Pseudo-outcome for runs that terminated before their injection point:
#: the fault was never applied, so the run carries no information about
#: fault behaviour and is excluded from the outcome percentages (it is
#: reported separately instead of silently inflating Vanished).
NOT_INJECTED = "NotInjected"


@dataclass
class Classification:
    outcome: Outcome
    detail: str


def classify_run(
    *,
    any_process_killed: bool,
    all_exited_zero: bool,
    watchdog_expired: bool,
    deadlocked: bool,
    output_matches: bool,
    memory_matches: bool,
    state_matches: bool,
    fault_detail: str = "",
    fault_detected: bool = False,
) -> Classification:
    """Classify one faulty run against its golden reference.

    The precedence follows the paper's semantics: an abnormal
    termination (UT) dominates, a run that never finishes is a Hang,
    then memory/output corruption (OMM), then latent architectural
    state corruption (ONA), and finally Vanished.  ``fault_detected``
    (the hardening trap fired) dominates everything: the kill that
    delivers the trap must not masquerade as UT, and ranks deadlocking
    after a peer's detection stop are part of the detected outcome.
    """
    if fault_detected:
        return Classification(
            Outcome.DETECTED, fault_detail or "software hardening check detected the fault"
        )
    if any_process_killed:
        return Classification(Outcome.UT, fault_detail or "process killed by exception")
    if watchdog_expired:
        return Classification(Outcome.HANG, "instruction budget exhausted")
    if deadlocked:
        return Classification(Outcome.HANG, "all remaining threads blocked")
    if not all_exited_zero:
        return Classification(Outcome.UT, "non-zero exit code")
    if not output_matches or not memory_matches:
        what = []
        if not output_matches:
            what.append("output")
        if not memory_matches:
            what.append("memory")
        return Classification(Outcome.OMM, f"{' and '.join(what)} differ from golden run")
    if not state_matches:
        return Classification(Outcome.ONA, "architectural state differs from golden run")
    return Classification(Outcome.VANISHED, "no visible effect")


def empty_outcome_counts() -> dict[str, int]:
    return {outcome.value: 0 for outcome in REPORT_OUTCOME_ORDER}


def detection_rate(counts: dict[str, int]) -> float:
    """Share of injected faults the hardened binary detected (percent)."""
    total = sum(value for key, value in counts.items() if key != NOT_INJECTED)
    if total == 0:
        return 0.0
    return 100.0 * counts.get(Outcome.DETECTED.value, 0) / total


def outcome_percentages(counts: dict[str, int]) -> dict[str, float]:
    """Per-category percentages over the *injected* runs.

    Not-injected runs carry no fault-behaviour information and are
    excluded from both the numerator set and the denominator.
    """
    observed = {key: value for key, value in counts.items() if key != NOT_INJECTED}
    total = sum(observed.values())
    if total == 0:
        return {key: 0.0 for key in observed}
    return {key: 100.0 * value / total for key, value in observed.items()}


def masking_rate(counts: dict[str, int]) -> float:
    """Executions without any error: Vanished + ONA share (percent).

    The paper's "masking rate" counts runs whose output is unaffected.
    Not-injected runs are excluded from the denominator.
    """
    total = sum(value for key, value in counts.items() if key != NOT_INJECTED)
    if total == 0:
        return 0.0
    ok = counts.get(Outcome.VANISHED.value, 0) + counts.get(Outcome.ONA.value, 0)
    return 100.0 * ok / total


def mismatch(counts_a: dict[str, float], counts_b: dict[str, float]) -> dict[str, float]:
    """Per-category difference used by Figures 2c and 3c (A minus B).

    Keys are sorted so the result's iteration order (and anything
    rendered from it) is independent of string hashing.
    """
    return {
        key: counts_a.get(key, 0.0) - counts_b.get(key, 0.0)
        for key in sorted(set(counts_a) | set(counts_b))
    }


def total_mismatch(counts_a: dict[str, float], counts_b: dict[str, float]) -> float:
    """Sum of absolute per-category differences (the paper's mismatch metric)."""
    diffs = mismatch(counts_a, counts_b)
    return sum(abs(value) for value in diffs.values())
