"""Exception hierarchy shared across the simulator stack.

Guest-visible failures (memory protection violations, undefined
instruction traps, guest aborts) all derive from :class:`GuestFault`
so that the kernel can convert them into an abnormal process
termination, which the fault classifier then records as an Unexpected
Termination (UT).  Host-side configuration or usage errors derive from
:class:`SimulatorError` and are never swallowed.
"""

from __future__ import annotations


class SimulatorError(Exception):
    """Host-side error: bad configuration, unsupported operation, bug."""


class LinkError(SimulatorError):
    """Raised when the linker cannot resolve a symbol or label."""


class CompileError(SimulatorError):
    """Raised by the MiniC front end or code generator on invalid input."""


class GuestFault(Exception):
    """Base class for faults raised by guest execution.

    These correspond to processor exceptions that the (mini) OS turns
    into an abnormal program termination.
    """

    #: short name recorded in injection reports
    kind = "fault"

    def __init__(self, message: str, address: int | None = None, core_id: int | None = None):
        super().__init__(message)
        self.address = address
        self.core_id = core_id


class MemoryFault(GuestFault):
    """Access to an unmapped address or permission violation (SIGSEGV)."""

    kind = "segfault"


class AlignmentFault(GuestFault):
    """Misaligned data or instruction fetch access (SIGBUS)."""

    kind = "alignment"


class InstructionFault(GuestFault):
    """Instruction fetch outside the text segment or undefined opcode (SIGILL)."""

    kind = "illegal-instruction"


class ArithmeticFault(GuestFault):
    """Integer division by zero or similar arithmetic trap (SIGFPE)."""

    kind = "arithmetic"


class GuestAbort(GuestFault):
    """The guest program aborted itself (failed assertion, abort())."""

    kind = "abort"


class WatchdogTimeout(Exception):
    """The simulation exceeded its instruction budget (classified as Hang)."""

    def __init__(self, message: str, executed: int = 0):
        super().__init__(message)
        self.executed = executed


class DeadlockError(Exception):
    """All runnable threads are blocked and no progress is possible.

    This is classified as a Hang: the paper notes that MPI is "more
    prone to deadlocks due to failed communication".
    """
