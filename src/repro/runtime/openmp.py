"""OpenMP-like fork/join runtime (guest code).

The runtime mirrors how OpenMP implementations execute ``parallel for``
regions: a pool of worker threads is forked once, each parallel region
hands every worker a contiguous chunk of the iteration space and the
master joins the workers at an implicit barrier.  Workers sleep on a
kernel semaphore between regions, so a sub-utilised core idles exactly
as the paper describes for OpenMP's fork/join approach.

Guest API (MiniC):

* ``omp_init(nthreads)`` — create the worker pool.
* ``omp_parallel_for(fn, start, end)`` — run ``fn(lo, hi, worker_id)``
  over ``[start, end)`` split across the pool; returns when all chunks
  are done.
* ``omp_shutdown()`` — terminate and join the worker pool.

The worker function receives its worker id so reductions can be
implemented with per-worker partial arrays, as in real OpenMP codes.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import (
    ExprStmt,
    Function,
    FuncAddr,
    GlobalVar,
    If,
    Module,
    Return,
    While,
    assign,
    call,
    var,
)

INT = ast.INT
VOID = ast.VOID

#: Semaphore identifiers used by the runtime (per process).
WORK_SEM = 101
DONE_SEM = 102

#: Maximum worker pool size supported by the runtime.
MAX_THREADS = 16


def _chunk_bounds(statements: list, id_var: str = "wid") -> None:
    """Append statements computing the chunk [lo, hi) for one worker."""
    statements.extend(
        [
            assign("span", ast.sub(ast.load("_omp_end", ast.const(0)), ast.load("_omp_start", ast.const(0)))),
            assign("chunk", ast.div(ast.add(var("span"), ast.sub(ast.load("_omp_nthreads", ast.const(0)), ast.const(1))),
                                    ast.load("_omp_nthreads", ast.const(0)))),
            assign("lo", ast.add(ast.load("_omp_start", ast.const(0)), ast.mul(var(id_var), var("chunk")))),
            assign("hi", ast.add(var("lo"), var("chunk"))),
            If(ast.gt(var("hi"), ast.load("_omp_end", ast.const(0))), [assign("hi", ast.load("_omp_end", ast.const(0)))]),
        ]
    )


def _omp_init() -> Function:
    return Function(
        name="omp_init",
        params=[("nthreads", INT)],
        locals=[("i", INT), ("tid", INT)],
        body=[
            If(ast.lt(var("nthreads"), ast.const(1)), [assign("nthreads", ast.const(1))]),
            If(ast.gt(var("nthreads"), ast.const(MAX_THREADS)), [assign("nthreads", ast.const(MAX_THREADS))]),
            ast.store("_omp_nthreads", ast.const(0), var("nthreads")),
            ast.store("_omp_exit", ast.const(0), ast.const(0)),
            ast.for_range(
                "i",
                ast.const(1),
                var("nthreads"),
                [
                    assign("tid", call("thread_create", FuncAddr("omp_worker"), var("i"))),
                    ast.store("_omp_worker_tids", var("i"), var("tid")),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _omp_worker() -> Function:
    body: list = [
        While(
            ast.const(1),
            [
                ExprStmt(call("sem_wait", ast.const(WORK_SEM), type=VOID)),
                If(ast.ne(ast.load("_omp_exit", ast.const(0)), ast.const(0)), [Return(ast.const(0))]),
            ],
        ),
    ]
    # Insert the chunk computation plus the indirect call inside the loop,
    # after the exit-flag check.
    loop: While = body[0]
    work: list = []
    _chunk_bounds(work)
    work.extend(
        [
            If(
                ast.lt(var("lo"), var("hi")),
                [ExprStmt(ast.CallPtr(ast.load("_omp_fn", ast.const(0)), [var("lo"), var("hi"), var("wid")]))],
            ),
            ExprStmt(call("sem_post", ast.const(DONE_SEM), type=VOID)),
        ]
    )
    loop.body.extend(work)
    return Function(
        name="omp_worker",
        params=[("wid", INT)],
        locals=[("span", INT), ("chunk", INT), ("lo", INT), ("hi", INT)],
        body=body,
        return_type=INT,
    )


def _omp_parallel_for() -> Function:
    master_chunk: list = []
    _chunk_bounds(master_chunk, id_var="wid")
    master_chunk.extend(
        [
            If(
                ast.lt(var("lo"), var("hi")),
                [ExprStmt(ast.CallPtr(var("fn"), [var("lo"), var("hi"), var("wid")]))],
            ),
        ]
    )
    return Function(
        name="omp_parallel_for",
        params=[("fn", INT), ("start", INT), ("end", INT)],
        locals=[
            ("nthreads", INT), ("i", INT), ("wid", INT),
            ("span", INT), ("chunk", INT), ("lo", INT), ("hi", INT),
        ],
        body=[
            assign("nthreads", ast.load("_omp_nthreads", ast.const(0))),
            If(ast.lt(var("nthreads"), ast.const(1)), [assign("nthreads", ast.const(1))]),
            ast.store("_omp_fn", ast.const(0), var("fn")),
            ast.store("_omp_start", ast.const(0), var("start")),
            ast.store("_omp_end", ast.const(0), var("end")),
            # release the workers
            ast.for_range("i", ast.const(1), var("nthreads"), [ExprStmt(call("sem_post", ast.const(WORK_SEM), type=VOID))]),
            # master executes chunk 0
            assign("wid", ast.const(0)),
            *master_chunk,
            # implicit barrier: wait for every worker chunk
            ast.for_range("i", ast.const(1), var("nthreads"), [ExprStmt(call("sem_wait", ast.const(DONE_SEM), type=VOID))]),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _omp_shutdown() -> Function:
    return Function(
        name="omp_shutdown",
        params=[],
        locals=[("i", INT), ("nthreads", INT)],
        body=[
            assign("nthreads", ast.load("_omp_nthreads", ast.const(0))),
            ast.store("_omp_exit", ast.const(0), ast.const(1)),
            ast.for_range("i", ast.const(1), var("nthreads"), [ExprStmt(call("sem_post", ast.const(WORK_SEM), type=VOID))]),
            ast.for_range(
                "i",
                ast.const(1),
                var("nthreads"),
                [ExprStmt(call("thread_join", ast.load("_omp_worker_tids", var("i"))))],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def build_openmp_module() -> Module:
    """Build the guest OpenMP-like runtime module."""
    return Module(
        name="openmp_rt",
        functions=[_omp_init(), _omp_worker(), _omp_parallel_for(), _omp_shutdown()],
        globals=[
            GlobalVar("_omp_nthreads", INT, 1, 1),
            GlobalVar("_omp_fn", INT, 1),
            GlobalVar("_omp_start", INT, 1),
            GlobalVar("_omp_end", INT, 1),
            GlobalVar("_omp_exit", INT, 1),
            GlobalVar("_omp_worker_tids", INT, MAX_THREADS),
        ],
    )
