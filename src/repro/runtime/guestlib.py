"""Small guest utility library linked into every program."""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, If, Module, Return, assign, call, var

INT = ast.INT


def _imin() -> Function:
    return Function(
        name="imin",
        params=[("a", INT), ("b", INT)],
        body=[If(ast.lt(var("a"), var("b")), [Return(var("a"))]), Return(var("b"))],
        return_type=INT,
    )


def _imax() -> Function:
    return Function(
        name="imax",
        params=[("a", INT), ("b", INT)],
        body=[If(ast.gt(var("a"), var("b")), [Return(var("a"))]), Return(var("b"))],
        return_type=INT,
    )


def _iabs() -> Function:
    return Function(
        name="iabs",
        params=[("a", INT)],
        body=[If(ast.lt(var("a"), ast.const(0)), [Return(ast.sub(ast.const(0), var("a")))]), Return(var("a"))],
        return_type=INT,
    )


def _malloc() -> Function:
    """Bump allocator on top of the SBRK system call; aborts on exhaustion."""
    return Function(
        name="malloc",
        params=[("nbytes", INT)],
        locals=[("p", INT)],
        body=[
            assign("p", call("sbrk", var("nbytes"))),
            If(ast.eq(var("p"), ast.const(0)), [ast.ExprStmt(call("abort", type=ast.VOID))]),
            Return(var("p")),
        ],
        return_type=INT,
    )


def _lcg_step() -> Function:
    """One step of the NPB-style linear congruential generator.

    Uses the 31-bit Lehmer-style recurrence ``seed = seed*1103515245 + 12345
    (mod 2^31)`` which is cheap on both ISAs and fully deterministic.
    """
    return Function(
        name="lcg_step",
        params=[("seed", INT)],
        locals=[("next_seed", INT)],
        body=[
            assign("next_seed", ast.add(ast.mul(var("seed"), ast.const(1103515245)), ast.const(12345))),
            Return(ast.BinOp("&", var("next_seed"), ast.const(0x7FFFFFFF))),
        ],
        return_type=INT,
    )


def build_guestlib_module() -> Module:
    return Module(
        name="guestlib",
        functions=[_imin(), _imax(), _iabs(), _malloc(), _lcg_step()],
        globals=[],
    )
