"""Guest software floating point library (single precision).

The v7 code generator lowers every floating point operation to a call
into this library, which is itself MiniC code compiled to integer
instructions — mirroring how GCC emits calls to ``__aeabi_fadd`` and
friends for ARMv7 targets without (or not using) a hardware FPU.  This
is the main source of the large ARMv7 instruction-count inflation the
paper reports (Table 1).

The implementation uses flush-to-zero semantics and truncating
rounding: results may differ from IEEE-754 by an ulp or two, which is
irrelevant for the fault-injection methodology because every scenario
is compared against its own golden run.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import (
    Assign,
    Break,
    Function,
    If,
    IntConst,
    Module,
    Return,
    Var,
    While,
    assign,
    call,
    var,
)

INT = ast.INT

_SIGN_MASK = 0x8000_0000
_ABS_MASK = 0x7FFF_FFFF
_EXP_MASK = 0xFF
_MAN_MASK = 0x007F_FFFF
_IMPLICIT_BIT = 0x0080_0000
_INF_BITS = 0x7F80_0000
_NAN_BITS = 0x7FC0_0000


def _i(value: int) -> IntConst:
    return IntConst(value)


def _v(name: str) -> Var:
    return var(name, INT)


def _band(a, b):
    return ast.BinOp("&", a, b)


def _bor(a, b):
    return ast.BinOp("|", a, b)


def _shr(a, amount):
    return ast.BinOp(">>", a, _i(amount) if isinstance(amount, int) else amount)


def _shl(a, amount):
    return ast.BinOp("<<", a, _i(amount) if isinstance(amount, int) else amount)


def _sf_add() -> Function:
    """Single precision addition on raw bit patterns."""
    body = [
        If(ast.eq(_band(_v("a"), _i(_ABS_MASK)), _i(0)), [Return(_v("b"))]),
        If(ast.eq(_band(_v("b"), _i(_ABS_MASK)), _i(0)), [Return(_v("a"))]),
        assign("sa", _band(_shr(_v("a"), 31), _i(1))),
        assign("sb", _band(_shr(_v("b"), 31), _i(1))),
        assign("ea", _band(_shr(_v("a"), 23), _i(_EXP_MASK))),
        assign("eb", _band(_shr(_v("b"), 23), _i(_EXP_MASK))),
        assign("ma", _band(_v("a"), _i(_MAN_MASK))),
        assign("mb", _band(_v("b"), _i(_MAN_MASK))),
        If(ast.eq(_v("ea"), _i(255)), [Return(_v("a"))]),
        If(ast.eq(_v("eb"), _i(255)), [Return(_v("b"))]),
        If(ast.ne(_v("ea"), _i(0)), [assign("ma", _bor(_v("ma"), _i(_IMPLICIT_BIT)))], [assign("ea", _i(1))]),
        If(ast.ne(_v("eb"), _i(0)), [assign("mb", _bor(_v("mb"), _i(_IMPLICIT_BIT)))], [assign("eb", _i(1))]),
        # three guard bits of headroom
        assign("ma", _shl(_v("ma"), 3)),
        assign("mb", _shl(_v("mb"), 3)),
        If(
            ast.ge(_v("ea"), _v("eb")),
            [
                assign("diff", ast.sub(_v("ea"), _v("eb"))),
                If(ast.gt(_v("diff"), _i(30)), [assign("diff", _i(30))]),
                assign("mb", ast.BinOp(">>", _v("mb"), _v("diff"))),
                assign("e", _v("ea")),
            ],
            [
                assign("diff", ast.sub(_v("eb"), _v("ea"))),
                If(ast.gt(_v("diff"), _i(30)), [assign("diff", _i(30))]),
                assign("ma", ast.BinOp(">>", _v("ma"), _v("diff"))),
                assign("e", _v("eb")),
            ],
        ),
        If(
            ast.eq(_v("sa"), _v("sb")),
            [assign("m", ast.add(_v("ma"), _v("mb"))), assign("s", _v("sa"))],
            [
                If(
                    ast.ge(_v("ma"), _v("mb")),
                    [assign("m", ast.sub(_v("ma"), _v("mb"))), assign("s", _v("sa"))],
                    [assign("m", ast.sub(_v("mb"), _v("ma"))), assign("s", _v("sb"))],
                )
            ],
        ),
        If(ast.eq(_v("m"), _i(0)), [Return(_i(0))]),
        While(ast.ge(_v("m"), _i(1 << 27)), [assign("m", _shr(_v("m"), 1)), assign("e", ast.add(_v("e"), _i(1)))]),
        While(ast.lt(_v("m"), _i(1 << 26)), [assign("m", _shl(_v("m"), 1)), assign("e", ast.sub(_v("e"), _i(1)))]),
        assign("m", _band(_shr(_v("m"), 3), _i(_MAN_MASK))),
        If(ast.ge(_v("e"), _i(255)), [Return(_bor(_shl(_v("s"), 31), _i(_INF_BITS)))]),
        If(ast.le(_v("e"), _i(0)), [Return(_shl(_v("s"), 31))]),
        Return(_bor(_bor(_shl(_v("s"), 31), _shl(_v("e"), 23)), _v("m"))),
    ]
    return Function(
        name="__sf_add",
        params=[("a", INT), ("b", INT)],
        locals=[
            ("sa", INT), ("sb", INT), ("ea", INT), ("eb", INT), ("ma", INT), ("mb", INT),
            ("diff", INT), ("e", INT), ("m", INT), ("s", INT),
        ],
        body=body,
        return_type=INT,
    )


def _sf_sub() -> Function:
    """a - b implemented as a + (-b)."""
    return Function(
        name="__sf_sub",
        params=[("a", INT), ("b", INT)],
        locals=[],
        body=[Return(call("__sf_add", _v("a"), ast.BinOp("^", _v("b"), _i(_SIGN_MASK))))],
        return_type=INT,
    )


def _sf_mul() -> Function:
    body = [
        assign("s", ast.BinOp("^", _band(_shr(_v("a"), 31), _i(1)), _band(_shr(_v("b"), 31), _i(1)))),
        If(ast.eq(_band(_v("a"), _i(_ABS_MASK)), _i(0)), [Return(_shl(_v("s"), 31))]),
        If(ast.eq(_band(_v("b"), _i(_ABS_MASK)), _i(0)), [Return(_shl(_v("s"), 31))]),
        assign("ea", _band(_shr(_v("a"), 23), _i(_EXP_MASK))),
        assign("eb", _band(_shr(_v("b"), 23), _i(_EXP_MASK))),
        If(ast.eq(_v("ea"), _i(255)), [Return(_bor(_shl(_v("s"), 31), _i(_INF_BITS)))]),
        If(ast.eq(_v("eb"), _i(255)), [Return(_bor(_shl(_v("s"), 31), _i(_INF_BITS)))]),
        If(ast.eq(_v("ea"), _i(0)), [Return(_shl(_v("s"), 31))]),
        If(ast.eq(_v("eb"), _i(0)), [Return(_shl(_v("s"), 31))]),
        assign("ma", _bor(_band(_v("a"), _i(_MAN_MASK)), _i(_IMPLICIT_BIT))),
        assign("mb", _bor(_band(_v("b"), _i(_MAN_MASK)), _i(_IMPLICIT_BIT))),
        assign("e", ast.sub(ast.add(_v("ea"), _v("eb")), _i(127))),
        # 24x24 -> 48 bit product assembled from 12-bit halves
        assign("ah", _shr(_v("ma"), 12)),
        assign("al", _band(_v("ma"), _i(0xFFF))),
        assign("bh", _shr(_v("mb"), 12)),
        assign("bl", _band(_v("mb"), _i(0xFFF))),
        assign("hi", ast.mul(_v("ah"), _v("bh"))),
        assign("mid", ast.add(ast.mul(_v("ah"), _v("bl")), ast.mul(_v("al"), _v("bh")))),
        assign("lo", ast.mul(_v("al"), _v("bl"))),
        # top 25 bits of the product (truncating)
        assign("m", ast.add(ast.add(_shl(_v("hi"), 1), _shr(_v("mid"), 11)), _shr(_v("lo"), 23))),
        If(
            ast.ge(_v("m"), _i(1 << 24)),
            [assign("m", _shr(_v("m"), 1)), assign("e", ast.add(_v("e"), _i(1)))],
        ),
        assign("m", _band(_v("m"), _i(_MAN_MASK))),
        If(ast.ge(_v("e"), _i(255)), [Return(_bor(_shl(_v("s"), 31), _i(_INF_BITS)))]),
        If(ast.le(_v("e"), _i(0)), [Return(_shl(_v("s"), 31))]),
        Return(_bor(_bor(_shl(_v("s"), 31), _shl(_v("e"), 23)), _v("m"))),
    ]
    return Function(
        name="__sf_mul",
        params=[("a", INT), ("b", INT)],
        locals=[
            ("s", INT), ("ea", INT), ("eb", INT), ("ma", INT), ("mb", INT), ("e", INT),
            ("ah", INT), ("al", INT), ("bh", INT), ("bl", INT),
            ("hi", INT), ("mid", INT), ("lo", INT), ("m", INT),
        ],
        body=body,
        return_type=INT,
    )


def _sf_div() -> Function:
    body = [
        assign("s", ast.BinOp("^", _band(_shr(_v("a"), 31), _i(1)), _band(_shr(_v("b"), 31), _i(1)))),
        If(ast.eq(_band(_v("b"), _i(_ABS_MASK)), _i(0)), [Return(_bor(_shl(_v("s"), 31), _i(_INF_BITS)))]),
        If(ast.eq(_band(_v("a"), _i(_ABS_MASK)), _i(0)), [Return(_shl(_v("s"), 31))]),
        assign("ea", _band(_shr(_v("a"), 23), _i(_EXP_MASK))),
        assign("eb", _band(_shr(_v("b"), 23), _i(_EXP_MASK))),
        If(ast.eq(_v("ea"), _i(255)), [Return(_bor(_shl(_v("s"), 31), _i(_INF_BITS)))]),
        If(ast.eq(_v("eb"), _i(255)), [Return(_shl(_v("s"), 31))]),
        If(ast.eq(_v("ea"), _i(0)), [Return(_shl(_v("s"), 31))]),
        If(ast.eq(_v("eb"), _i(0)), [Return(_bor(_shl(_v("s"), 31), _i(_INF_BITS)))]),
        assign("ma", _bor(_band(_v("a"), _i(_MAN_MASK)), _i(_IMPLICIT_BIT))),
        assign("mb", _bor(_band(_v("b"), _i(_MAN_MASK)), _i(_IMPLICIT_BIT))),
        assign("e", ast.add(ast.sub(_v("ea"), _v("eb")), _i(127))),
        If(
            ast.ge(_v("ma"), _v("mb")),
            [assign("q", _i(1)), assign("rem", ast.sub(_v("ma"), _v("mb")))],
            [assign("q", _i(0)), assign("rem", _v("ma"))],
        ),
        assign("i", _i(0)),
        While(
            ast.lt(_v("i"), _i(25)),
            [
                assign("q", _shl(_v("q"), 1)),
                assign("rem", _shl(_v("rem"), 1)),
                If(
                    ast.ge(_v("rem"), _v("mb")),
                    [assign("rem", ast.sub(_v("rem"), _v("mb"))), assign("q", _bor(_v("q"), _i(1)))],
                ),
                assign("i", ast.add(_v("i"), _i(1))),
            ],
        ),
        If(
            ast.ge(_v("q"), _i(1 << 25)),
            [assign("m", _shr(_v("q"), 2))],
            [assign("m", _shr(_v("q"), 1)), assign("e", ast.sub(_v("e"), _i(1)))],
        ),
        assign("m", _band(_v("m"), _i(_MAN_MASK))),
        If(ast.ge(_v("e"), _i(255)), [Return(_bor(_shl(_v("s"), 31), _i(_INF_BITS)))]),
        If(ast.le(_v("e"), _i(0)), [Return(_shl(_v("s"), 31))]),
        Return(_bor(_bor(_shl(_v("s"), 31), _shl(_v("e"), 23)), _v("m"))),
    ]
    return Function(
        name="__sf_div",
        params=[("a", INT), ("b", INT)],
        locals=[
            ("s", INT), ("ea", INT), ("eb", INT), ("ma", INT), ("mb", INT), ("e", INT),
            ("q", INT), ("rem", INT), ("i", INT), ("m", INT),
        ],
        body=body,
        return_type=INT,
    )


def _sf_cmp() -> Function:
    """Three-way comparison returning -1, 0 or 1."""
    body = [
        assign("absa", _band(_v("a"), _i(_ABS_MASK))),
        assign("absb", _band(_v("b"), _i(_ABS_MASK))),
        If(ast.eq(_v("absa"), _i(0)), [If(ast.eq(_v("absb"), _i(0)), [Return(_i(0))])]),
        assign("sa", _band(_shr(_v("a"), 31), _i(1))),
        assign("sb", _band(_shr(_v("b"), 31), _i(1))),
        If(
            ast.ne(_v("sa"), _v("sb")),
            [If(ast.eq(_v("sa"), _i(1)), [Return(_i(-1))], [Return(_i(1))])],
        ),
        If(ast.eq(_v("absa"), _v("absb")), [Return(_i(0))]),
        If(ast.lt(_v("absa"), _v("absb")), [assign("r", _i(-1))], [assign("r", _i(1))]),
        If(ast.eq(_v("sa"), _i(1)), [Return(ast.sub(_i(0), _v("r")))]),
        Return(_v("r")),
    ]
    return Function(
        name="__sf_cmp",
        params=[("a", INT), ("b", INT)],
        locals=[("absa", INT), ("absb", INT), ("sa", INT), ("sb", INT), ("r", INT)],
        body=body,
        return_type=INT,
    )


def _sf_fromint() -> Function:
    body = [
        If(ast.eq(_v("i"), _i(0)), [Return(_i(0))]),
        assign("s", _i(0)),
        assign("v", _v("i")),
        If(ast.lt(_v("i"), _i(0)), [assign("s", _i(1)), assign("v", ast.sub(_i(0), _v("i")))]),
        # INT_MIN cannot be negated in 32 bits; return its exact f32 encoding.
        If(ast.lt(_v("v"), _i(0)), [Return(_i(0xCF00_0000))]),
        assign("e", _i(150)),
        While(ast.ge(_v("v"), _i(1 << 24)), [assign("v", _shr(_v("v"), 1)), assign("e", ast.add(_v("e"), _i(1)))]),
        While(ast.lt(_v("v"), _i(1 << 23)), [assign("v", _shl(_v("v"), 1)), assign("e", ast.sub(_v("e"), _i(1)))]),
        Return(_bor(_bor(_shl(_v("s"), 31), _shl(_v("e"), 23)), _band(_v("v"), _i(_MAN_MASK)))),
    ]
    return Function(
        name="__sf_fromint",
        params=[("i", INT)],
        locals=[("s", INT), ("v", INT), ("e", INT)],
        body=body,
        return_type=INT,
    )


def _sf_toint() -> Function:
    body = [
        assign("e", _band(_shr(_v("a"), 23), _i(_EXP_MASK))),
        If(ast.lt(_v("e"), _i(127)), [Return(_i(0))]),
        assign("s", _band(_shr(_v("a"), 31), _i(1))),
        assign("m", _bor(_band(_v("a"), _i(_MAN_MASK)), _i(_IMPLICIT_BIT))),
        assign("shift", ast.sub(_v("e"), _i(150))),
        If(
            ast.ge(_v("shift"), _i(0)),
            [
                If(ast.gt(_v("shift"), _i(7)), [assign("shift", _i(7))]),
                assign("value", ast.BinOp("<<", _v("m"), _v("shift"))),
            ],
            [
                assign("shift", ast.sub(_i(0), _v("shift"))),
                If(ast.gt(_v("shift"), _i(31)), [assign("shift", _i(31))]),
                assign("value", ast.BinOp(">>", _v("m"), _v("shift"))),
            ],
        ),
        If(ast.eq(_v("s"), _i(1)), [Return(ast.sub(_i(0), _v("value")))]),
        Return(_v("value")),
    ]
    return Function(
        name="__sf_toint",
        params=[("a", INT)],
        locals=[("e", INT), ("s", INT), ("m", INT), ("shift", INT), ("value", INT)],
        body=body,
        return_type=INT,
    )


def _sf_sqrt() -> Function:
    """Square root via Newton iterations built on the other routines."""
    body = [
        If(ast.eq(_band(_v("a"), _i(_ABS_MASK)), _i(0)), [Return(_i(0))]),
        If(ast.eq(_band(_shr(_v("a"), 31), _i(1)), _i(1)), [Return(_i(_NAN_BITS))]),
        assign("e", _band(_shr(_v("a"), 23), _i(_EXP_MASK))),
        If(ast.eq(_v("e"), _i(255)), [Return(_v("a"))]),
        If(ast.eq(_v("e"), _i(0)), [Return(_i(0))]),
        # Seed: halve the unbiased exponent and keep the top mantissa bits.
        assign("g", _bor(_shl(ast.add(_shr(ast.sub(_v("e"), _i(127)), 1), _i(127)), 23), _band(_v("a"), _i(0x0060_0000)))),
        assign("i", _i(0)),
        While(
            ast.lt(_v("i"), _i(5)),
            [
                assign("t", call("__sf_div", _v("a"), _v("g"))),
                assign("t", call("__sf_add", _v("g"), _v("t"))),
                # multiply by 0.5 by decrementing the exponent
                If(ast.ne(_band(_v("t"), _i(0x7F80_0000)), _i(0)), [assign("t", ast.sub(_v("t"), _i(_IMPLICIT_BIT)))]),
                assign("g", _v("t")),
                assign("i", ast.add(_v("i"), _i(1))),
            ],
        ),
        Return(_v("g")),
    ]
    return Function(
        name="__sf_sqrt",
        params=[("a", INT)],
        locals=[("e", INT), ("g", INT), ("i", INT), ("t", INT)],
        body=body,
        return_type=INT,
    )


def build_softfloat_module() -> Module:
    """Build the guest software float library module."""
    return Module(
        name="softfloat",
        functions=[
            _sf_add(),
            _sf_sub(),
            _sf_mul(),
            _sf_div(),
            _sf_cmp(),
            _sf_fromint(),
            _sf_toint(),
            _sf_sqrt(),
        ],
        globals=[],
    )
