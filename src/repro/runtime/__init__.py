"""Guest-side runtime libraries.

These modules are MiniC code (built as ASTs) that gets linked into
guest programs:

* :mod:`repro.runtime.softfloat` — the software floating point library
  the v7 compiler falls back to (the paper attributes much of the
  ARMv7/ARMv8 instruction-count gap to exactly this library);
* :mod:`repro.runtime.guestlib` — small utility routines;
* :mod:`repro.runtime.openmp` — fork/join parallel-for runtime on top
  of kernel threads and semaphores (the OpenMP stand-in);
* :mod:`repro.runtime.mpi` — message-passing runtime on top of kernel
  message queues (the MPI stand-in).
"""

from repro.runtime.guestlib import build_guestlib_module
from repro.runtime.mpi import build_mpi_module
from repro.runtime.openmp import build_openmp_module
from repro.runtime.softfloat import build_softfloat_module

__all__ = [
    "build_softfloat_module",
    "build_guestlib_module",
    "build_openmp_module",
    "build_mpi_module",
]


def runtime_modules(arch, parallel_mode: str = "serial"):
    """The runtime modules a program needs for one architecture and mode.

    The software float library is linked only for the v7 architecture,
    exactly as the paper's compiler does automatically.
    """
    modules = [build_guestlib_module()]
    if not arch.has_hw_float:
        modules.append(build_softfloat_module())
    if parallel_mode == "omp":
        modules.append(build_openmp_module())
    elif parallel_mode == "mpi":
        modules.append(build_mpi_module(arch))
    elif parallel_mode != "serial":
        raise ValueError(f"unknown parallel mode {parallel_mode!r}")
    return modules
