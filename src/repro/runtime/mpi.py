"""MPI-like message passing runtime (guest code).

Each MPI rank is a separate guest process with a private address space;
communication goes through the kernel's message queues.  The runtime
provides the subset of MPI used by the NPB kernels: point-to-point
sends/receives of typed arrays, barriers, broadcasts and all-reduce
reductions, all implemented on top of ``MSG_SEND``/``MSG_RECV`` system
calls exactly as a real MPI library sits on top of a transport.

Unlike the OpenMP runtime, every rank runs the whole program and owns
an equal share of the data, which is why the paper observes a better
instruction balance across cores for MPI.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import (
    ExprStmt,
    Function,
    GlobalAddr,
    GlobalVar,
    If,
    Module,
    Return,
    assign,
    call,
    var,
)
from repro.isa.arch import ArchSpec

INT = ast.INT
FLOAT = ast.FLOAT
VOID = ast.VOID

TAG_BARRIER = 9001
TAG_BARRIER_RELEASE = 9002
TAG_REDUCE = 9003
TAG_REDUCE_RELEASE = 9004
TAG_BCAST = 9005


def _mpi_rank() -> Function:
    return Function(name="mpi_rank", params=[], body=[Return(call("get_rank"))], return_type=INT)


def _mpi_size() -> Function:
    return Function(name="mpi_size", params=[], body=[Return(call("get_nranks"))], return_type=INT)


def _typed_send(name: str, elem_bytes: int) -> Function:
    return Function(
        name=name,
        params=[("dest", INT), ("addr", INT), ("count", INT), ("tag", INT)],
        body=[
            Return(call("msg_send", var("dest"), var("addr"), ast.mul(var("count"), ast.const(elem_bytes)), var("tag"))),
        ],
        return_type=INT,
    )


def _typed_recv(name: str, elem_bytes: int) -> Function:
    return Function(
        name=name,
        params=[("src", INT), ("addr", INT), ("count", INT), ("tag", INT)],
        body=[
            Return(call("msg_recv", var("src"), var("addr"), ast.mul(var("count"), ast.const(elem_bytes)), var("tag"))),
        ],
        return_type=INT,
    )


def _mpi_barrier(word_bytes: int) -> Function:
    """Centralised barrier: every rank checks in with rank 0, which releases them."""
    return Function(
        name="mpi_barrier",
        params=[],
        locals=[("rank", INT), ("size", INT), ("r", INT)],
        body=[
            assign("rank", call("get_rank")),
            assign("size", call("get_nranks")),
            If(ast.le(var("size"), ast.const(1)), [Return(ast.const(0))]),
            If(
                ast.eq(var("rank"), ast.const(0)),
                [
                    ast.for_range(
                        "r", ast.const(1), var("size"),
                        [ExprStmt(call("mpi_recv_ints", var("r"), GlobalAddr("_mpi_sync"), ast.const(1), ast.const(TAG_BARRIER)))],
                    ),
                    ast.for_range(
                        "r", ast.const(1), var("size"),
                        [ExprStmt(call("mpi_send_ints", var("r"), GlobalAddr("_mpi_sync"), ast.const(1), ast.const(TAG_BARRIER_RELEASE)))],
                    ),
                ],
                [
                    ExprStmt(call("mpi_send_ints", ast.const(0), GlobalAddr("_mpi_sync"), ast.const(1), ast.const(TAG_BARRIER))),
                    ExprStmt(call("mpi_recv_ints", ast.const(0), GlobalAddr("_mpi_sync"), ast.const(1), ast.const(TAG_BARRIER_RELEASE))),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _mpi_allreduce_sum_float() -> Function:
    """All-reduce (sum) of one float value; every rank returns the global sum."""
    return Function(
        name="mpi_allreduce_sum_float",
        params=[("value", FLOAT)],
        locals=[("rank", INT), ("size", INT), ("r", INT), ("total", FLOAT)],
        body=[
            assign("rank", call("get_rank")),
            assign("size", call("get_nranks")),
            If(ast.le(var("size"), ast.const(1)), [Return(ast.fvar("value"))]),
            ast.store("_mpi_fsend", ast.const(0), ast.fvar("value")),
            If(
                ast.eq(var("rank"), ast.const(0)),
                [
                    assign("total", ast.fvar("value")),
                    ast.for_range(
                        "r", ast.const(1), var("size"),
                        [
                            ExprStmt(call("mpi_recv_floats", var("r"), GlobalAddr("_mpi_frecv"), ast.const(1), ast.const(TAG_REDUCE))),
                            assign("total", ast.add(ast.fvar("total"), ast.floadx("_mpi_frecv", ast.const(0)))),
                        ],
                    ),
                    ast.store("_mpi_fsend", ast.const(0), ast.fvar("total")),
                    ast.for_range(
                        "r", ast.const(1), var("size"),
                        [ExprStmt(call("mpi_send_floats", var("r"), GlobalAddr("_mpi_fsend"), ast.const(1), ast.const(TAG_REDUCE_RELEASE)))],
                    ),
                    Return(ast.fvar("total")),
                ],
                [
                    ExprStmt(call("mpi_send_floats", ast.const(0), GlobalAddr("_mpi_fsend"), ast.const(1), ast.const(TAG_REDUCE))),
                    ExprStmt(call("mpi_recv_floats", ast.const(0), GlobalAddr("_mpi_frecv"), ast.const(1), ast.const(TAG_REDUCE_RELEASE))),
                    Return(ast.floadx("_mpi_frecv", ast.const(0))),
                ],
            ),
            Return(ast.FloatConst(0.0)),
        ],
        return_type=FLOAT,
    )


def _mpi_allreduce_sum_int() -> Function:
    return Function(
        name="mpi_allreduce_sum_int",
        params=[("value", INT)],
        locals=[("rank", INT), ("size", INT), ("r", INT), ("total", INT)],
        body=[
            assign("rank", call("get_rank")),
            assign("size", call("get_nranks")),
            If(ast.le(var("size"), ast.const(1)), [Return(var("value"))]),
            ast.store("_mpi_isend", ast.const(0), var("value")),
            If(
                ast.eq(var("rank"), ast.const(0)),
                [
                    assign("total", var("value")),
                    ast.for_range(
                        "r", ast.const(1), var("size"),
                        [
                            ExprStmt(call("mpi_recv_ints", var("r"), GlobalAddr("_mpi_irecv"), ast.const(1), ast.const(TAG_REDUCE))),
                            assign("total", ast.add(var("total"), ast.load("_mpi_irecv", ast.const(0)))),
                        ],
                    ),
                    ast.store("_mpi_isend", ast.const(0), var("total")),
                    ast.for_range(
                        "r", ast.const(1), var("size"),
                        [ExprStmt(call("mpi_send_ints", var("r"), GlobalAddr("_mpi_isend"), ast.const(1), ast.const(TAG_REDUCE_RELEASE)))],
                    ),
                    Return(var("total")),
                ],
                [
                    ExprStmt(call("mpi_send_ints", ast.const(0), GlobalAddr("_mpi_isend"), ast.const(1), ast.const(TAG_REDUCE))),
                    ExprStmt(call("mpi_recv_ints", ast.const(0), GlobalAddr("_mpi_irecv"), ast.const(1), ast.const(TAG_REDUCE_RELEASE))),
                    Return(ast.load("_mpi_irecv", ast.const(0))),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _mpi_bcast_int() -> Function:
    """Broadcast an int from rank 0; every rank returns the broadcast value."""
    return Function(
        name="mpi_bcast_int",
        params=[("value", INT)],
        locals=[("rank", INT), ("size", INT), ("r", INT)],
        body=[
            assign("rank", call("get_rank")),
            assign("size", call("get_nranks")),
            If(ast.le(var("size"), ast.const(1)), [Return(var("value"))]),
            If(
                ast.eq(var("rank"), ast.const(0)),
                [
                    ast.store("_mpi_isend", ast.const(0), var("value")),
                    ast.for_range(
                        "r", ast.const(1), var("size"),
                        [ExprStmt(call("mpi_send_ints", var("r"), GlobalAddr("_mpi_isend"), ast.const(1), ast.const(TAG_BCAST)))],
                    ),
                    Return(var("value")),
                ],
                [
                    ExprStmt(call("mpi_recv_ints", ast.const(0), GlobalAddr("_mpi_irecv"), ast.const(1), ast.const(TAG_BCAST))),
                    Return(ast.load("_mpi_irecv", ast.const(0))),
                ],
            ),
            Return(var("value")),
        ],
        return_type=INT,
    )


def _mpi_finalize() -> Function:
    return Function(
        name="mpi_finalize",
        params=[],
        body=[ExprStmt(call("mpi_barrier")), Return(ast.const(0))],
        return_type=INT,
    )


def build_mpi_module(arch: ArchSpec) -> Module:
    """Build the guest MPI-like runtime module for one architecture."""
    word = arch.word_bytes
    fbytes = arch.float_bytes
    return Module(
        name="mpi_rt",
        functions=[
            _mpi_rank(),
            _mpi_size(),
            _typed_send("mpi_send_ints", word),
            _typed_recv("mpi_recv_ints", word),
            _typed_send("mpi_send_floats", fbytes),
            _typed_recv("mpi_recv_floats", fbytes),
            _typed_send("mpi_send_bytes", 1),
            _typed_recv("mpi_recv_bytes", 1),
            _mpi_barrier(word),
            _mpi_allreduce_sum_float(),
            _mpi_allreduce_sum_int(),
            _mpi_bcast_int(),
            _mpi_finalize(),
        ],
        globals=[
            GlobalVar("_mpi_sync", INT, 1),
            GlobalVar("_mpi_isend", INT, 1),
            GlobalVar("_mpi_irecv", INT, 1),
            GlobalVar("_mpi_fsend", FLOAT, 1),
            GlobalVar("_mpi_frecv", FLOAT, 1),
        ],
    )
