"""Derived indices highlighted by the paper's analysis.

* the normalised function-calls x branches index that tracks Hang
  incidence (Table 2),
* the MPI-vs-OpenMP mismatch of outcome distributions (Figures 2c/3c),
* memory-transaction share and read/write ratio versus UT (Tables 3/4).
"""

from __future__ import annotations

from repro.injection.classify import OUTCOME_ORDER, total_mismatch
from repro.mining.dataset import Dataset


def fb_index(branches: float, calls: float, baseline: float) -> float:
    """Normalised (function calls x branches) index of Table 2."""
    if baseline <= 0:
        return 0.0
    return (branches * calls) / baseline


def fb_index_table(dataset: Dataset, app: str, isa: str, mode: str) -> list[dict]:
    """Table-2-style rows for one (application, ISA, parallel API) triple.

    The single-core configuration provides the normalisation baseline;
    rows are returned for each core count present in the dataset.
    """
    rows = dataset.filter_equal(app=app, isa=isa, mode=mode).sort_by("cores")
    if len(rows) == 0:
        return []
    baseline = None
    out = []
    for record in rows:
        branches = float(record.get("stat_branches_total", 0.0))
        calls = float(record.get("stat_function_calls_total", 0.0))
        product = branches * calls
        if baseline is None:
            baseline = product if product > 0 else 1.0
        out.append(
            {
                "scenario_id": record.get("scenario_id"),
                "cores": record.get("cores"),
                "hang_pct": record.get("pct_Hang", 0.0),
                "branches": branches,
                "function_calls": calls,
                "fb_index": product / baseline,
            }
        )
    return out


def mismatch_table(dataset: Dataset, isa: str, apps=None) -> list[dict]:
    """Per-application, per-core-count MPI-vs-OpenMP outcome mismatch.

    Mirrors Figures 2c and 3c: for every application that has both MPI
    and OpenMP variants at a given core count, report the per-category
    difference (MPI minus OpenMP) and the total mismatch (sum of
    absolute differences).
    """
    rows = []
    data = dataset.filter_equal(isa=isa)
    app_names = sorted({record.get("app") for record in data}) if apps is None else list(apps)
    for app in app_names:
        for cores in (1, 2, 4):
            mpi = data.filter_equal(app=app, mode="mpi", cores=cores)
            omp = data.filter_equal(app=app, mode="omp", cores=cores)
            if len(mpi) == 0 or len(omp) == 0:
                continue
            mpi_pct = _percentages(mpi.records[0])
            omp_pct = _percentages(omp.records[0])
            row = {
                "app": app,
                "cores": cores,
                "isa": isa,
                "total_mismatch": total_mismatch(mpi_pct, omp_pct),
            }
            for outcome in OUTCOME_ORDER:
                row[f"diff_{outcome.value}"] = mpi_pct.get(outcome.value, 0.0) - omp_pct.get(outcome.value, 0.0)
            rows.append(row)
    return rows


def memory_transaction_table(dataset: Dataset, scenario_ids: list[str]) -> list[dict]:
    """Tables 3/4 style rows: outcome shares versus memory behaviour."""
    out = []
    by_id = {record.get("scenario_id"): record for record in dataset}
    for scenario_id in scenario_ids:
        record = by_id.get(scenario_id)
        if record is None:
            continue
        benign = (
            record.get("pct_Vanished", 0.0)
            + record.get("pct_OMM", 0.0)
            + record.get("pct_ONA", 0.0)
        )
        out.append(
            {
                "scenario_id": scenario_id,
                "benign_pct": benign,
                "ut_pct": record.get("pct_UT", 0.0),
                "hang_pct": record.get("pct_Hang", 0.0),
                "mem_inst_pct": record.get("stat_memory_instruction_pct", 0.0),
                "rd_wr_ratio": record.get("stat_read_write_ratio", 0.0),
            }
        )
    return out


def _percentages(record: dict) -> dict[str, float]:
    return {
        outcome.value: float(record.get(f"pct_{outcome.value}", 0.0))
        for outcome in OUTCOME_ORDER
    }


def masking_comparison(dataset: Dataset, isa: str) -> dict:
    """Count how often MPI beats OpenMP on masking rate (Section 4.2.2)."""
    data = dataset.filter_equal(isa=isa)
    wins = 0
    comparisons = 0
    details = []
    apps = sorted({record.get("app") for record in data})
    for app in apps:
        for cores in (1, 2, 4):
            mpi = data.filter_equal(app=app, mode="mpi", cores=cores)
            omp = data.filter_equal(app=app, mode="omp", cores=cores)
            if len(mpi) == 0 or len(omp) == 0:
                continue
            comparisons += 1
            mpi_mask = float(mpi.records[0].get("masking_rate_pct", 0.0))
            omp_mask = float(omp.records[0].get("masking_rate_pct", 0.0))
            if mpi_mask >= omp_mask:
                wins += 1
            details.append({"app": app, "cores": cores, "mpi": mpi_mask, "omp": omp_mask})
    return {"comparisons": comparisons, "mpi_wins": wins, "details": details}
