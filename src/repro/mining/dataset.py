"""A small column-oriented dataset (no external dataframe dependency).

The mining tool works on flat records (one per scenario or one per
injection); :class:`Dataset` provides the column selection, filtering,
grouping and summary statistics the exploratory data analysis needs.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Optional, Sequence


class Dataset:
    """An immutable-ish list of record dictionaries with column helpers."""

    def __init__(self, records: Iterable[dict]):
        self.records = [dict(record) for record in records]

    # ------------------------------------------------------------------
    # basics
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def columns(self) -> list[str]:
        seen: list[str] = []
        for record in self.records:
            for key in record:
                if key not in seen:
                    seen.append(key)
        return seen

    def column(self, name: str, default=None) -> list:
        return [record.get(name, default) for record in self.records]

    def numeric_column(self, name: str) -> list[float]:
        out = []
        for record in self.records:
            value = record.get(name)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out.append(float(value))
        return out

    def numeric_columns(self) -> list[str]:
        names = []
        for name in self.columns():
            values = self.numeric_column(name)
            if len(values) == len(self.records) and len(values) > 0:
                names.append(name)
        return names

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------

    def where(self, predicate: Callable[[dict], bool]) -> "Dataset":
        return Dataset(record for record in self.records if predicate(record))

    def filter_equal(self, **criteria) -> "Dataset":
        def match(record: dict) -> bool:
            return all(record.get(key) == value for key, value in criteria.items())

        return self.where(match)

    def select(self, columns: Sequence[str]) -> "Dataset":
        return Dataset({key: record.get(key) for key in columns} for record in self.records)

    def sort_by(self, column: str, reverse: bool = False) -> "Dataset":
        return Dataset(sorted(self.records, key=lambda r: r.get(column), reverse=reverse))

    # ------------------------------------------------------------------
    # grouping and statistics
    # ------------------------------------------------------------------

    def group_by(self, column: str) -> dict[object, "Dataset"]:
        groups: dict[object, list[dict]] = {}
        for record in self.records:
            groups.setdefault(record.get(column), []).append(record)
        return {key: Dataset(rows) for key, rows in groups.items()}

    def mean(self, column: str) -> float:
        values = self.numeric_column(column)
        return sum(values) / len(values) if values else 0.0

    def std(self, column: str) -> float:
        values = self.numeric_column(column)
        if len(values) < 2:
            return 0.0
        mean = sum(values) / len(values)
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (len(values) - 1))

    def min(self, column: str) -> float:
        values = self.numeric_column(column)
        return min(values) if values else 0.0

    def max(self, column: str) -> float:
        values = self.numeric_column(column)
        return max(values) if values else 0.0

    def describe(self, columns: Optional[Sequence[str]] = None) -> dict[str, dict[str, float]]:
        """Summary statistics per numeric column (EDA step one)."""
        chosen = columns if columns is not None else self.numeric_columns()
        summary = {}
        for name in chosen:
            values = self.numeric_column(name)
            if not values:
                continue
            summary[name] = {
                "count": len(values),
                "mean": self.mean(name),
                "std": self.std(name),
                "min": min(values),
                "max": max(values),
            }
        return summary

    # ------------------------------------------------------------------
    # transformation
    # ------------------------------------------------------------------

    def with_column(self, name: str, func: Callable[[dict], object]) -> "Dataset":
        out = []
        for record in self.records:
            clone = dict(record)
            clone[name] = func(record)
            out.append(clone)
        return Dataset(out)

    def join(self, other: "Dataset", on: str) -> "Dataset":
        """Inner join on one key column (other's columns win on conflict)."""
        index = {record.get(on): record for record in other.records}
        out = []
        for record in self.records:
            key = record.get(on)
            if key in index:
                merged = dict(record)
                merged.update(index[key])
                out.append(merged)
        return Dataset(out)

    def to_records(self) -> list[dict]:
        return [dict(record) for record in self.records]
