"""Correlation mining between profiling parameters and fault outcomes.

Step three of the paper's analysis: relationships between software
symptoms (execution time, branch share, memory-instruction share,
function calls, ...) and soft-error vulnerability figures (UT share,
Hang share, masking rate) are surfaced by ranking pairwise
correlations.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.mining.dataset import Dataset

try:  # scipy gives exact Spearman handling of ties; fall back to manual ranks
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - scipy is available in the test env
    _scipy_stats = None


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient (0.0 when degenerate)."""
    n = min(len(xs), len(ys))
    if n < 2:
        return 0.0
    xs, ys = list(xs[:n]), list(ys[:n])
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    denominator = math.sqrt(var_x) * math.sqrt(var_y)
    if var_x <= 0 or var_y <= 0 or denominator == 0.0:
        # degenerate series (constant, or variance underflowed to zero)
        return 0.0
    return max(-1.0, min(1.0, cov / denominator))


def _ranks(values: Sequence[float]) -> list[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (scipy when available, manual otherwise)."""
    n = min(len(xs), len(ys))
    if n < 2:
        return 0.0
    if _scipy_stats is not None:
        result = _scipy_stats.spearmanr(xs[:n], ys[:n])
        value = float(result.correlation)
        return 0.0 if math.isnan(value) else value
    return pearson(_ranks(list(xs[:n])), _ranks(list(ys[:n])))


def grouped_spearman(
    records: Sequence[dict],
    group_key: str,
    x_key: str,
    y_key: str,
    min_group: int = 2,
) -> dict[str, float]:
    """Spearman between two record fields, computed per group.

    Groups with fewer than ``min_group`` records are omitted (a rank
    correlation over one point is meaningless).  Used by the static
    vulnerability validation report to break the predicted-vs-measured
    correlation down per ISA and per programming model.
    """
    grouped: dict[str, tuple[list, list]] = {}
    for record in records:
        xs, ys = grouped.setdefault(str(record[group_key]), ([], []))
        xs.append(float(record[x_key]))
        ys.append(float(record[y_key]))
    return {
        group: spearman(xs, ys)
        for group, (xs, ys) in sorted(grouped.items())
        if len(xs) >= min_group
    }


def correlation_matrix(
    dataset: Dataset,
    columns: Optional[Sequence[str]] = None,
    method: str = "pearson",
) -> dict[str, dict[str, float]]:
    """Pairwise correlation matrix over the selected numeric columns."""
    func = pearson if method == "pearson" else spearman
    chosen = list(columns) if columns is not None else dataset.numeric_columns()
    series = {name: dataset.numeric_column(name) for name in chosen}
    matrix: dict[str, dict[str, float]] = {}
    for a in chosen:
        matrix[a] = {}
        for b in chosen:
            matrix[a][b] = 1.0 if a == b else func(series[a], series[b])
    return matrix


def rank_correlations(
    dataset: Dataset,
    target: str,
    candidates: Optional[Sequence[str]] = None,
    method: str = "pearson",
    top: int = 20,
) -> list[tuple[str, float]]:
    """Rank profiling parameters by |correlation| against a target column.

    This is the mining primitive used to surface "software symptoms with
    a direct impact on the application reliability".
    """
    func = pearson if method == "pearson" else spearman
    targets = dataset.numeric_column(target)
    chosen = list(candidates) if candidates is not None else dataset.numeric_columns()
    scored = []
    for name in chosen:
        if name == target:
            continue
        values = dataset.numeric_column(name)
        if len(values) != len(targets) or len(values) < 2:
            continue
        scored.append((name, func(values, targets)))
    scored.sort(key=lambda item: -abs(item[1]))
    return scored[:top]
