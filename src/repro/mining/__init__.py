"""Cross-layer data mining tool (Section 3.4 of the paper).

The tool joins three kinds of data into one analysis store and mines it
for relationships between software symptoms and soft-error outcomes:

1. fault-injection classification results (from the campaign database),
2. microarchitectural statistics (the "gem5 statistics"),
3. functional profiling information (the "OVPsim" data: function usage,
   line coverage, vulnerability windows).

The three analysis steps of the paper map to:

* step 1/2 — :class:`~repro.mining.dataset.Dataset` and
  :func:`~repro.mining.eda.build_analysis_dataset` (acquisition,
  transformation, initial statistics);
* step 3 — :mod:`repro.mining.correlation` and
  :mod:`repro.mining.indices` (relationship mining, derived indices
  such as the function-calls x branches index of Table 2).
"""

from repro.mining.dataset import Dataset
from repro.mining.eda import build_analysis_dataset
from repro.mining.correlation import correlation_matrix, rank_correlations
from repro.mining.indices import fb_index_table, mismatch_table

__all__ = [
    "Dataset",
    "build_analysis_dataset",
    "correlation_matrix",
    "rank_correlations",
    "fb_index_table",
    "mismatch_table",
]
