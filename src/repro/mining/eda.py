"""Exploratory data analysis: building the joined analysis dataset.

Steps one and two of the paper's data-mining flow: the raw fault
injection outcomes are turned into per-scenario statistical figures,
then the microarchitectural statistics and (optionally) the functional
profiling information are joined into the same store.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.mining.dataset import Dataset
from repro.orchestration.database import ResultsDatabase
from repro.profiling.functional import FunctionalProfile


def build_analysis_dataset(
    database: ResultsDatabase,
    profiles: Optional[Iterable[FunctionalProfile]] = None,
) -> Dataset:
    """Join campaign results, gem5-style statistics and functional profiles."""
    dataset = Dataset(database.scenario_records())
    if profiles:
        profile_records = []
        for profile in profiles:
            record = {
                "scenario_id": profile.scenario_id,
                "profile_total_instructions": profile.total_instructions,
                "profile_vulnerability_window": profile.vulnerability_window(),
                "profile_functions_executed": len(profile.function_instructions),
            }
            for name, count in profile.function_calls.items():
                record[f"calls_{name}"] = count
            profile_records.append(record)
        dataset = dataset.join(Dataset(profile_records), on="scenario_id")
    return dataset


def scenario_summary_statistics(dataset: Dataset) -> dict[str, dict[str, float]]:
    """Initial statistical figures per numeric column (EDA step one)."""
    interesting = [
        name
        for name in dataset.numeric_columns()
        if name.startswith("pct_") or name.startswith("stat_") or name in ("masking_rate_pct", "faults")
    ]
    return dataset.describe(interesting)


def outcome_by(dataset: Dataset, key: str) -> dict[object, dict[str, float]]:
    """Average outcome distribution grouped by an arbitrary column (EDA step two)."""
    groups = dataset.group_by(key)
    out = {}
    for value, group in groups.items():
        out[value] = {
            "Vanished": group.mean("pct_Vanished"),
            "ONA": group.mean("pct_ONA"),
            "OMM": group.mean("pct_OMM"),
            "UT": group.mean("pct_UT"),
            "Hang": group.mean("pct_Hang"),
            "masking": group.mean("masking_rate_pct"),
            "scenarios": len(group),
        }
    return out
