"""Compiler-implemented fault tolerance as AST-to-AST transforms.

``harden_module`` is the post-optimise stage of the compiler pipeline
(``optimize_module -> harden_module -> compile_module``).  Because it
rewrites the MiniC AST before code generation, both ISA backends
inherit the exact same hardening — mirroring how the paper keeps one
source and one optimisation level across architectures.

**DWC — duplicate with compare.**  Every integer/pointer variable gains
a shadow copy (``name + "__ftdup"``).  Assignments of *pure* integer
expressions (no calls, no memory reads) are computed twice, once over
the primary variables and once over the shadows; assignments whose
right-hand side has side effects or reads memory resynchronise the
shadow from the primary instead (the sphere of replication ends at
memory and at call results, exactly as in EDDI-style instruction
duplication — and re-reading shared memory would race in threaded
code).  Before every store, branch condition, return and expression
statement (which is where output system calls live), each referenced
duplicated variable is compared against its shadow; a mismatch traps to
the guest ``__ft_fault_detected`` routine.

**CFC — control-flow checking.**  Each function keeps a runtime
signature variable (``__cfc_sig``).  The structured walk assigns every
region a compile-time signature; region entries and exits XOR the
difference into the runtime signature, and join points (after an
``if``, after a loop, before a ``return``) verify that the runtime
value matches the statically expected one.  A control-flow error that
jumps into a block without executing its entry update leaves the
signature inconsistent and traps at the next check.  ``break``/
``continue`` restore the enclosing loop's signature before jumping, so
fault-free control transfers always verify.

Both transforms are semantics-preserving on fault-free executions:
duplicated computations are pure, instrumentation never re-executes
side effects or memory reads, and signature arithmetic is
self-consistent along every structured path.
"""

from __future__ import annotations

import zlib

from repro.compiler import ast
from repro.errors import CompileError
from repro.hardening.ftlib import FT_TRAP
from repro.hardening.schemes import (
    HARDENING_CFC,
    HARDENING_DWC,
    dwc_top_n,
    normalize_hardening,
    scheme_components,
)

#: Suffix of DWC shadow variables.
SHADOW_SUFFIX = "__ftdup"

#: Name of the CFC runtime signature local.
CFC_SIG_VAR = "__cfc_sig"

#: Signature values fit the MOVI immediate comfortably.
_SIG_MASK = 0xFFFF


def shadow_name(name: str) -> str:
    return name + SHADOW_SUFFIX


def _trap() -> ast.Stmt:
    return ast.ExprStmt(ast.Call(FT_TRAP, [], type=ast.VOID))


def is_duplicable(expr: ast.Expr) -> bool:
    """Whether an expression may be safely computed twice.

    Pure computations over variables and constants qualify; calls (side
    effects) and memory reads (``Index``/``Deref`` — a second read of
    shared memory could race in threaded code) do not.
    """
    if isinstance(expr, (ast.Call, ast.CallPtr, ast.Index, ast.Deref)):
        return False
    return all(is_duplicable(child) for child in expr.children())


def _contains_toplevel_continue(body: list[ast.Stmt]) -> bool:
    """``continue`` statements binding to *this* loop level (not nested loops)."""
    for stmt in body:
        if isinstance(stmt, ast.Continue):
            return True
        if isinstance(stmt, ast.If):
            if _contains_toplevel_continue(stmt.then_body) or _contains_toplevel_continue(
                stmt.else_body
            ):
                return True
        # While/For open a new loop scope: continue inside binds there.
    return False


class FunctionHardener:
    """Applies the selected hardening components to one function."""

    def __init__(
        self,
        function: ast.Function,
        dwc: bool,
        cfc: bool,
        shadow_selection=None,
    ):
        self.func = function
        self.dwc = dwc
        self.cfc = cfc
        self.var_types = function.variable_types()
        for name in self.var_types:
            if name.endswith(SHADOW_SUFFIX) or name == CFC_SIG_VAR:
                raise CompileError(
                    f"variable {name!r} in {function.name!r} collides with hardening "
                    "instrumentation names"
                )
        self.shadows = (
            {name for name, typ in self.var_types.items() if typ == ast.INT} if dwc else set()
        )
        if shadow_selection is not None:
            # selective DWC: duplicate only the chosen (most vulnerable)
            # variables; names outside the function are simply ignored
            self.shadows &= set(shadow_selection)
        self._sig_counter = 0
        self.sig = self._new_sig()  # function entry signature
        self._loop_sigs: list[int] = []

    # ------------------------------------------------------------------
    # CFC signature bookkeeping
    # ------------------------------------------------------------------

    def _new_sig(self) -> int:
        self._sig_counter += 1
        return zlib.crc32(f"{self.func.name}#{self._sig_counter}".encode()) & _SIG_MASK

    def _sig_xor(self, from_sig: int, to_sig: int) -> list[ast.Stmt]:
        delta = from_sig ^ to_sig
        if delta == 0:
            return []
        return [
            ast.Assign(
                CFC_SIG_VAR,
                ast.BinOp("^", ast.Var(CFC_SIG_VAR, ast.INT), ast.IntConst(delta)),
            )
        ]

    def _cfc_check(self) -> ast.Stmt:
        return ast.If(
            ast.ne(ast.Var(CFC_SIG_VAR, ast.INT), ast.IntConst(self.sig)), [_trap()]
        )

    # ------------------------------------------------------------------
    # DWC shadow expressions and compare points
    # ------------------------------------------------------------------

    def _shadowed_expr(self, expr: ast.Expr) -> ast.Expr:
        """A structural copy of ``expr`` reading shadow variables."""
        if isinstance(expr, ast.Var):
            if expr.name in self.shadows:
                return ast.Var(shadow_name(expr.name), expr.type)
            return ast.Var(expr.name, expr.type)
        if isinstance(expr, ast.IntConst):
            return ast.IntConst(expr.value)
        if isinstance(expr, ast.FloatConst):
            return ast.FloatConst(expr.value)
        if isinstance(expr, ast.GlobalAddr):
            return ast.GlobalAddr(expr.name)
        if isinstance(expr, ast.FuncAddr):
            return ast.FuncAddr(expr.name)
        if isinstance(expr, ast.BinOp):
            return ast.BinOp(expr.op, self._shadowed_expr(expr.left), self._shadowed_expr(expr.right))
        if isinstance(expr, ast.UnOp):
            return ast.UnOp(expr.op, self._shadowed_expr(expr.operand))
        if isinstance(expr, ast.Cast):
            return ast.Cast(self._shadowed_expr(expr.expr), expr.type)
        raise CompileError(f"cannot shadow expression {expr!r}")  # pragma: no cover

    def _checked_vars(self, *exprs: ast.Expr) -> list[str]:
        """Duplicated variables referenced by ``exprs``, first-use order."""
        seen: set[str] = set()
        order: list[str] = []

        def visit(expr: ast.Expr) -> None:
            if isinstance(expr, ast.Var) and expr.name in self.shadows and expr.name not in seen:
                seen.add(expr.name)
                order.append(expr.name)
            for child in expr.children():
                visit(child)

        for expr in exprs:
            if expr is not None:
                visit(expr)
        return order

    def _dwc_checks(self, *exprs: ast.Expr) -> list[ast.Stmt]:
        """Compare each referenced duplicated variable against its shadow."""
        if not self.dwc:
            return []
        return [
            ast.If(
                ast.ne(ast.Var(name, ast.INT), ast.Var(shadow_name(name), ast.INT)),
                [_trap()],
            )
            for name in self._checked_vars(*exprs)
        ]

    # ------------------------------------------------------------------
    # statement walk
    # ------------------------------------------------------------------

    def _harden_body(self, body: list[ast.Stmt]) -> list[ast.Stmt]:
        out: list[ast.Stmt] = []
        for stmt in body:
            out.extend(self._harden_stmt(stmt))
        return out

    def _harden_stmt(self, stmt: ast.Stmt) -> list[ast.Stmt]:
        if isinstance(stmt, ast.Assign):
            return self._harden_assign(stmt)
        if isinstance(stmt, ast.StoreIndex):
            return self._dwc_checks(stmt.index, stmt.value) + [stmt]
        if isinstance(stmt, ast.StoreDeref):
            return self._dwc_checks(stmt.address, stmt.value) + [stmt]
        if isinstance(stmt, ast.If):
            return self._harden_if(stmt)
        if isinstance(stmt, ast.While):
            return self._harden_while(stmt)
        if isinstance(stmt, ast.For):
            return self._harden_for(stmt)
        if isinstance(stmt, ast.Return):
            return self._harden_return(stmt)
        if isinstance(stmt, ast.ExprStmt):
            return self._dwc_checks(stmt.expr) + [stmt]
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return self._harden_loop_jump(stmt)
        return [stmt]

    def _harden_assign(self, stmt: ast.Assign) -> list[ast.Stmt]:
        if not self.dwc or stmt.name not in self.shadows:
            return [stmt]
        if is_duplicable(stmt.value):
            # Duplicate the computation over the shadow variable set; the
            # shadow of ``i = i + 1`` reads the *old* shadow of ``i``, so
            # the copies evolve independently and stay comparable.
            return [stmt, ast.Assign(shadow_name(stmt.name), self._shadowed_expr(stmt.value))]
        # Calls and memory reads end the sphere of replication: the
        # shadow resynchronises from the freshly assigned primary.
        return [stmt, ast.Assign(shadow_name(stmt.name), ast.Var(stmt.name, ast.INT))]

    def _harden_if(self, stmt: ast.If) -> list[ast.Stmt]:
        out = self._dwc_checks(stmt.cond)
        if not self.cfc:
            out.append(
                ast.If(stmt.cond, self._harden_body(stmt.then_body), self._harden_body(stmt.else_body))
            )
            return out
        pre = self.sig
        then_sig, else_sig, join_sig = self._new_sig(), self._new_sig(), self._new_sig()
        self.sig = then_sig
        then_body = self._sig_xor(pre, then_sig) + self._harden_body(stmt.then_body)
        then_body += self._sig_xor(self.sig, join_sig)
        self.sig = else_sig
        else_body = self._sig_xor(pre, else_sig) + self._harden_body(stmt.else_body)
        else_body += self._sig_xor(self.sig, join_sig)
        self.sig = join_sig
        out.append(ast.If(stmt.cond, then_body, else_body))
        out.append(self._cfc_check())
        return out

    def _harden_while(self, stmt: ast.While) -> list[ast.Stmt]:
        out = self._dwc_checks(stmt.cond)
        if not self.cfc:
            body = self._dwc_checks(stmt.cond) + self._harden_body(stmt.body)
            out.append(ast.While(stmt.cond, body))
            return out
        pre = self.sig
        body_sig = self._new_sig()
        self._loop_sigs.append(pre)
        self.sig = body_sig
        body = self._sig_xor(pre, body_sig) + self._dwc_checks(stmt.cond) + self._harden_body(
            stmt.body
        )
        body += self._sig_xor(self.sig, pre)
        self._loop_sigs.pop()
        self.sig = pre
        out.append(ast.While(stmt.cond, body))
        out.append(self._cfc_check())
        return out

    def _harden_for(self, stmt: ast.For) -> list[ast.Stmt]:
        """Counted loops are lowered to ``while`` so the induction
        variable's increment becomes a visible (and thus duplicated)
        assignment; the lowering mirrors the code generator's expansion
        exactly.  Loops whose body ``continue``s cannot be lowered (the
        increment would be skipped) and fall back to shadow
        resynchronisation at the body head.
        """
        if _contains_toplevel_continue(stmt.body):
            return self._harden_for_fallback(stmt)
        descending = isinstance(stmt.step, ast.IntConst) and stmt.step.value < 0
        comparison = ">" if descending else "<"
        init = ast.Assign(stmt.var, stmt.start)
        cond = ast.BinOp(comparison, ast.Var(stmt.var, ast.INT), stmt.end)
        increment = ast.Assign(
            stmt.var, ast.BinOp("+", ast.Var(stmt.var, ast.INT), stmt.step)
        )
        lowered = ast.While(cond, list(stmt.body) + [increment])
        return self._harden_assign(init) + self._harden_while(lowered)

    def _harden_for_fallback(self, stmt: ast.For) -> list[ast.Stmt]:
        prefix: list[ast.Stmt] = []
        if self.dwc and stmt.var in self.shadows:
            # The step assignment is internal to the code generator, so
            # the shadow cannot track it; resynchronise every iteration.
            prefix.append(ast.Assign(shadow_name(stmt.var), ast.Var(stmt.var, ast.INT)))
        out = self._dwc_checks(stmt.start, stmt.end)
        if not self.cfc:
            body = prefix + self._dwc_checks(stmt.end) + self._harden_body(stmt.body)
            out.append(ast.For(stmt.var, stmt.start, stmt.end, body, stmt.step))
            return out
        pre = self.sig
        body_sig = self._new_sig()
        self._loop_sigs.append(pre)
        self.sig = body_sig
        body = self._sig_xor(pre, body_sig) + prefix + self._harden_body(stmt.body)
        body += self._sig_xor(self.sig, pre)
        self._loop_sigs.pop()
        self.sig = pre
        out.append(ast.For(stmt.var, stmt.start, stmt.end, body, stmt.step))
        out.append(self._cfc_check())
        return out

    def _harden_return(self, stmt: ast.Return) -> list[ast.Stmt]:
        out = self._dwc_checks(stmt.value) if stmt.value is not None else []
        if self.cfc:
            out.append(self._cfc_check())
        out.append(stmt)
        return out

    def _harden_loop_jump(self, stmt: ast.Stmt) -> list[ast.Stmt]:
        if not self.cfc or not self._loop_sigs:
            return [stmt]
        # Both jump targets (the loop exit and the condition re-check)
        # statically expect the enclosing loop's pre-signature.
        return self._sig_xor(self.sig, self._loop_sigs[-1]) + [stmt]

    # ------------------------------------------------------------------

    def harden(self) -> ast.Function:
        new_locals = list(self.func.locals)
        prologue: list[ast.Stmt] = []
        if self.dwc:
            ordered = [name for name, _ in list(self.func.params) + list(self.func.locals)]
            new_locals += [
                (shadow_name(name), ast.INT) for name in ordered if name in self.shadows
            ]
            prologue += [
                ast.Assign(shadow_name(name), ast.Var(name, ast.INT))
                for name, typ in self.func.params
                if name in self.shadows
            ]
        if self.cfc:
            new_locals.append((CFC_SIG_VAR, ast.INT))
            prologue.append(ast.Assign(CFC_SIG_VAR, ast.IntConst(self.sig)))
        body = prologue + self._harden_body(self.func.body)
        if self.cfc:
            # Fall-through exit of a void function is a join point too.
            body.append(self._cfc_check())
        return ast.Function(
            name=self.func.name,
            params=list(self.func.params),
            locals=new_locals,
            body=body,
            return_type=self.func.return_type,
        )


def harden_function(
    function: ast.Function, scheme, shadow_selection=None
) -> ast.Function:
    """Apply a hardening scheme to one function (identity for ``off``).

    ``shadow_selection`` restricts DWC duplication to the named
    variables (selective ``dwcN`` hardening); ``None`` duplicates every
    integer variable.
    """
    components = scheme_components(scheme)
    if not components:
        return function
    return FunctionHardener(
        function,
        dwc=HARDENING_DWC in components,
        cfc=HARDENING_CFC in components,
        shadow_selection=shadow_selection,
    ).harden()


def harden_module(module: ast.Module, scheme, shadow_ranks=None) -> ast.Module:
    """The post-optimise hardening stage of the compiler pipeline.

    Returns the module unchanged for the ``off`` scheme; otherwise a new
    module whose functions carry the selected instrumentation.  The
    transform is deterministic: the same module and scheme always
    produce a structurally identical result.

    ``shadow_ranks`` maps function names to the variable names selective
    DWC should duplicate (from :func:`repro.staticlint.top_variables`);
    it is required when the scheme uses the ``dwcN`` form and ignored
    otherwise.
    """
    if normalize_hardening(scheme) is None:
        return module
    selective = dwc_top_n(scheme) is not None
    if selective and shadow_ranks is None:
        raise CompileError(
            f"selective hardening scheme {scheme!r} needs variable ranks "
            "(see repro.staticlint.top_variables)"
        )
    return ast.Module(
        name=module.name,
        functions=[
            harden_function(
                function,
                scheme,
                shadow_selection=shadow_ranks.get(function.name, ()) if selective else None,
            )
            for function in module.functions
        ],
        globals=list(module.globals),
    )
