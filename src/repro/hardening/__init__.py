"""Software-hardening subsystem: compiler-implemented fault tolerance.

The subsystem adds *hardening* as a campaign axis next to application,
programming model, core count, ISA and fault-target mix:

* :mod:`repro.hardening.schemes` — the scheme registry (``off``,
  ``dwc``, ``cfc``, ``dwc+cfc``, plus the ``rec`` recovery policy,
  e.g. ``dwc+rec``) and label normalisation;
* :mod:`repro.hardening.transform` — the AST-level transforms
  (duplicate-with-compare and control-flow checking), run as the
  post-optimise stage of the compiler pipeline;
* :mod:`repro.hardening.ftlib` — the guest trap library
  (``__ft_fault_detected``) hardened code calls on a mismatch, which
  terminates the process with the ``ft_detected`` fault kind that the
  classifier reports as the **Detected** outcome.
"""

from repro.hardening.ftlib import FT_MODULE_NAME, FT_TRAP, build_ft_module
from repro.hardening.schemes import (
    DEFAULT_RECOVERY_RETRIES,
    HARDENING_CFC,
    HARDENING_COMPONENTS,
    HARDENING_DWC,
    HARDENING_REC,
    HARDENING_SCHEMES,
    compile_scheme,
    dwc_top_n,
    hardening_label,
    normalize_hardening,
    recovery_retries,
    scheme_components,
)
from repro.hardening.transform import (
    CFC_SIG_VAR,
    SHADOW_SUFFIX,
    harden_function,
    harden_module,
    is_duplicable,
    shadow_name,
)

__all__ = [
    "FT_MODULE_NAME",
    "FT_TRAP",
    "build_ft_module",
    "DEFAULT_RECOVERY_RETRIES",
    "HARDENING_CFC",
    "HARDENING_COMPONENTS",
    "HARDENING_DWC",
    "HARDENING_REC",
    "HARDENING_SCHEMES",
    "compile_scheme",
    "dwc_top_n",
    "hardening_label",
    "normalize_hardening",
    "recovery_retries",
    "scheme_components",
    "CFC_SIG_VAR",
    "SHADOW_SUFFIX",
    "harden_function",
    "harden_module",
    "is_duplicable",
    "shadow_name",
]
