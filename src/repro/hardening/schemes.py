"""Hardening scheme registry and label handling.

A *hardening scheme* names a set of compiler-implemented fault-tolerance
transforms applied to MiniC modules after optimisation and before code
generation.  Two component transforms exist:

* ``dwc`` — duplicate-with-compare: integer/pointer computations are
  duplicated into shadow variables and the copies are compared before
  stores, branches and output calls;
* ``cfc`` — control-flow checking: structured blocks carry compile-time
  signatures that a runtime signature variable must reproduce at join
  points.

Schemes compose with ``+`` (``"dwc+cfc"``); ``None``/"off" means no
hardening (the paper's baseline binaries).  Labels are normalised to a
canonical component order so ``"cfc+dwc"`` and ``"dwc+cfc"`` name the
same scenario axis value.
"""

from __future__ import annotations

from typing import Optional

HARDENING_DWC = "dwc"
HARDENING_CFC = "cfc"

#: Component transforms, in canonical label order.
HARDENING_COMPONENTS = (HARDENING_DWC, HARDENING_CFC)

#: The selectable values of the hardening campaign axis.
HARDENING_SCHEMES = ("off", "dwc", "cfc", "dwc+cfc")


def normalize_hardening(scheme) -> Optional[str]:
    """Canonical scheme label, or ``None`` for the unhardened baseline.

    Accepts ``None``, ``"off"``/``"none"``/``""`` (all meaning no
    hardening) or a ``+``-joined combination of component names in any
    order; raises ``ValueError`` for unknown components.
    """
    if scheme is None:
        return None
    label = str(scheme).strip().lower()
    if label in ("", "off", "none"):
        return None
    parts = [part for part in label.split("+") if part]
    for part in parts:
        if part not in HARDENING_COMPONENTS:
            raise ValueError(
                f"unknown hardening component {part!r} in scheme {scheme!r}; "
                f"expected a combination of {HARDENING_COMPONENTS}"
            )
    return "+".join(c for c in HARDENING_COMPONENTS if c in parts)


def scheme_components(scheme) -> frozenset[str]:
    """The component transforms a scheme enables (empty for ``off``)."""
    normalized = normalize_hardening(scheme)
    if normalized is None:
        return frozenset()
    return frozenset(normalized.split("+"))


def hardening_label(scheme) -> str:
    """Display label: the canonical scheme name, ``"off"`` for ``None``."""
    return normalize_hardening(scheme) or "off"
