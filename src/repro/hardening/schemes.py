"""Hardening scheme registry and label handling.

A *hardening scheme* names a set of compiler-implemented fault-tolerance
transforms applied to MiniC modules after optimisation and before code
generation.  Two component transforms exist:

* ``dwc`` — duplicate-with-compare: integer/pointer computations are
  duplicated into shadow variables and the copies are compared before
  stores, branches and output calls;
* ``cfc`` — control-flow checking: structured blocks carry compile-time
  signatures that a runtime signature variable must reproduce at join
  points.

A third component is a *policy*, not a transform:

* ``rec`` — checkpoint-rollback recovery: when a detection component
  fires at runtime, the injector rolls the system back to the nearest
  snapshot at or before the detection point and re-executes instead of
  fail-stopping.  ``recN`` bounds the rollback attempts at N (bare
  ``rec`` means :data:`DEFAULT_RECOVERY_RETRIES`).  ``rec`` changes how
  a detection is *handled*, never what code is generated, so a
  ``dwc+rec`` binary is bit-identical to its ``dwc`` twin — see
  :func:`compile_scheme`.  A scheme with ``rec`` but no detection
  component is rejected: there is nothing to recover *from*.

Schemes compose with ``+`` (``"dwc+cfc"``); ``None``/"off" means no
hardening (the paper's baseline binaries).  Labels are normalised to a
canonical component order so ``"cfc+dwc"`` and ``"dwc+cfc"`` name the
same scenario axis value.
"""

from __future__ import annotations

import re
from typing import Optional

HARDENING_DWC = "dwc"
HARDENING_CFC = "cfc"
HARDENING_REC = "rec"

#: Component transforms plus the recovery policy, in canonical label
#: order.  ``rec`` sorts last: it modifies how detections from the
#: preceding components are handled.
HARDENING_COMPONENTS = (HARDENING_DWC, HARDENING_CFC, HARDENING_REC)

#: Components that are compiler transforms (affect the binary).  The
#: complement (``rec``) is a runtime policy stripped before compilation.
COMPILE_COMPONENTS = (HARDENING_DWC, HARDENING_CFC)

#: Rollback attempts granted by a bare ``rec`` component before the
#: injector escalates a persistent detection to fail-stop ``Detected``.
DEFAULT_RECOVERY_RETRIES = 3

#: The selectable values of the hardening campaign axis.  Selective
#: DWC variants (``dwcN``) are additionally accepted by
#: :func:`normalize_hardening` and compose like ``dwc`` does.
HARDENING_SCHEMES = ("off", "dwc", "cfc", "dwc+cfc")

#: ``dwcN``: duplicate-with-compare restricted to the N most vulnerable
#: integer variables of each function, as ranked by the static
#: vulnerability analysis (see docs/static_analysis.md).
_DWC_TOP_N = re.compile(r"^dwc([1-9]\d*)$")

#: ``recN``: checkpoint-rollback recovery bounded at N attempts.
_REC_RETRIES = re.compile(r"^rec([1-9]\d*)$")


def _parse_component(part: str) -> tuple[str, Optional[int]]:
    """Split a scheme component into (base component, optional N)."""
    if part in HARDENING_COMPONENTS:
        return part, None
    match = _DWC_TOP_N.match(part)
    if match:
        return HARDENING_DWC, int(match.group(1))
    match = _REC_RETRIES.match(part)
    if match:
        return HARDENING_REC, int(match.group(1))
    raise ValueError(
        f"unknown hardening component {part!r}; expected a combination of "
        f"{HARDENING_COMPONENTS} or a selective 'dwcN' / bounded 'recN' variant"
    )


def normalize_hardening(scheme) -> Optional[str]:
    """Canonical scheme label, or ``None`` for the unhardened baseline.

    Accepts ``None``, ``"off"``/``"none"``/``""`` (all meaning no
    hardening) or a ``+``-joined combination of component names in any
    order — where the DWC component may be the selective ``dwcN`` form
    (e.g. ``"dwc4"``, ``"cfc+dwc4"``) and the recovery component the
    bounded ``recN`` form (``"dwc+rec2"``); raises ``ValueError`` for
    unknown components, contradictory combinations, or recovery
    without a detection component to trigger it.
    """
    if scheme is None:
        return None
    label = str(scheme).strip().lower()
    if label in ("", "off", "none"):
        return None
    parts = [part for part in label.split("+") if part]
    seen: dict[str, str] = {}
    for part in parts:
        base, _top = _parse_component(part)
        if base in seen and seen[base] != part:
            raise ValueError(
                f"conflicting {base!r} variants {seen[base]!r} and {part!r} "
                f"in scheme {scheme!r}"
            )
        seen[base] = part
    if HARDENING_REC in seen and not any(c in seen for c in COMPILE_COMPONENTS):
        raise ValueError(
            f"recovery scheme {scheme!r} has no detection component; "
            f"'rec' needs 'dwc' or 'cfc' to raise the detections it recovers from"
        )
    return "+".join(seen[c] for c in HARDENING_COMPONENTS if c in seen)


def scheme_components(scheme) -> frozenset[str]:
    """The component transforms a scheme enables (empty for ``off``).

    Selective variants report their base component: ``"dwc4+cfc"``
    yields ``{"dwc", "cfc"}``.
    """
    normalized = normalize_hardening(scheme)
    if normalized is None:
        return frozenset()
    return frozenset(_parse_component(part)[0] for part in normalized.split("+"))


def dwc_top_n(scheme) -> Optional[int]:
    """The selective-DWC budget: N for ``dwcN`` schemes, else ``None``.

    ``None`` means either no DWC at all or full (unrestricted) DWC —
    disambiguate with :func:`scheme_components`.
    """
    normalized = normalize_hardening(scheme)
    if normalized is None:
        return None
    for part in normalized.split("+"):
        base, top = _parse_component(part)
        if base == HARDENING_DWC:
            return top
    return None


def compile_scheme(scheme) -> Optional[str]:
    """The scheme the *compiler* sees: canonical label minus ``rec``.

    Recovery is a runtime policy of the injector, not a code transform:
    stripping it here is what guarantees a ``dwc+rec`` scenario runs
    the bit-identical binary of its ``dwc`` twin (same module names,
    same program cache entry, same golden run).
    """
    normalized = normalize_hardening(scheme)
    if normalized is None:
        return None
    parts = [p for p in normalized.split("+") if _parse_component(p)[0] != HARDENING_REC]
    return "+".join(parts) or None


def recovery_retries(scheme) -> Optional[int]:
    """Bounded rollback attempts: N for ``recN``, the default for bare
    ``rec``, ``None`` when the scheme carries no recovery policy."""
    normalized = normalize_hardening(scheme)
    if normalized is None:
        return None
    for part in normalized.split("+"):
        base, bound = _parse_component(part)
        if base == HARDENING_REC:
            return bound if bound is not None else DEFAULT_RECOVERY_RETRIES
    return None


def hardening_label(scheme) -> str:
    """Display label: the canonical scheme name, ``"off"`` for ``None``."""
    return normalize_hardening(scheme) or "off"
