"""Hardening scheme registry and label handling.

A *hardening scheme* names a set of compiler-implemented fault-tolerance
transforms applied to MiniC modules after optimisation and before code
generation.  Two component transforms exist:

* ``dwc`` — duplicate-with-compare: integer/pointer computations are
  duplicated into shadow variables and the copies are compared before
  stores, branches and output calls;
* ``cfc`` — control-flow checking: structured blocks carry compile-time
  signatures that a runtime signature variable must reproduce at join
  points.

Schemes compose with ``+`` (``"dwc+cfc"``); ``None``/"off" means no
hardening (the paper's baseline binaries).  Labels are normalised to a
canonical component order so ``"cfc+dwc"`` and ``"dwc+cfc"`` name the
same scenario axis value.
"""

from __future__ import annotations

import re
from typing import Optional

HARDENING_DWC = "dwc"
HARDENING_CFC = "cfc"

#: Component transforms, in canonical label order.
HARDENING_COMPONENTS = (HARDENING_DWC, HARDENING_CFC)

#: The selectable values of the hardening campaign axis.  Selective
#: DWC variants (``dwcN``) are additionally accepted by
#: :func:`normalize_hardening` and compose like ``dwc`` does.
HARDENING_SCHEMES = ("off", "dwc", "cfc", "dwc+cfc")

#: ``dwcN``: duplicate-with-compare restricted to the N most vulnerable
#: integer variables of each function, as ranked by the static
#: vulnerability analysis (see docs/static_analysis.md).
_DWC_TOP_N = re.compile(r"^dwc([1-9]\d*)$")


def _parse_component(part: str) -> tuple[str, Optional[int]]:
    """Split a scheme component into (base component, optional top-N)."""
    if part in HARDENING_COMPONENTS:
        return part, None
    match = _DWC_TOP_N.match(part)
    if match:
        return HARDENING_DWC, int(match.group(1))
    raise ValueError(
        f"unknown hardening component {part!r}; expected a combination of "
        f"{HARDENING_COMPONENTS} or a selective 'dwcN' variant"
    )


def normalize_hardening(scheme) -> Optional[str]:
    """Canonical scheme label, or ``None`` for the unhardened baseline.

    Accepts ``None``, ``"off"``/``"none"``/``""`` (all meaning no
    hardening) or a ``+``-joined combination of component names in any
    order — where the DWC component may be the selective ``dwcN`` form
    (e.g. ``"dwc4"``, ``"cfc+dwc4"``); raises ``ValueError`` for
    unknown components or contradictory combinations.
    """
    if scheme is None:
        return None
    label = str(scheme).strip().lower()
    if label in ("", "off", "none"):
        return None
    parts = [part for part in label.split("+") if part]
    seen: dict[str, str] = {}
    for part in parts:
        base, _top = _parse_component(part)
        if base in seen and seen[base] != part:
            raise ValueError(
                f"conflicting {base!r} variants {seen[base]!r} and {part!r} "
                f"in scheme {scheme!r}"
            )
        seen[base] = part
    return "+".join(seen[c] for c in HARDENING_COMPONENTS if c in seen)


def scheme_components(scheme) -> frozenset[str]:
    """The component transforms a scheme enables (empty for ``off``).

    Selective variants report their base component: ``"dwc4+cfc"``
    yields ``{"dwc", "cfc"}``.
    """
    normalized = normalize_hardening(scheme)
    if normalized is None:
        return frozenset()
    return frozenset(_parse_component(part)[0] for part in normalized.split("+"))


def dwc_top_n(scheme) -> Optional[int]:
    """The selective-DWC budget: N for ``dwcN`` schemes, else ``None``.

    ``None`` means either no DWC at all or full (unrestricted) DWC —
    disambiguate with :func:`scheme_components`.
    """
    normalized = normalize_hardening(scheme)
    if normalized is None:
        return None
    for part in normalized.split("+"):
        base, top = _parse_component(part)
        if base == HARDENING_DWC:
            return top
    return None


def hardening_label(scheme) -> str:
    """Display label: the canonical scheme name, ``"off"`` for ``None``."""
    return normalize_hardening(scheme) or "off"
