"""Guest-side fault-tolerance support library.

Hardened code traps into ``__ft_fault_detected`` when a duplicate
comparison or a control-flow signature check fails.  The trap is a real
guest function (so the call shows up in the instruction stream and the
profiling statistics like any other call) whose body raises the
``FT_DETECTED`` system call; the kernel kills the process with the
``ft_detected`` fault kind, which the classifier reports as the
**Detected** outcome.

The module is linked automatically whenever a program is built with a
hardening scheme; unhardened programs do not carry it, so baseline
binaries are bit-identical to the pre-hardening compiler output.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import ExprStmt, Function, Module, call

#: Name of the guest trap function hardened code calls on a mismatch.
FT_TRAP = "__ft_fault_detected"

#: Module name of the fault-tolerance support library.
FT_MODULE_NAME = "ftlib"


def _ft_fault_detected() -> Function:
    """The trap: raise the FT_DETECTED system call (never returns)."""
    return Function(
        name=FT_TRAP,
        params=[],
        body=[ExprStmt(call("ft_fault_detected", type=ast.VOID))],
        return_type=ast.VOID,
    )


def build_ft_module() -> Module:
    return Module(name=FT_MODULE_NAME, functions=[_ft_fault_detected()], globals=[])
