"""SP — Scalar Pentadiagonal style kernel.

Solves a batch of independent tridiagonal line systems with the Thomas
algorithm (the original SP factorises scalar penta-diagonal systems
along grid lines).  Each line solve is inherently sequential; the
parallelism is across lines, matching the original benchmark's
line-sweep structure.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, Module, Return, assign, var

from repro.npb.common import FLOAT, INT, build_mains, finish_float_checksum, partial_globals

#: Number of independent lines and unknowns per line ("class T").
LINES = 8
N = 12


def _init_data() -> Function:
    return Function(
        name="init_data",
        params=[],
        locals=[("i", INT), ("t", FLOAT)],
        body=[
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(LINES * N),
                [
                    assign("t", ast.div(ast.int_to_float(ast.add(ast.mod(var("i"), ast.const(11)), ast.const(1))),
                                        ast.FloatConst(11.0))),
                    ast.store("rhs_d", var("i"), ast.add(ast.FloatConst(0.5), ast.fvar("t"))),
                    ast.store("sol", var("i"), ast.FloatConst(0.0)),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """Thomas-solve lines [lo, hi): tridiag(-1, 4, -1) x = rhs."""
    body = [
        assign("acc", ast.FloatConst(0.0)),
        ast.for_range(
            "line",
            var("lo"),
            var("hi"),
            [
                assign("base", ast.mul(var("line"), ast.const(N))),
                # forward elimination (cp/dp are per-worker scratch rows)
                assign("scratch", ast.mul(var("wid"), ast.const(N))),
                ast.store("work_c", var("scratch"), ast.div(ast.FloatConst(-1.0), ast.FloatConst(4.0))),
                ast.store("work_d", var("scratch"),
                          ast.div(ast.floadx("rhs_d", var("base")), ast.FloatConst(4.0))),
                ast.for_range(
                    "i",
                    ast.const(1),
                    ast.const(N),
                    [
                        assign("m", ast.add(ast.FloatConst(4.0),
                                            ast.floadx("work_c", ast.add(var("scratch"), ast.sub(var("i"), ast.const(1)))))),
                        ast.store("work_c", ast.add(var("scratch"), var("i")),
                                  ast.div(ast.FloatConst(-1.0), ast.fvar("m"))),
                        assign("dprev", ast.floadx("work_d", ast.add(var("scratch"), ast.sub(var("i"), ast.const(1))))),
                        ast.store("work_d", ast.add(var("scratch"), var("i")),
                                  ast.div(ast.add(ast.floadx("rhs_d", ast.add(var("base"), var("i"))), ast.fvar("dprev")),
                                          ast.fvar("m"))),
                    ],
                ),
                # back substitution
                ast.store("sol", ast.add(var("base"), ast.const(N - 1)),
                          ast.floadx("work_d", ast.add(var("scratch"), ast.const(N - 1)))),
                ast.for_range(
                    "i",
                    ast.const(N - 2),
                    ast.const(-1),
                    [
                        assign("xn", ast.floadx("sol", ast.add(var("base"), ast.add(var("i"), ast.const(1))))),
                        ast.store("sol", ast.add(var("base"), var("i")),
                                  ast.sub(ast.floadx("work_d", ast.add(var("scratch"), var("i"))),
                                          ast.mul(ast.floadx("work_c", ast.add(var("scratch"), var("i"))), ast.fvar("xn")))),
                    ],
                    step=ast.const(-1),
                ),
                ast.for_range(
                    "i",
                    ast.const(0),
                    ast.const(N),
                    [assign("acc", ast.add(ast.fvar("acc"), ast.floadx("sol", ast.add(var("base"), var("i")))))],
                ),
            ],
        ),
        ast.store("partial_f", var("wid"), ast.add(ast.floadx("partial_f", var("wid")), ast.fvar("acc"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[
            ("line", INT), ("base", INT), ("scratch", INT), ("i", INT),
            ("m", FLOAT), ("dprev", FLOAT), ("xn", FLOAT), ("acc", FLOAT),
        ],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_float_checksum(),
        *build_mains(mode, LINES, mpi_reduce=("float",)),
    ]
    globals_ = [
        GlobalVar("rhs_d", FLOAT, LINES * N),
        GlobalVar("sol", FLOAT, LINES * N),
        GlobalVar("work_c", FLOAT, 16 * N),
        GlobalVar("work_d", FLOAT, 16 * N),
        *partial_globals(),
    ]
    return Module(name=f"sp_{mode}", functions=functions, globals=globals_)
