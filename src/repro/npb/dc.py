"""DC — Data Cube style kernel (serial and OpenMP only).

Aggregates a synthetic fact table into a small three-dimensional data
cube using per-worker private cubes merged by the master, which mirrors
how the original DC benchmark materialises group-by views.  Pure
integer, branch- and memory-heavy work; like the original, DC has no
MPI variant.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, Module, Return, assign, call, var

from repro.npb.common import INT, MAX_WORKERS, build_mains, partial_globals

#: Fact-table rows and cube dimensions ("class T").
ROWS = 512
DIM_A = 5
DIM_B = 4
DIM_C = 3
CUBE_CELLS = DIM_A * DIM_B * DIM_C


def _init_data() -> Function:
    return Function(
        name="init_data",
        params=[],
        locals=[("i", INT), ("seed", INT)],
        body=[
            assign("seed", ast.const(90210)),
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(ROWS),
                [
                    assign("seed", call("lcg_step", var("seed"))),
                    ast.store("fact", var("i"), ast.mod(var("seed"), ast.const(1000))),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """Aggregate rows [lo, hi) into this worker's private cube."""
    body = [
        assign("cube_base", ast.mul(var("wid"), ast.const(CUBE_CELLS))),
        ast.for_range(
            "c", ast.const(0), ast.const(CUBE_CELLS),
            [ast.store("cube", ast.add(var("cube_base"), var("c")), ast.const(0))],
        ),
        ast.for_range(
            "i",
            var("lo"),
            var("hi"),
            [
                assign("measure", ast.load("fact", var("i"))),
                assign("da", ast.mod(var("i"), ast.const(DIM_A))),
                assign("db", ast.mod(ast.div(var("i"), ast.const(DIM_A)), ast.const(DIM_B))),
                assign("dc", ast.mod(ast.div(var("i"), ast.const(DIM_A * DIM_B)), ast.const(DIM_C))),
                assign("cell", ast.add(ast.mul(ast.add(ast.mul(var("dc"), ast.const(DIM_B)), var("db")), ast.const(DIM_A)), var("da"))),
                assign("slot", ast.add(var("cube_base"), var("cell"))),
                ast.store("cube", var("slot"), ast.add(ast.load("cube", var("slot")), var("measure"))),
            ],
        ),
        # weighted cube checksum for this worker
        assign("wsum", ast.const(0)),
        ast.for_range(
            "c",
            ast.const(0),
            ast.const(CUBE_CELLS),
            [
                assign("wsum", ast.add(var("wsum"),
                                       ast.mul(ast.load("cube", ast.add(var("cube_base"), var("c"))),
                                               ast.add(var("c"), ast.const(1))))),
            ],
        ),
        ast.store("partial_i", var("wid"), ast.add(ast.load("partial_i", var("wid")), var("wsum"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[
            ("i", INT), ("c", INT), ("cube_base", INT), ("measure", INT),
            ("da", INT), ("db", INT), ("dc", INT), ("cell", INT), ("slot", INT), ("wsum", INT),
        ],
        body=body,
        return_type=INT,
    )


def _finish() -> Function:
    return Function(
        name="finish",
        params=[("nchunks", INT)],
        locals=[("pi_i", INT), ("acc_i", INT)],
        body=[
            assign("acc_i", ast.const(0)),
            ast.for_range(
                "pi_i", ast.const(0), var("nchunks"),
                [assign("acc_i", ast.add(var("acc_i"), ast.load("partial_i", var("pi_i"))))],
            ),
            ast.ExprStmt(call("print_int", var("acc_i"), type=ast.VOID)),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    if mode == "mpi":
        raise ValueError("DC has no MPI implementation (as in the original NPB suite)")
    functions = [
        _init_data(),
        _kernel_chunk(),
        _finish(),
        *build_mains(mode, ROWS, mpi_reduce=("int",)),
    ]
    globals_ = [
        GlobalVar("fact", INT, ROWS),
        GlobalVar("cube", INT, CUBE_CELLS * MAX_WORKERS),
        *partial_globals(),
    ]
    return Module(name=f"dc_{mode}", functions=functions, globals=globals_)
