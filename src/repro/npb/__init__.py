"""NAS Parallel Benchmark (NPB) style workloads.

Each application is a scaled-down MiniC implementation of the
corresponding NPB kernel, available in serial, OpenMP-like and MPI-like
variants exactly as in the paper's 130-scenario evaluation matrix:

========  =================================  ======  ======  ======
 app       algorithmic character              serial   OMP     MPI
========  =================================  ======  ======  ======
 BT        block-tridiagonal solver            yes     yes    yes (no dual)
 CG        conjugate gradient                  yes     yes    yes
 DC        data-cube aggregation               yes     yes    no
 DT        data-traffic graph                  no      no     yes
 EP        embarrassingly parallel Monte Carlo yes     yes    yes
 FT        fast Fourier transform              yes     yes    yes
 IS        integer bucket sort                 yes     yes    yes
 LU        SSOR-style relaxation               yes     yes    yes
 MG        multigrid V-cycle                   yes     yes    yes
 SP        scalar-pentadiagonal solver         yes     yes    yes (no dual)
 UA        unstructured adaptive mesh          yes     yes    no
========  =================================  ======  ======  ======

The problem sizes are "class T" (tiny) so that full fault-injection
campaigns run on a single workstation; see DESIGN.md for the scale
substitution rationale.
"""

from repro.npb.suite import (
    APPLICATIONS,
    Scenario,
    ScenarioSuite,
    build_program,
    build_scenario_suite,
)

__all__ = [
    "APPLICATIONS",
    "Scenario",
    "ScenarioSuite",
    "build_program",
    "build_scenario_suite",
]
