"""DT — Data Traffic kernel (MPI only).

Ranks form a ring; each round every rank produces a deterministic data
block, sends it to its successor, receives from its predecessor and
folds the received block into a running checksum.  Communication
dominates computation, as in the original DT graph benchmark.  Like the
original, DT only exists as an MPI program.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import (
    ExprStmt,
    Function,
    GlobalAddr,
    GlobalVar,
    If,
    Module,
    Return,
    assign,
    call,
    var,
)

from repro.npb.common import INT, partial_globals

#: Block size (ints) and exchange rounds ("class T").
BLOCK = 48
ROUNDS = 3
TAG_DATA = 7001


def _fill_block() -> Function:
    """Fill the send block deterministically from (rank, round)."""
    return Function(
        name="fill_block",
        params=[("rank", INT), ("round", INT)],
        locals=[("i", INT), ("seed", INT)],
        body=[
            assign("seed", ast.add(ast.mul(var("rank"), ast.const(7919)), ast.add(ast.mul(var("round"), ast.const(104729)), ast.const(17)))),
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(BLOCK),
                [
                    assign("seed", call("lcg_step", var("seed"))),
                    ast.store("send_buf", var("i"), ast.mod(var("seed"), ast.const(100000))),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _consume_block() -> Function:
    """Fold the received block into the running checksum."""
    return Function(
        name="consume_block",
        params=[],
        locals=[("i", INT), ("acc", INT)],
        body=[
            assign("acc", ast.const(0)),
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(BLOCK),
                [assign("acc", ast.add(var("acc"), ast.mul(ast.load("recv_buf", var("i")), ast.add(ast.mod(var("i"), ast.const(7)), ast.const(1)))))],
            ),
            Return(var("acc")),
        ],
        return_type=INT,
    )


def _main() -> Function:
    body = [
        assign("checksum", ast.const(0)),
        assign("succ", ast.mod(ast.add(var("rank"), ast.const(1)), var("nranks"))),
        assign("pred", ast.mod(ast.add(var("rank"), ast.sub(var("nranks"), ast.const(1))), var("nranks"))),
        ast.for_range(
            "round",
            ast.const(0),
            ast.const(ROUNDS),
            [
                ExprStmt(call("fill_block", var("rank"), var("round"))),
                ExprStmt(call("mpi_send_ints", var("succ"), GlobalAddr("send_buf"), ast.const(BLOCK), ast.const(TAG_DATA))),
                ExprStmt(call("mpi_recv_ints", var("pred"), GlobalAddr("recv_buf"), ast.const(BLOCK), ast.const(TAG_DATA))),
                assign("checksum", ast.add(var("checksum"), call("consume_block"))),
                ExprStmt(call("mpi_barrier")),
            ],
        ),
        ast.store("partial_i", ast.const(0), var("checksum")),
        ast.store("partial_i", ast.const(0), call("mpi_allreduce_sum_int", ast.load("partial_i", ast.const(0)))),
        If(ast.eq(var("rank"), ast.const(0)), [ExprStmt(call("print_int", ast.load("partial_i", ast.const(0)), type=ast.VOID))]),
        ExprStmt(call("mpi_finalize")),
        Return(ast.const(0)),
    ]
    return Function(
        name="main",
        params=[("rank", INT), ("nranks", INT), ("nthreads", INT)],
        locals=[("checksum", INT), ("succ", INT), ("pred", INT), ("round", INT)],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    if mode != "mpi":
        raise ValueError("DT only exists as an MPI program (as in the original NPB suite)")
    functions = [_fill_block(), _consume_block(), _main()]
    globals_ = [
        GlobalVar("send_buf", INT, BLOCK),
        GlobalVar("recv_buf", INT, BLOCK),
        *partial_globals(),
    ]
    return Module(name="dt_mpi", functions=functions, globals=globals_)
