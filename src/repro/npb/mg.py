"""MG — Multigrid style kernel.

A two-level V-cycle on a 1D Poisson-like problem: smoothing on the fine
grid, restriction to a coarse grid, coarse smoothing, prolongation and
a residual-norm reduction.  The strided and multi-array traffic mirrors
the memory-heavy behaviour of the original MG benchmark (the paper uses
MG in Table 3 as a high-UT, memory-bound example).
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, If, Module, Return, assign, var

from repro.npb.common import FLOAT, INT, build_mains, finish_float_checksum, partial_globals

#: Fine grid size and V-cycle count ("class T").
FINE = 64
COARSE = FINE // 2
CYCLES = 2


def _init_data() -> Function:
    return Function(
        name="init_data",
        params=[],
        locals=[("i", INT), ("t", FLOAT)],
        body=[
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(FINE),
                [
                    assign("t", ast.div(ast.int_to_float(var("i")), ast.FloatConst(float(FINE)))),
                    ast.store("rhs", var("i"), ast.sub(ast.fvar("t"), ast.mul(ast.fvar("t"), ast.fvar("t")))),
                    ast.store("u_fine", var("i"), ast.FloatConst(0.0)),
                ],
            ),
            ast.for_range("i", ast.const(0), ast.const(COARSE), [ast.store("u_coarse", var("i"), ast.FloatConst(0.0))]),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """One V-cycle restricted to fine-grid points [lo, hi)."""
    body = [
        assign("res", ast.FloatConst(0.0)),
        # pre-smoothing on the fine grid (damped Jacobi, in place)
        ast.for_range(
            "i",
            var("lo"),
            var("hi"),
            [
                If(
                    ast.gt(var("i"), ast.const(0)),
                    [
                        If(
                            ast.lt(var("i"), ast.const(FINE - 1)),
                            [
                                assign("nb", ast.add(ast.floadx("u_fine", ast.sub(var("i"), ast.const(1))),
                                                     ast.floadx("u_fine", ast.add(var("i"), ast.const(1))))),
                                assign("newv", ast.mul(ast.FloatConst(0.5),
                                                       ast.add(ast.fvar("nb"), ast.floadx("rhs", var("i"))))),
                                ast.store("u_fine", var("i"),
                                          ast.add(ast.mul(ast.FloatConst(0.6), ast.floadx("u_fine", var("i"))),
                                                  ast.mul(ast.FloatConst(0.4), ast.fvar("newv")))),
                            ],
                        )
                    ],
                ),
            ],
        ),
        # restriction: coarse point j covers fine points 2j and 2j+1
        ast.for_range(
            "j",
            ast.div(var("lo"), ast.const(2)),
            ast.div(var("hi"), ast.const(2)),
            [
                assign("fa", ast.floadx("u_fine", ast.mul(var("j"), ast.const(2)))),
                assign("fb", ast.floadx("u_fine", ast.add(ast.mul(var("j"), ast.const(2)), ast.const(1)))),
                ast.store("u_coarse", var("j"), ast.mul(ast.FloatConst(0.5), ast.add(ast.fvar("fa"), ast.fvar("fb")))),
            ],
        ),
        # coarse smoothing + prolongation back onto the fine grid
        ast.for_range(
            "j",
            ast.div(var("lo"), ast.const(2)),
            ast.div(var("hi"), ast.const(2)),
            [
                assign("cv", ast.mul(ast.FloatConst(0.9), ast.floadx("u_coarse", var("j")))),
                ast.store("u_coarse", var("j"), ast.fvar("cv")),
                ast.store("u_fine", ast.mul(var("j"), ast.const(2)),
                          ast.add(ast.floadx("u_fine", ast.mul(var("j"), ast.const(2))),
                                  ast.mul(ast.FloatConst(0.1), ast.fvar("cv")))),
                ast.store("u_fine", ast.add(ast.mul(var("j"), ast.const(2)), ast.const(1)),
                          ast.add(ast.floadx("u_fine", ast.add(ast.mul(var("j"), ast.const(2)), ast.const(1))),
                                  ast.mul(ast.FloatConst(0.1), ast.fvar("cv")))),
            ],
        ),
        # residual accumulation over the chunk
        ast.for_range(
            "i",
            var("lo"),
            var("hi"),
            [
                assign("r", ast.sub(ast.floadx("rhs", var("i")), ast.floadx("u_fine", var("i")))),
                assign("res", ast.add(ast.fvar("res"), ast.mul(ast.fvar("r"), ast.fvar("r")))),
            ],
        ),
        ast.store("partial_f", var("wid"), ast.add(ast.floadx("partial_f", var("wid")), ast.fvar("res"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[
            ("i", INT), ("j", INT),
            ("nb", FLOAT), ("newv", FLOAT), ("fa", FLOAT), ("fb", FLOAT),
            ("cv", FLOAT), ("r", FLOAT), ("res", FLOAT),
        ],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_float_checksum(),
        *build_mains(mode, FINE, mpi_reduce=("float",), iterations=CYCLES),
    ]
    globals_ = [
        GlobalVar("u_fine", FLOAT, FINE),
        GlobalVar("u_coarse", FLOAT, COARSE),
        GlobalVar("rhs", FLOAT, FINE),
        *partial_globals(),
    ]
    return Module(name=f"mg_{mode}", functions=functions, globals=globals_)
