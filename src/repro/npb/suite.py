"""The 130-scenario evaluation matrix of the paper.

A *scenario* is one (application, parallelisation model, core count,
ISA) combination.  The availability matrix follows Section 3.3.2: ten
serial applications, ten OpenMP applications and nine MPI applications,
with BT and SP lacking an MPI dual-core configuration — which yields
exactly 130 scenarios over the two ISAs.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Optional

from repro.compiler.linker import link
from repro.hardening.schemes import (
    compile_scheme,
    dwc_top_n,
    hardening_label,
    normalize_hardening,
)
from repro.isa.arch import ArchSpec, get_arch
from repro.isa.program import Program
from repro.npb import bt, cg, dc, dt, ep, ft, is_sort, lu, mg, sp, ua
from repro.npb.common import MPI, OMP, SERIAL
from repro.runtime import runtime_modules
from repro.soc.multicore import MulticoreSystem, build_system

#: Application registry: name -> (module builder, availability per mode).
APPLICATIONS = {
    "BT": {"builder": bt.build_module, "serial": True, "omp": True, "mpi": True, "mpi_core_counts": (1, 4)},
    "CG": {"builder": cg.build_module, "serial": True, "omp": True, "mpi": True, "mpi_core_counts": (1, 2, 4)},
    "DC": {"builder": dc.build_module, "serial": True, "omp": True, "mpi": False, "mpi_core_counts": ()},
    "DT": {"builder": dt.build_module, "serial": False, "omp": False, "mpi": True, "mpi_core_counts": (1, 2, 4)},
    "EP": {"builder": ep.build_module, "serial": True, "omp": True, "mpi": True, "mpi_core_counts": (1, 2, 4)},
    "FT": {"builder": ft.build_module, "serial": True, "omp": True, "mpi": True, "mpi_core_counts": (1, 2, 4)},
    "IS": {"builder": is_sort.build_module, "serial": True, "omp": True, "mpi": True, "mpi_core_counts": (1, 2, 4)},
    "LU": {"builder": lu.build_module, "serial": True, "omp": True, "mpi": True, "mpi_core_counts": (1, 2, 4)},
    "MG": {"builder": mg.build_module, "serial": True, "omp": True, "mpi": True, "mpi_core_counts": (1, 2, 4)},
    "SP": {"builder": sp.build_module, "serial": True, "omp": True, "mpi": True, "mpi_core_counts": (1, 4)},
    "UA": {"builder": ua.build_module, "serial": True, "omp": True, "mpi": False, "mpi_core_counts": ()},
}

OMP_CORE_COUNTS = (1, 2, 4)
ISAS = ("armv7", "armv8")


def normalize_target_mix(mix) -> Optional[tuple[tuple[str, float], ...]]:
    """Canonical, hashable form of a fault-target mix.

    Accepts a ``{kind: weight}`` mapping or an iterable of
    ``(kind, weight)`` pairs; returns a tuple of pairs (insertion order
    preserved — it defines the cumulative draw order of the fault
    model), or ``None`` for the default register-file mix.  Weight
    validation happens in ``FaultModel``.
    """
    if mix is None:
        return None
    items = mix.items() if hasattr(mix, "items") else mix
    return tuple((str(kind), float(weight)) for kind, weight in items)


def format_target_mix(mix) -> str:
    """Compact mix tag (e.g. ``gpr0.6+memory0.3+cache0.1``)."""
    normalized = normalize_target_mix(mix)
    if normalized is None:
        return "default"
    return "+".join(f"{kind}{weight:g}" for kind, weight in normalized)


#: One ``kind``+``weight`` segment of a target-mix label.  Kinds are
#: alphabetic (gpr, fpr, pc, memory, cache); the weight is a %g float.
_MIX_SEGMENT = re.compile(r"^([a-z]+)([-+0-9.eE]+)$")


def parse_target_mix_label(label: str) -> Optional[tuple[tuple[str, float], ...]]:
    """Invert :func:`format_target_mix` (``"default"`` comes back as None)."""
    if label is None or label == "default":
        return None
    pairs = []
    for segment in label.split("+"):
        match = _MIX_SEGMENT.match(segment)
        if match is None:
            raise ValueError(f"unparseable target-mix segment {segment!r} in label {label!r}")
        pairs.append((match.group(1), float(match.group(2))))
    return normalize_target_mix(pairs)


@dataclass(frozen=True)
class Scenario:
    """One fault-injection scenario of the evaluation matrix.

    ``target_mix`` is the optional fault-target axis: a tuple of
    ``(kind, weight)`` pairs (see :func:`normalize_target_mix`) that
    overrides the campaign-level mix, letting one suite sweep register,
    memory and cache fault dimensions side by side.  ``None`` keeps the
    paper's register-file campaign.

    ``hardening`` is the software-hardening axis: a canonical scheme
    label (``"dwc"``, ``"cfc"``, ``"dwc+cfc"`` — see
    :mod:`repro.hardening`) selecting the compiler-implemented
    fault-tolerance transforms applied to the application module.
    ``None`` keeps the paper's unhardened binaries.
    """

    app: str
    mode: str  # "serial", "omp" or "mpi"
    cores: int
    isa: str
    target_mix: Optional[tuple[tuple[str, float], ...]] = None
    hardening: Optional[str] = None

    def __post_init__(self):
        # Canonicalise the scheme label at construction so directly
        # built scenarios ("cfc+dwc", "off") get the same scenario_id
        # (and store shards) as swept or deserialised ones.
        object.__setattr__(self, "hardening", normalize_hardening(self.hardening))

    @property
    def scenario_id(self) -> str:
        if self.mode == SERIAL:
            label = "SER-1"
        else:
            label = f"{self.mode.upper()}-{self.cores}"
        base = f"{self.app}-{label}-{self.isa}"
        if self.target_mix is not None:
            base = f"{base}-{self.target_mix_label}"
        if self.hardening is not None:
            base = f"{base}-{self.hardening}"
        return base

    @property
    def target_mix_label(self) -> str:
        """Compact mix tag (e.g. ``gpr0.6+memory0.3+cache0.1``)."""
        return format_target_mix(self.target_mix)

    def with_target_mix(self, mix) -> "Scenario":
        """A copy of this scenario carrying the given fault-target mix."""
        return replace(self, target_mix=normalize_target_mix(mix))

    def with_hardening(self, scheme) -> "Scenario":
        """A copy of this scenario built with the given hardening scheme."""
        return replace(self, hardening=normalize_hardening(scheme))

    @property
    def hardening_label(self) -> str:
        """Display label of the hardening axis (``"off"`` when unhardened)."""
        return hardening_label(self.hardening)

    def target_mix_dict(self) -> Optional[dict[str, float]]:
        """The mix as the mapping ``FaultModel`` consumes (None = default)."""
        return None if self.target_mix is None else dict(self.target_mix)

    @property
    def api_label(self) -> str:
        """The bar label used in Figures 2 and 3 (SER-1, MPI-2, OMP-4, ...)."""
        if self.mode == SERIAL:
            return "SER-1"
        return f"{self.mode.upper()}-{self.cores}"

    def describe(self) -> dict:
        return {
            "scenario_id": self.scenario_id,
            "app": self.app,
            "mode": self.mode,
            "cores": self.cores,
            "isa": self.isa,
            "target_mix": self.target_mix_label,
            "hardening": self.hardening_label,
        }

    def as_dict(self) -> dict:
        """Full-fidelity serialisation (unlike :meth:`describe`, which
        renders the mix as a display label)."""
        return {
            "app": self.app,
            "mode": self.mode,
            "cores": self.cores,
            "isa": self.isa,
            "target_mix": None if self.target_mix is None else [list(pair) for pair in self.target_mix],
            "hardening": self.hardening,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`as_dict` output (JSON-safe).

        Payloads written before the hardening axis existed carry no
        ``hardening`` key and come back as unhardened scenarios.
        """
        return cls(
            app=str(payload["app"]),
            mode=str(payload["mode"]),
            cores=int(payload["cores"]),
            isa=str(payload["isa"]),
            target_mix=normalize_target_mix(payload.get("target_mix")),
            hardening=normalize_hardening(payload.get("hardening")),
        )


@dataclass
class ScenarioSuite:
    """The full list of scenarios for one or both ISAs."""

    scenarios: list[Scenario]

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    def filter(self, apps=None, modes=None, isas=None, core_counts=None, hardenings=None) -> "ScenarioSuite":
        if hardenings is not None:
            hardenings = {normalize_hardening(scheme) for scheme in hardenings}
        selected = [
            s
            for s in self.scenarios
            if (apps is None or s.app in apps)
            and (modes is None or s.mode in modes)
            and (isas is None or s.isa in isas)
            and (core_counts is None or s.cores in core_counts)
            and (hardenings is None or s.hardening in hardenings)
        ]
        return ScenarioSuite(selected)

    def by_isa(self, isa: str) -> "ScenarioSuite":
        return self.filter(isas=[isa])

    def with_target_mix(self, mix) -> "ScenarioSuite":
        """Every scenario of the suite carrying the given fault-target mix."""
        return ScenarioSuite([scenario.with_target_mix(mix) for scenario in self.scenarios])

    def sweep_target_mixes(self, mixes) -> "ScenarioSuite":
        """The cross product of this suite with several fault-target mixes.

        ``mixes`` is an iterable of mixes (``None`` keeps the default
        register campaign); the result opens the target dimension as one
        more campaign axis next to application, API, core count and ISA.
        """
        scenarios = [
            scenario.with_target_mix(mix) if mix is not None else scenario
            for mix in mixes
            for scenario in self.scenarios
        ]
        return ScenarioSuite(scenarios)

    def with_hardening(self, scheme) -> "ScenarioSuite":
        """Every scenario of the suite built with the given hardening scheme."""
        return ScenarioSuite([scenario.with_hardening(scheme) for scenario in self.scenarios])

    def sweep_hardenings(self, schemes) -> "ScenarioSuite":
        """The cross product of this suite with several hardening schemes.

        ``schemes`` is an iterable of scheme labels (``None``/``"off"``
        keeps the unhardened baseline); the result opens software
        hardening as one more campaign axis next to application, API,
        core count, ISA and fault-target mix.  Schemes that normalise
        to the same label are swept once — a duplicate would produce
        colliding scenario ids and a redundant campaign.
        """
        seen: set = set()
        unique: list = []
        for scheme in schemes:
            normalized = normalize_hardening(scheme)
            if normalized not in seen:
                seen.add(normalized)
                unique.append(normalized)
        scenarios = [
            scenario.with_hardening(scheme)
            for scheme in unique
            for scenario in self.scenarios
        ]
        return ScenarioSuite(scenarios)


def scenarios_for_isa(isa: str) -> list[Scenario]:
    """The 65 scenarios of one ISA (10 serial + 30 OpenMP + 25 MPI)."""
    scenarios: list[Scenario] = []
    for app, spec in sorted(APPLICATIONS.items()):
        if spec["serial"]:
            scenarios.append(Scenario(app=app, mode=SERIAL, cores=1, isa=isa))
        if spec["omp"]:
            for cores in OMP_CORE_COUNTS:
                scenarios.append(Scenario(app=app, mode=OMP, cores=cores, isa=isa))
        if spec["mpi"]:
            for cores in spec["mpi_core_counts"]:
                scenarios.append(Scenario(app=app, mode=MPI, cores=cores, isa=isa))
    return scenarios


def build_scenario_suite(isas=ISAS) -> ScenarioSuite:
    """Build the full scenario matrix (130 scenarios for both ISAs)."""
    scenarios: list[Scenario] = []
    for isa in isas:
        scenarios.extend(scenarios_for_isa(isa))
    return ScenarioSuite(scenarios)


def build_program(app: str, mode: str, isa: str, hardening: Optional[str] = None) -> Program:
    """Compile and link one application variant for one ISA (cached).

    ``hardening`` selects the compiler-implemented fault-tolerance
    scheme; it is applied *selectively* to the application module (the
    guest runtime libraries stay unhardened, like system libraries a
    hardening compiler flag does not touch), so baseline binaries are
    bit-identical to the pre-hardening compiler output.  The label is
    canonicalised before the cache lookup, so ``None``/``"off"`` (and
    ``"cfc+dwc"``/``"dwc+cfc"``) share one compiled program.  The
    recovery policy component (``rec``) is stripped here: recovery is
    how the injector *handles* a detection, not a code transform, so
    ``dwc+rec`` and ``dwc`` scenarios share the bit-identical binary.
    """
    return _build_program_cached(app, mode, isa, compile_scheme(hardening))


@lru_cache(maxsize=None)
def _build_program_cached(app: str, mode: str, isa: str, hardening: Optional[str]) -> Program:
    if app not in APPLICATIONS:
        raise KeyError(f"unknown application {app!r}; expected one of {sorted(APPLICATIONS)}")
    arch = get_arch(isa)
    spec = APPLICATIONS[app]
    if not spec.get(mode, False):
        raise ValueError(f"application {app} has no {mode} implementation")
    app_module = spec["builder"](mode)
    modules = [app_module] + runtime_modules(arch, parallel_mode=mode)
    name = f"{app.lower()}.{mode}.{arch.name}"
    if hardening is not None:
        name = f"{name}.{hardening}"
    shadow_ranks = None
    if hardening is not None and dwc_top_n(hardening) is not None:
        # Selective dwcN: rank the baseline build's variables with the
        # static (profile-free) vulnerability analysis and duplicate
        # only the top N per function.  Using the unhardened program of
        # the same variant breaks the circularity of ranking a binary
        # that does not exist yet; the ranks are deterministic, so the
        # hardened build stays cacheable.
        from repro.staticlint import analyze_liveness, top_variables, variable_ranks

        baseline = _build_program_cached(app, mode, isa, None)
        ranks = variable_ranks(baseline, analyze_liveness(baseline))
        shadow_ranks = top_variables(ranks, dwc_top_n(hardening))
    return link(
        modules,
        arch,
        name=name,
        hardening=hardening,
        harden_modules=(app_module.name,),
        shadow_ranks=shadow_ranks,
    )


def create_system(
    scenario: Scenario,
    model_caches: bool = False,
    quantum: int = 20_000,
    engine: bool = True,
) -> MulticoreSystem:
    """Build the simulated processor for one scenario.

    ``engine=False`` pins the cores to the reference interpreter
    instead of the pre-decoded block engine (differential testing and
    slow-path benchmarking).
    """
    return build_system(
        scenario.isa,
        cores=scenario.cores,
        model_caches=model_caches,
        quantum=quantum,
        engine=engine,
    )


def launch_scenario(system: MulticoreSystem, scenario: Scenario, program: Program | None = None) -> None:
    """Load the scenario's workload onto a freshly built system."""
    if program is None:
        program = build_program(scenario.app, scenario.mode, scenario.isa, scenario.hardening)
    if scenario.mode == MPI:
        system.load_mpi_job(program, nranks=scenario.cores, name=scenario.app.lower())
    else:
        nthreads = scenario.cores if scenario.mode == OMP else 1
        system.load_process(program, name=scenario.app.lower(), nthreads_hint=nthreads)


def instruction_budget(scenario: Scenario, golden_instructions: int | None = None) -> int:
    """Watchdog budget for one scenario run.

    When the golden instruction count is known the budget is a multiple
    of it (a hung run is detected quickly); otherwise a generous
    per-ISA default is used.  The static default scales with the
    scenario's hardening scheme: hardened binaries legitimately execute
    several times more instructions, and a budget derived from
    *unhardened* run lengths would misfile slow hardened runs as hangs.
    """
    if golden_instructions is not None:
        return max(50_000, 4 * golden_instructions)
    budget = 8_000_000 if scenario.isa == "armv7" else 2_000_000
    compiled = compile_scheme(scenario.hardening)
    if compiled is not None:
        # dwc and cfc each roughly double the dynamic instruction count.
        # Only *compiled* components count: the rec policy never adds
        # instructions to the binary, so dwc+rec budgets like dwc.
        budget *= 2 * (1 + compiled.count("+"))
    return budget
