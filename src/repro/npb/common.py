"""Shared scaffolding for the NPB-style benchmark kernels.

Every application follows the same source organisation (mirroring how
the NPB suite shares its ``common/`` directory):

* ``init_data()`` fills the global arrays deterministically,
* ``kernel_chunk(lo, hi, wid)`` processes a contiguous chunk of the
  iteration space and accumulates per-worker partial results into the
  ``partial_f`` / ``partial_i`` arrays,
* ``finish(nchunks)`` combines the partials and prints the checksums.

:func:`build_mains` then produces the serial, OpenMP or MPI ``main``
driver around those three functions, which is exactly how the paper's
identical-source/three-variant methodology is reproduced.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import (
    ExprStmt,
    FuncAddr,
    Function,
    GlobalAddr,
    GlobalVar,
    If,
    Module,
    Return,
    assign,
    call,
    var,
)

INT = ast.INT
FLOAT = ast.FLOAT
VOID = ast.VOID

#: Maximum number of workers / ranks supported by the partial arrays.
MAX_WORKERS = 16

SERIAL = "serial"
OMP = "omp"
MPI = "mpi"
MODES = (SERIAL, OMP, MPI)


def partial_globals() -> list[GlobalVar]:
    """Per-worker partial result arrays shared by all applications."""
    return [
        GlobalVar("partial_f", FLOAT, MAX_WORKERS),
        GlobalVar("partial_i", INT, MAX_WORKERS),
    ]


def sum_partials_float(count_expr: ast.Expr, into: str = "acc_f") -> list[ast.Stmt]:
    """Statements summing ``partial_f[0:count]`` into local ``into``."""
    return [
        assign(into, ast.FloatConst(0.0)),
        ast.for_range(
            "pf_i",
            ast.const(0),
            count_expr,
            [assign(into, ast.add(ast.fvar(into), ast.floadx("partial_f", var("pf_i"))))],
        ),
    ]


def sum_partials_int(count_expr: ast.Expr, into: str = "acc_i") -> list[ast.Stmt]:
    return [
        assign(into, ast.const(0)),
        ast.for_range(
            "pi_i",
            ast.const(0),
            count_expr,
            [assign(into, ast.add(var(into), ast.load("partial_i", var("pi_i"))))],
        ),
    ]


def print_float_stmt(expr: ast.Expr) -> ast.Stmt:
    return ExprStmt(call("print_float", expr, type=VOID))


def print_int_stmt(expr: ast.Expr) -> ast.Stmt:
    return ExprStmt(call("print_int", expr, type=VOID))


def rank_chunk_stmts(total_expr: ast.Expr) -> list[ast.Stmt]:
    """Statements computing this MPI rank's ``[lo, hi)`` chunk bounds."""
    return [
        assign("chunk", ast.div(ast.add(total_expr, ast.sub(var("nranks"), ast.const(1))), var("nranks"))),
        assign("lo", ast.mul(var("rank"), var("chunk"))),
        assign("hi", ast.add(var("lo"), var("chunk"))),
        If(ast.gt(var("hi"), total_expr), [assign("hi", total_expr)]),
    ]


def build_mains(
    mode: str,
    total: int,
    kernel_fn: str = "kernel_chunk",
    init_fn: str = "init_data",
    finish_fn: str = "finish",
    mpi_reduce: tuple[str, ...] = ("float",),
    iterations: int = 1,
) -> list[Function]:
    """Build the ``main`` driver for one execution mode.

    ``iterations`` repeats the whole parallel region, which is how the
    iterative kernels express multiple sweeps without custom drivers.
    """
    total_expr = ast.const(total)
    if mode == SERIAL:
        body: list[ast.Stmt] = [
            ExprStmt(call(init_fn)),
            ast.for_range(
                "it", ast.const(0), ast.const(iterations),
                [ExprStmt(call(kernel_fn, ast.const(0), total_expr, ast.const(0)))],
            ),
            ExprStmt(call(finish_fn, ast.const(1))),
            Return(ast.const(0)),
        ]
        return [
            Function(
                name="main",
                params=[("rank", INT), ("nranks", INT), ("nthreads", INT)],
                locals=[("it", INT)],
                body=body,
                return_type=INT,
            )
        ]
    if mode == OMP:
        body = [
            ExprStmt(call("omp_init", var("nthreads"))),
            ExprStmt(call(init_fn)),
            ast.for_range(
                "it", ast.const(0), ast.const(iterations),
                [ExprStmt(call("omp_parallel_for", FuncAddr(kernel_fn), ast.const(0), total_expr))],
            ),
            ExprStmt(call(finish_fn, var("nthreads"))),
            ExprStmt(call("omp_shutdown")),
            Return(ast.const(0)),
        ]
        return [
            Function(
                name="main",
                params=[("rank", INT), ("nranks", INT), ("nthreads", INT)],
                locals=[("it", INT)],
                body=body,
                return_type=INT,
            )
        ]
    if mode == MPI:
        reduce_stmts: list[ast.Stmt] = []
        if "float" in mpi_reduce:
            reduce_stmts.append(
                ast.store("partial_f", ast.const(0),
                          call("mpi_allreduce_sum_float", ast.floadx("partial_f", ast.const(0)), type=FLOAT))
            )
        if "int" in mpi_reduce:
            reduce_stmts.append(
                ast.store("partial_i", ast.const(0),
                          call("mpi_allreduce_sum_int", ast.load("partial_i", ast.const(0))))
            )
        iteration_body: list[ast.Stmt] = [ExprStmt(call(kernel_fn, var("lo"), var("hi"), ast.const(0)))]
        if iterations > 1:
            # Iterative kernels synchronise the ranks between sweeps, which
            # keeps the MPI runtime (and its vulnerability window) exercised
            # during the whole run as in the original benchmarks.
            iteration_body.append(ExprStmt(call("mpi_barrier")))
        body = [
            ExprStmt(call(init_fn)),
            *rank_chunk_stmts(total_expr),
            ast.for_range("it", ast.const(0), ast.const(iterations), iteration_body),
            *reduce_stmts,
            If(ast.eq(var("rank"), ast.const(0)), [ExprStmt(call(finish_fn, ast.const(1)))]),
            ExprStmt(call("mpi_finalize")),
            Return(ast.const(0)),
        ]
        return [
            Function(
                name="main",
                params=[("rank", INT), ("nranks", INT), ("nthreads", INT)],
                locals=[("it", INT), ("chunk", INT), ("lo", INT), ("hi", INT)],
                body=body,
                return_type=INT,
            )
        ]
    raise ValueError(f"unknown execution mode {mode!r}")


def finish_float_checksum() -> Function:
    """Standard ``finish``: print the float checksum summed over workers."""
    return Function(
        name="finish",
        params=[("nchunks", INT)],
        locals=[("pf_i", INT), ("acc_f", FLOAT)],
        body=[
            *sum_partials_float(var("nchunks")),
            print_float_stmt(ast.fvar("acc_f")),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def finish_int_checksum() -> Function:
    """Standard ``finish``: print the integer checksum summed over workers."""
    return Function(
        name="finish",
        params=[("nchunks", INT)],
        locals=[("pi_i", INT), ("acc_i", INT)],
        body=[
            *sum_partials_int(var("nchunks")),
            print_int_stmt(var("acc_i")),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def finish_both_checksums() -> Function:
    """Print the integer checksum followed by the float checksum."""
    return Function(
        name="finish",
        params=[("nchunks", INT)],
        locals=[("pi_i", INT), ("acc_i", INT), ("pf_i", INT), ("acc_f", FLOAT)],
        body=[
            *sum_partials_int(var("nchunks")),
            print_int_stmt(var("acc_i")),
            *sum_partials_float(var("nchunks")),
            print_float_stmt(ast.fvar("acc_f")),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )
