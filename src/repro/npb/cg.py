"""CG — Conjugate Gradient style kernel.

A damped-Richardson relaxation of a symmetric tridiagonal system, which
preserves the defining traits of the NPB CG benchmark at tiny scale:
sparse matrix-vector products, vector updates and a residual-norm
reduction every sweep.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, If, Module, Return, assign, var

from repro.npb.common import FLOAT, INT, build_mains, finish_float_checksum, partial_globals

#: Unknowns and relaxation sweeps ("class T").
N = 32
SWEEPS = 4


def _init_data() -> Function:
    """b[i] follows a smooth deterministic profile; x starts at zero."""
    return Function(
        name="init_data",
        params=[],
        locals=[("i", INT), ("t", FLOAT)],
        body=[
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(N),
                [
                    assign("t", ast.div(ast.int_to_float(ast.add(var("i"), ast.const(1))), ast.FloatConst(float(N)))),
                    ast.store("vec_b", var("i"), ast.add(ast.mul(ast.fvar("t"), ast.fvar("t")), ast.FloatConst(0.5))),
                    ast.store("vec_x", var("i"), ast.FloatConst(0.0)),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """One relaxation sweep over rows [lo, hi) of the tridiagonal system.

    A = tridiag(-1, 4, -1); x[i] += 0.2 * (b[i] - (A x)[i]); the squared
    residual of the chunk is accumulated into the worker's partial.
    """
    body = [
        assign("res", ast.FloatConst(0.0)),
        ast.for_range(
            "i",
            var("lo"),
            var("hi"),
            [
                assign("ax", ast.mul(ast.FloatConst(4.0), ast.floadx("vec_x", var("i")))),
                If(
                    ast.gt(var("i"), ast.const(0)),
                    [assign("ax", ast.sub(ast.fvar("ax"), ast.floadx("vec_x", ast.sub(var("i"), ast.const(1)))))],
                ),
                If(
                    ast.lt(var("i"), ast.const(N - 1)),
                    [assign("ax", ast.sub(ast.fvar("ax"), ast.floadx("vec_x", ast.add(var("i"), ast.const(1)))))],
                ),
                assign("r", ast.sub(ast.floadx("vec_b", var("i")), ast.fvar("ax"))),
                ast.store("vec_x", var("i"), ast.add(ast.floadx("vec_x", var("i")), ast.mul(ast.FloatConst(0.2), ast.fvar("r")))),
                assign("res", ast.add(ast.fvar("res"), ast.mul(ast.fvar("r"), ast.fvar("r")))),
            ],
        ),
        ast.store("partial_f", var("wid"), ast.add(ast.floadx("partial_f", var("wid")), ast.fvar("res"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[("i", INT), ("ax", FLOAT), ("r", FLOAT), ("res", FLOAT)],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_float_checksum(),
        *build_mains(mode, N, mpi_reduce=("float",), iterations=SWEEPS),
    ]
    globals_ = [
        GlobalVar("vec_b", FLOAT, N),
        GlobalVar("vec_x", FLOAT, N),
        *partial_globals(),
    ]
    return Module(name=f"cg_{mode}", functions=functions, globals=globals_)
