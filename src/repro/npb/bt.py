"""BT — Block Tridiagonal style kernel.

The same line-solve structure as SP but with 2x2 blocks per grid point,
which multiplies the floating point work per element (block inversion
and block multiply), matching the heavier per-point arithmetic of the
original BT benchmark.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, Module, Return, assign, var

from repro.npb.common import FLOAT, INT, build_mains, finish_float_checksum, partial_globals

#: Independent block lines and block rows per line ("class T").
LINES = 6
N = 8


def _init_data() -> Function:
    return Function(
        name="init_data",
        params=[],
        locals=[("i", INT), ("t", FLOAT)],
        body=[
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(LINES * N * 2),
                [
                    assign("t", ast.div(ast.int_to_float(ast.add(ast.mod(var("i"), ast.const(9)), ast.const(1))),
                                        ast.FloatConst(9.0))),
                    ast.store("bt_rhs", var("i"), ast.add(ast.FloatConst(0.25), ast.fvar("t"))),
                    ast.store("bt_sol", var("i"), ast.FloatConst(0.0)),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """Block-Jacobi sweep over lines [lo, hi).

    Each 2x2 diagonal block D = [[5, 1], [1, 5]] is inverted analytically
    and applied to the residual of the coupled neighbouring blocks.
    """
    det = 5.0 * 5.0 - 1.0
    inv00 = 5.0 / det
    inv01 = -1.0 / det
    body = [
        assign("acc", ast.FloatConst(0.0)),
        ast.for_range(
            "line",
            var("lo"),
            var("hi"),
            [
                assign("base", ast.mul(var("line"), ast.const(N * 2))),
                ast.for_range(
                    "i",
                    ast.const(0),
                    ast.const(N),
                    [
                        assign("idx", ast.add(var("base"), ast.mul(var("i"), ast.const(2)))),
                        assign("r0", ast.floadx("bt_rhs", var("idx"))),
                        assign("r1", ast.floadx("bt_rhs", ast.add(var("idx"), ast.const(1)))),
                        # couple with the previous block of the line (off-diagonal -1)
                        ast.If(
                            ast.gt(var("i"), ast.const(0)),
                            [
                                assign("r0", ast.add(ast.fvar("r0"), ast.floadx("bt_sol", ast.sub(var("idx"), ast.const(2))))),
                                assign("r1", ast.add(ast.fvar("r1"), ast.floadx("bt_sol", ast.sub(var("idx"), ast.const(1))))),
                            ],
                        ),
                        # x = D^-1 r
                        assign("x0", ast.add(ast.mul(ast.FloatConst(inv00), ast.fvar("r0")),
                                             ast.mul(ast.FloatConst(inv01), ast.fvar("r1")))),
                        assign("x1", ast.add(ast.mul(ast.FloatConst(inv01), ast.fvar("r0")),
                                             ast.mul(ast.FloatConst(inv00), ast.fvar("r1")))),
                        ast.store("bt_sol", var("idx"), ast.fvar("x0")),
                        ast.store("bt_sol", ast.add(var("idx"), ast.const(1)), ast.fvar("x1")),
                        assign("acc", ast.add(ast.fvar("acc"),
                                              ast.add(ast.mul(ast.fvar("x0"), ast.fvar("x0")),
                                                      ast.mul(ast.fvar("x1"), ast.fvar("x1"))))),
                    ],
                ),
            ],
        ),
        ast.store("partial_f", var("wid"), ast.add(ast.floadx("partial_f", var("wid")), ast.fvar("acc"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[
            ("line", INT), ("base", INT), ("i", INT), ("idx", INT),
            ("r0", FLOAT), ("r1", FLOAT), ("x0", FLOAT), ("x1", FLOAT), ("acc", FLOAT),
        ],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_float_checksum(),
        *build_mains(mode, LINES, mpi_reduce=("float",), iterations=2),
    ]
    globals_ = [
        GlobalVar("bt_rhs", FLOAT, LINES * N * 2),
        GlobalVar("bt_sol", FLOAT, LINES * N * 2),
        *partial_globals(),
    ]
    return Module(name=f"bt_{mode}", functions=functions, globals=globals_)
