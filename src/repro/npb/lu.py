"""LU — SSOR-style relaxation kernel.

A damped sweep over the interior of a small 2D grid (the original LU
applies SSOR sweeps to a 3D grid).  The access pattern couples each
point to its four neighbours, producing the load/store mix typical of
stencil solvers.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, Module, Return, assign, var

from repro.npb.common import FLOAT, INT, build_mains, finish_float_checksum, partial_globals

#: Grid edge (including boundary) and sweep count ("class T").
GRID = 10
INTERIOR = GRID - 2
SWEEPS = 3
OMEGA = 0.8


def _init_data() -> Function:
    return Function(
        name="init_data",
        params=[],
        locals=[("i", INT), ("t", FLOAT)],
        body=[
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(GRID * GRID),
                [
                    assign("t", ast.div(ast.int_to_float(ast.mod(var("i"), ast.const(7))), ast.FloatConst(7.0))),
                    ast.store("grid_u", var("i"), ast.fvar("t")),
                    ast.store("grid_f", var("i"), ast.mul(ast.FloatConst(0.3), ast.fvar("t"))),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """Relax interior rows [lo, hi) (row indices are 0-based interior rows)."""
    body = [
        assign("res", ast.FloatConst(0.0)),
        ast.for_range(
            "r",
            var("lo"),
            var("hi"),
            [
                assign("row", ast.add(var("r"), ast.const(1))),
                ast.for_range(
                    "c",
                    ast.const(1),
                    ast.const(GRID - 1),
                    [
                        assign("idx", ast.add(ast.mul(var("row"), ast.const(GRID)), var("c"))),
                        assign("north", ast.floadx("grid_u", ast.sub(var("idx"), ast.const(GRID)))),
                        assign("south", ast.floadx("grid_u", ast.add(var("idx"), ast.const(GRID)))),
                        assign("west", ast.floadx("grid_u", ast.sub(var("idx"), ast.const(1)))),
                        assign("east", ast.floadx("grid_u", ast.add(var("idx"), ast.const(1)))),
                        assign("sum4", ast.add(ast.add(ast.fvar("north"), ast.fvar("south")),
                                               ast.add(ast.fvar("west"), ast.fvar("east")))),
                        assign("gs", ast.mul(ast.FloatConst(0.25),
                                             ast.add(ast.fvar("sum4"), ast.floadx("grid_f", var("idx"))))),
                        assign("delta", ast.sub(ast.fvar("gs"), ast.floadx("grid_u", var("idx")))),
                        ast.store("grid_u", var("idx"),
                                  ast.add(ast.floadx("grid_u", var("idx")), ast.mul(ast.FloatConst(OMEGA), ast.fvar("delta")))),
                        assign("res", ast.add(ast.fvar("res"), ast.mul(ast.fvar("delta"), ast.fvar("delta")))),
                    ],
                ),
            ],
        ),
        ast.store("partial_f", var("wid"), ast.add(ast.floadx("partial_f", var("wid")), ast.fvar("res"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[
            ("r", INT), ("row", INT), ("c", INT), ("idx", INT),
            ("north", FLOAT), ("south", FLOAT), ("west", FLOAT), ("east", FLOAT),
            ("sum4", FLOAT), ("gs", FLOAT), ("delta", FLOAT), ("res", FLOAT),
        ],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_float_checksum(),
        *build_mains(mode, INTERIOR, mpi_reduce=("float",), iterations=SWEEPS),
    ]
    globals_ = [
        GlobalVar("grid_u", FLOAT, GRID * GRID),
        GlobalVar("grid_f", FLOAT, GRID * GRID),
        *partial_globals(),
    ]
    return Module(name=f"lu_{mode}", functions=functions, globals=globals_)
