"""EP — Embarrassingly Parallel (Monte Carlo) kernel.

Each sample draws a pseudo-random point in the unit square and tests
whether it falls inside the unit circle; the kernel accumulates the hit
count and the sum of squared radii.  Like the original EP benchmark the
work is floating point dominated and requires no communication beyond
the final reduction, making it the best-case workload for every
parallelisation model.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, If, Module, Return, assign, call, var

from repro.npb import common
from repro.npb.common import FLOAT, INT, build_mains, finish_both_checksums, partial_globals

#: Number of Monte Carlo samples ("class T").
SAMPLES = 96

_SCALE = 2147483648.0  # 2^31, converts LCG output to [0, 1)


def _init_data() -> Function:
    return Function(name="init_data", params=[], body=[Return(ast.const(0))], return_type=INT)


def _kernel_chunk() -> Function:
    body = [
        assign("hits", ast.const(0)),
        assign("dist", ast.FloatConst(0.0)),
        ast.for_range(
            "i",
            var("lo"),
            var("hi"),
            [
                # two deterministic pseudo-random draws derived from the index
                assign("sx", call("lcg_step", ast.add(ast.mul(var("i"), ast.const(2654435)), ast.const(12345)))),
                assign("sy", call("lcg_step", var("sx"))),
                assign("x", ast.div(ast.int_to_float(var("sx")), ast.FloatConst(_SCALE))),
                assign("y", ast.div(ast.int_to_float(var("sy")), ast.FloatConst(_SCALE))),
                assign("r2", ast.add(ast.mul(ast.fvar("x"), ast.fvar("x")), ast.mul(ast.fvar("y"), ast.fvar("y")))),
                If(
                    ast.le(ast.fvar("r2"), ast.FloatConst(1.0)),
                    [assign("hits", ast.add(var("hits"), ast.const(1)))],
                ),
                assign("dist", ast.add(ast.fvar("dist"), ast.fvar("r2"))),
            ],
        ),
        ast.store("partial_i", var("wid"), ast.add(ast.load("partial_i", var("wid")), var("hits"))),
        ast.store("partial_f", var("wid"), ast.add(ast.floadx("partial_f", var("wid")), ast.fvar("dist"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[
            ("i", INT), ("hits", INT), ("sx", INT), ("sy", INT),
            ("x", FLOAT), ("y", FLOAT), ("r2", FLOAT), ("dist", FLOAT),
        ],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    """Build the EP application module for one execution mode."""
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_both_checksums(),
        *build_mains(mode, SAMPLES, mpi_reduce=("float", "int")),
    ]
    return Module(name=f"ep_{mode}", functions=functions, globals=partial_globals())
