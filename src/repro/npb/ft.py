"""FT — Fourier Transform style kernel.

A batch of independent iterative radix-2 FFTs (the original FT performs
a 3D FFT as batched 1D transforms along each dimension).  Twiddle
factors are precomputed at build time and placed in the data segment,
as real FFT codes precompute their roots of unity.  The kernel is the
most floating-point dense of the suite.
"""

from __future__ import annotations

import math

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, If, Module, Return, assign, var

from repro.npb.common import FLOAT, INT, build_mains, finish_float_checksum, partial_globals

#: FFT size, number of independent rows, log2(size) ("class T").
SIZE = 16
ROWS = 4
STAGES = 4


def _twiddles() -> tuple[list[float], list[float]]:
    real = [math.cos(-2.0 * math.pi * k / SIZE) for k in range(SIZE // 2)]
    imag = [math.sin(-2.0 * math.pi * k / SIZE) for k in range(SIZE // 2)]
    return real, imag


def _bit_reverse(index: int, bits: int) -> int:
    out = 0
    for _ in range(bits):
        out = (out << 1) | (index & 1)
        index >>= 1
    return out


def _init_data() -> Function:
    """Fill each row with a deterministic waveform, in bit-reversed order."""
    order = [_bit_reverse(i, STAGES) for i in range(SIZE)]
    return Function(
        name="init_data",
        params=[],
        locals=[("row", INT), ("i", INT), ("src", INT), ("base", INT), ("t", FLOAT)],
        body=[
            ast.for_range(
                "row",
                ast.const(0),
                ast.const(ROWS),
                [
                    assign("base", ast.mul(var("row"), ast.const(SIZE))),
                    ast.for_range(
                        "i",
                        ast.const(0),
                        ast.const(SIZE),
                        [
                            assign("src", ast.load("bitrev", var("i"))),
                            assign("t", ast.div(ast.int_to_float(ast.add(ast.mul(var("row"), ast.const(3)), var("src"))),
                                                ast.FloatConst(float(SIZE)))),
                            ast.store("data_re", ast.add(var("base"), var("i")),
                                      ast.sub(ast.fvar("t"), ast.mul(ast.fvar("t"), ast.fvar("t")))),
                            ast.store("data_im", ast.add(var("base"), var("i")), ast.mul(ast.FloatConst(0.25), ast.fvar("t"))),
                        ],
                    ),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """Transform rows [lo, hi) in place and accumulate the spectrum energy."""
    butterfly = [
        # indices of the butterfly pair within the row
        assign("idx_a", ast.add(var("base"), ast.add(var("grp"), var("k")))),
        assign("idx_b", ast.add(var("idx_a"), var("half"))),
        assign("tw", ast.mul(var("k"), ast.div(ast.const(SIZE // 2), var("half")))),
        assign("wr", ast.floadx("tw_re", var("tw"))),
        assign("wi", ast.floadx("tw_im", var("tw"))),
        assign("br", ast.floadx("data_re", var("idx_b"))),
        assign("bi", ast.floadx("data_im", var("idx_b"))),
        assign("tr", ast.sub(ast.mul(ast.fvar("wr"), ast.fvar("br")), ast.mul(ast.fvar("wi"), ast.fvar("bi")))),
        assign("ti", ast.add(ast.mul(ast.fvar("wr"), ast.fvar("bi")), ast.mul(ast.fvar("wi"), ast.fvar("br")))),
        assign("ar", ast.floadx("data_re", var("idx_a"))),
        assign("ai", ast.floadx("data_im", var("idx_a"))),
        ast.store("data_re", var("idx_a"), ast.add(ast.fvar("ar"), ast.fvar("tr"))),
        ast.store("data_im", var("idx_a"), ast.add(ast.fvar("ai"), ast.fvar("ti"))),
        ast.store("data_re", var("idx_b"), ast.sub(ast.fvar("ar"), ast.fvar("tr"))),
        ast.store("data_im", var("idx_b"), ast.sub(ast.fvar("ai"), ast.fvar("ti"))),
    ]
    body = [
        assign("energy", ast.FloatConst(0.0)),
        ast.for_range(
            "row",
            var("lo"),
            var("hi"),
            [
                assign("base", ast.mul(var("row"), ast.const(SIZE))),
                assign("half", ast.const(1)),
                ast.While(
                    ast.lt(var("half"), ast.const(SIZE)),
                    [
                        assign("grp", ast.const(0)),
                        ast.While(
                            ast.lt(var("grp"), ast.const(SIZE)),
                            [
                                ast.for_range("k", ast.const(0), var("half"), list(butterfly)),
                                assign("grp", ast.add(var("grp"), ast.mul(var("half"), ast.const(2)))),
                            ],
                        ),
                        assign("half", ast.mul(var("half"), ast.const(2))),
                    ],
                ),
                ast.for_range(
                    "k",
                    ast.const(0),
                    ast.const(SIZE),
                    [
                        assign("ar", ast.floadx("data_re", ast.add(var("base"), var("k")))),
                        assign("ai", ast.floadx("data_im", ast.add(var("base"), var("k")))),
                        assign("energy", ast.add(ast.fvar("energy"),
                                                 ast.add(ast.mul(ast.fvar("ar"), ast.fvar("ar")),
                                                         ast.mul(ast.fvar("ai"), ast.fvar("ai"))))),
                    ],
                ),
            ],
        ),
        ast.store("partial_f", var("wid"), ast.add(ast.floadx("partial_f", var("wid")), ast.fvar("energy"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[
            ("row", INT), ("base", INT), ("half", INT), ("grp", INT), ("k", INT),
            ("idx_a", INT), ("idx_b", INT), ("tw", INT),
            ("wr", FLOAT), ("wi", FLOAT), ("br", FLOAT), ("bi", FLOAT),
            ("tr", FLOAT), ("ti", FLOAT), ("ar", FLOAT), ("ai", FLOAT), ("energy", FLOAT),
        ],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    tw_re, tw_im = _twiddles()
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_float_checksum(),
        *build_mains(mode, ROWS, mpi_reduce=("float",)),
    ]
    globals_ = [
        GlobalVar("data_re", FLOAT, ROWS * SIZE),
        GlobalVar("data_im", FLOAT, ROWS * SIZE),
        GlobalVar("tw_re", FLOAT, SIZE // 2, tw_re),
        GlobalVar("tw_im", FLOAT, SIZE // 2, tw_im),
        GlobalVar("bitrev", INT, SIZE, [_bit_reverse(i, STAGES) for i in range(SIZE)]),
        *partial_globals(),
    ]
    return Module(name=f"ft_{mode}", functions=functions, globals=globals_)
