"""UA — Unstructured Adaptive style kernel (serial and OpenMP only).

Irregular gather/scatter over an element-to-node connectivity table,
the defining trait of the original UA benchmark.  Like the original, no
MPI variant exists (UA is an OpenMP-only NPB member), which contributes
to the paper's 130-scenario count.
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, Module, Return, assign, var

from repro.npb.common import FLOAT, INT, build_mains, finish_float_checksum, partial_globals

#: Elements, nodes and adaptation rounds ("class T").
ELEMENTS = 64
NODES = 48
ROUNDS = 2


def _connectivity() -> list[int]:
    """Deterministic pseudo-random element-to-node table (two nodes/element)."""
    table = []
    state = 20130
    for element in range(ELEMENTS):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        a = state % NODES
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        b = state % NODES
        if b == a:
            b = (a + 1) % NODES
        table.extend([a, b])
    return table


def _init_data() -> Function:
    return Function(
        name="init_data",
        params=[],
        locals=[("i", INT)],
        body=[
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(NODES),
                [
                    ast.store("node_val", var("i"),
                              ast.div(ast.int_to_float(ast.add(var("i"), ast.const(1))), ast.FloatConst(float(NODES)))),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """One adaptation round over elements [lo, hi)."""
    body = [
        assign("energy", ast.FloatConst(0.0)),
        ast.for_range(
            "e",
            var("lo"),
            var("hi"),
            [
                assign("na", ast.load("elem_node", ast.mul(var("e"), ast.const(2)))),
                assign("nb", ast.load("elem_node", ast.add(ast.mul(var("e"), ast.const(2)), ast.const(1)))),
                assign("va", ast.floadx("node_val", var("na"))),
                assign("vb", ast.floadx("node_val", var("nb"))),
                assign("avg", ast.mul(ast.FloatConst(0.5), ast.add(ast.fvar("va"), ast.fvar("vb")))),
                # scatter: relax both nodes towards the element average
                ast.store("node_val", var("na"),
                          ast.add(ast.mul(ast.FloatConst(0.75), ast.fvar("va")), ast.mul(ast.FloatConst(0.25), ast.fvar("avg")))),
                ast.store("node_val", var("nb"),
                          ast.add(ast.mul(ast.FloatConst(0.75), ast.fvar("vb")), ast.mul(ast.FloatConst(0.25), ast.fvar("avg")))),
                assign("energy", ast.add(ast.fvar("energy"), ast.mul(ast.fvar("avg"), ast.fvar("avg")))),
            ],
        ),
        ast.store("partial_f", var("wid"), ast.add(ast.floadx("partial_f", var("wid")), ast.fvar("energy"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[
            ("e", INT), ("na", INT), ("nb", INT),
            ("va", FLOAT), ("vb", FLOAT), ("avg", FLOAT), ("energy", FLOAT),
        ],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    if mode == "mpi":
        raise ValueError("UA has no MPI implementation (as in the original NPB suite)")
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_float_checksum(),
        *build_mains(mode, ELEMENTS, iterations=ROUNDS),
    ]
    globals_ = [
        GlobalVar("node_val", FLOAT, NODES),
        GlobalVar("elem_node", INT, ELEMENTS * 2, _connectivity()),
        *partial_globals(),
    ]
    return Module(name=f"ua_{mode}", functions=functions, globals=globals_)
