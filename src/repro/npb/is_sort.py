"""IS — Integer Sort kernel (bucket / counting sort).

The kernel is pure integer work with an irregular, memory-heavy access
pattern (random keys indexing per-worker histograms), matching the
original IS benchmark's character: the paper singles out IS as one of
the applications whose high memory-instruction share drives Unexpected
Terminations up (Table 3).
"""

from __future__ import annotations

from repro.compiler import ast
from repro.compiler.ast import Function, GlobalVar, Module, Return, assign, call, var

from repro.npb.common import INT, MAX_WORKERS, build_mains, finish_int_checksum, partial_globals

#: Number of keys and key range ("class T").
NUM_KEYS = 768
MAX_KEY = 64


def _init_data() -> Function:
    """Generate the key array with the shared LCG (identical on every rank)."""
    return Function(
        name="init_data",
        params=[],
        locals=[("i", INT), ("seed", INT)],
        body=[
            assign("seed", ast.const(314159)),
            ast.for_range(
                "i",
                ast.const(0),
                ast.const(NUM_KEYS),
                [
                    assign("seed", call("lcg_step", var("seed"))),
                    ast.store("keys", var("i"), ast.mod(var("seed"), ast.const(MAX_KEY))),
                ],
            ),
            Return(ast.const(0)),
        ],
        return_type=INT,
    )


def _kernel_chunk() -> Function:
    """Count the chunk's keys into the worker-private histogram slice."""
    body = [
        # clear this worker's histogram slice
        ast.for_range(
            "k", ast.const(0), ast.const(MAX_KEY),
            [ast.store("hist", ast.add(ast.mul(var("wid"), ast.const(MAX_KEY)), var("k")), ast.const(0))],
        ),
        ast.for_range(
            "i",
            var("lo"),
            var("hi"),
            [
                assign("key", ast.load("keys", var("i"))),
                assign("slot", ast.add(ast.mul(var("wid"), ast.const(MAX_KEY)), var("key"))),
                ast.store("hist", var("slot"), ast.add(ast.load("hist", var("slot")), ast.const(1))),
            ],
        ),
        # weighted histogram checksum (the "key ranks" of the real IS)
        assign("wsum", ast.const(0)),
        assign("running", ast.const(0)),
        ast.for_range(
            "k",
            ast.const(0),
            ast.const(MAX_KEY),
            [
                assign("count", ast.load("hist", ast.add(ast.mul(var("wid"), ast.const(MAX_KEY)), var("k")))),
                assign("running", ast.add(var("running"), var("count"))),
                assign("wsum", ast.add(var("wsum"), ast.mul(var("count"), ast.add(var("k"), ast.const(1))))),
                assign("wsum", ast.add(var("wsum"), var("running"))),
            ],
        ),
        ast.store("partial_i", var("wid"), ast.add(ast.load("partial_i", var("wid")), var("wsum"))),
        Return(ast.const(0)),
    ]
    return Function(
        name="kernel_chunk",
        params=[("lo", INT), ("hi", INT), ("wid", INT)],
        locals=[("i", INT), ("k", INT), ("key", INT), ("slot", INT), ("wsum", INT), ("count", INT), ("running", INT)],
        body=body,
        return_type=INT,
    )


def build_module(mode: str) -> Module:
    functions = [
        _init_data(),
        _kernel_chunk(),
        finish_int_checksum(),
        *build_mains(mode, NUM_KEYS, mpi_reduce=("int",)),
    ]
    globals_ = [
        GlobalVar("keys", INT, NUM_KEYS),
        GlobalVar("hist", INT, MAX_KEY * MAX_WORKERS),
        *partial_globals(),
    ]
    return Module(name=f"is_{mode}", functions=functions, globals=globals_)
