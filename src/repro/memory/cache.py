"""Set-associative cache model.

The cache hierarchy is modelled functionally: it tracks which lines are
resident (for hit/miss statistics and access latency) but does not hold
a second copy of the data — the backing :class:`AddressSpace` remains
the single source of truth.  This mirrors how the study uses gem5: the
microarchitectural statistics feed the data-mining stage while fault
outcomes are decided architecturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a single cache."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 2
    miss_penalty: int = 20

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    read_accesses: int = 0
    write_accesses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        return {
            f"{prefix}hits": self.hits,
            f"{prefix}misses": self.misses,
            f"{prefix}evictions": self.evictions,
            f"{prefix}accesses": self.accesses,
            f"{prefix}miss_rate": self.miss_rate,
            f"{prefix}read_accesses": self.read_accesses,
            f"{prefix}write_accesses": self.write_accesses,
        }


class Cache:
    """LRU set-associative cache keyed by line address.

    Each set is an ordered dict-like list of tags, most recently used
    last.  Only presence is tracked; the next level is consulted on a
    miss so that a multi-level hierarchy produces consistent inclusive
    statistics.
    """

    def __init__(self, config: CacheConfig, next_level: "Cache | None" = None):
        self.config = config
        self.next_level = next_level
        self.stats = CacheStats()
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self._line_shift = config.line_bytes.bit_length() - 1

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self._line_shift
        set_index = line % self.config.num_sets
        return set_index, line

    def access(self, address: int, write: bool = False) -> int:
        """Touch ``address``; returns the access latency in cycles."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if write:
            self.stats.write_accesses += 1
        else:
            self.stats.read_accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            return self.config.hit_latency
        self.stats.misses += 1
        latency = self.config.hit_latency + self.config.miss_penalty
        if self.next_level is not None:
            latency = self.config.hit_latency + self.next_level.access(address, write)
        ways.append(tag)
        if len(ways) > self.config.associativity:
            ways.pop(0)
            self.stats.evictions += 1
        return latency

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def dump_state(self) -> dict:
        """Checkpoint view: resident lines (LRU order preserved) and counters."""
        return {
            "sets": [list(ways) for ways in self._sets],
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "read_accesses": self.stats.read_accesses,
                "write_accesses": self.stats.write_accesses,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore residency and counters captured by :meth:`dump_state`."""
        self._sets = [list(ways) for ways in state["sets"]]
        self.stats = CacheStats(**state["stats"])

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.config.num_sets)]

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def occupancy(self) -> float:
        used = sum(len(ways) for ways in self._sets)
        return used / max(1, self.config.num_lines)
