"""Set-associative cache model.

The cache hierarchy is modelled functionally: it tracks which lines are
resident (for hit/miss statistics and access latency) but does not hold
a second copy of the data — the backing :class:`AddressSpace` remains
the single source of truth.  This mirrors how the study uses gem5: the
microarchitectural statistics feed the data-mining stage while fault
outcomes are decided architecturally.

For fault injection the model additionally tracks per-line *dirty*
state (write-back policy: a written line is dirty until evicted) and
*pending* single-bit faults.  A pending fault represents corruption
that lives only in the cached copy of a line; it becomes architectural
— applied to the backing address space through ``fault_sink`` — when
the line is next hit (the corrupted copy is consumed) or when a dirty
line is evicted (the write-back carries the corruption to memory).  A
clean eviction discards the line along with its corruption: the next
access refetches intact data from memory and the fault is masked.

Write-allocate semantics: a write miss fills the line at *this* level
and marks it dirty here only.  The fill consults the next level as a
**read** — only the level that absorbs the store holds the dirty copy;
lower levels fill clean.  (Propagating ``write=True`` down the
hierarchy used to mark the L2 copy of an L1 write-miss dirty as well,
so a later L2 eviction wrote back — and thereby propagated — a pending
fault that a clean eviction should have masked.)

The structure is optimised for the simulator's hot loop: each set is an
insertion-ordered dict (LRU first, MRU last) so a hit is a dict
membership test plus a delete/re-insert instead of an O(ways)
``list.remove``; set indexing uses a precomputed mask when the set
count is a power of two; and a single-entry last-line fast path answers
the common "same line as the previous access" case with pure counter
updates (the line is necessarily resident, MRU and pending-free — see
:meth:`Cache.access`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a single cache."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 2
    miss_penalty: int = 20

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    read_accesses: int = 0
    write_accesses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        return {
            f"{prefix}hits": self.hits,
            f"{prefix}misses": self.misses,
            f"{prefix}evictions": self.evictions,
            f"{prefix}accesses": self.accesses,
            f"{prefix}miss_rate": self.miss_rate,
            f"{prefix}read_accesses": self.read_accesses,
            f"{prefix}write_accesses": self.write_accesses,
        }


class Cache:
    """LRU set-associative cache keyed by line address.

    Each set is an insertion-ordered dict of line numbers, most
    recently used last.  Only presence is tracked; the next level is
    consulted on a miss so that a multi-level hierarchy produces
    consistent inclusive statistics.
    """

    __slots__ = (
        "config",
        "next_level",
        "stats",
        "_sets",
        "_line_shift",
        "_set_mask",
        "_num_sets",
        "_assoc",
        "_hit_latency",
        "_last_line",
        "_dirty",
        "_pending",
        "fault_sink",
    )

    def __init__(self, config: CacheConfig, next_level: "Cache | None" = None):
        self.config = config
        self.next_level = next_level
        self.stats = CacheStats()
        num_sets = config.num_sets
        self._sets: list[dict[int, None]] = [{} for _ in range(num_sets)]
        self._line_shift = config.line_bytes.bit_length() - 1
        #: mask for power-of-two set counts (the common geometry); None
        #: falls back to the modulo in :meth:`_locate`
        self._set_mask = num_sets - 1 if num_sets & (num_sets - 1) == 0 else None
        self._num_sets = num_sets
        self._assoc = config.associativity
        self._hit_latency = config.hit_latency
        #: line number of the most recent access (-1 = invalid).  When
        #: the next access touches the same line it is guaranteed
        #: resident, already MRU and pending-free, so the fast path
        #: only bumps counters.  Every operation that could invalidate
        #: the guarantee (flush, state restore, fault injection) resets
        #: this to -1.
        self._last_line = -1
        #: line numbers written since fill (write-back dirty state)
        self._dirty: set[int] = set()
        #: injected faults still confined to the cached copy of a line:
        #: line number -> [(byte offset within line, bit index)]
        self._pending: dict[int, list[tuple[int, int]]] = {}
        #: called as ``sink(line, byte_offset, bit)`` when a pending fault
        #: becomes architecturally visible; installed by the fault injector
        self.fault_sink: Optional[Callable[[int, int, int], None]] = None

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self._line_shift
        mask = self._set_mask
        set_index = line & mask if mask is not None else line % self._num_sets
        return set_index, line

    def line_base(self, line: int) -> int:
        """Base address of line number ``line``."""
        return line << self._line_shift

    def _propagate(self, line: int) -> None:
        """A pending fault became architecturally visible; hand it to the sink."""
        flips = self._pending.pop(line)
        if self.fault_sink is not None:
            for byte_offset, bit in flips:
                self.fault_sink(line, byte_offset, bit)

    def _evict(self, victim: int) -> None:
        dirty = victim in self._dirty
        self._dirty.discard(victim)
        if victim in self._pending:
            if dirty:
                self._propagate(victim)  # write-back carries the corruption out
            else:
                self._pending.pop(victim)  # clean eviction masks the fault

    def access(self, address: int, write: bool = False) -> int:
        """Touch ``address``; returns the access latency in cycles."""
        line = address >> self._line_shift
        stats = self.stats
        if line == self._last_line:
            # Same line as the previous access: resident, MRU, and with
            # no pending fault (the previous access consumed it, and
            # every external state mutation resets _last_line).
            if write:
                stats.write_accesses += 1
                self._dirty.add(line)
            else:
                stats.read_accesses += 1
            stats.hits += 1
            return self._hit_latency
        mask = self._set_mask
        set_index = line & mask if mask is not None else line % self._num_sets
        ways = self._sets[set_index]
        if write:
            stats.write_accesses += 1
        else:
            stats.read_accesses += 1
        if line in ways:
            del ways[line]
            ways[line] = None  # move to MRU
            stats.hits += 1
            if write:
                self._dirty.add(line)
            if line in self._pending:
                self._propagate(line)  # the corrupted copy is consumed
            self._last_line = line
            return self._hit_latency
        stats.misses += 1
        latency = self._hit_latency + self.config.miss_penalty
        if self.next_level is not None:
            # Write-allocate: the fill consults the next level as a
            # read — only this level absorbs the store and goes dirty.
            latency = self._hit_latency + self.next_level.access(address, False)
        ways[line] = None
        if write:
            self._dirty.add(line)
        if len(ways) > self._assoc:
            victim = next(iter(ways))
            del ways[victim]
            self.stats.evictions += 1
            self._evict(victim)
        self._last_line = line
        return latency

    def contains(self, address: int) -> bool:
        set_index, line = self._locate(address)
        return line in self._sets[set_index]

    def is_dirty(self, address: int) -> bool:
        _set_index, line = self._locate(address)
        return line in self._dirty

    def resident_lines(self) -> list[int]:
        """Sorted line numbers of every resident line (deterministic order)."""
        return sorted(line for ways in self._sets for line in ways)

    def inject_resident_fault(self, selector: int, line_bit: int) -> Optional[tuple[int, int, int]]:
        """Flip bit ``line_bit`` of the resident line picked by ``selector``.

        ``selector`` indexes the sorted resident-line list modulo its
        length, so the choice is deterministic for a deterministic
        simulation state.  Returns ``(line, byte_offset, bit)`` or
        ``None`` when the cache holds no line (the fault landed in an
        invalid entry and has no effect).
        """
        lines = self.resident_lines()
        if not lines:
            return None
        line = lines[selector % len(lines)]
        byte_offset, bit = divmod(line_bit, 8)
        byte_offset %= self.config.line_bytes
        self._pending.setdefault(line, []).append((byte_offset, bit))
        self._last_line = -1  # the fast path must re-check pending state
        return line, byte_offset, bit

    def dump_state(self) -> dict:
        """Checkpoint view: residency (LRU order), dirty state, pending faults, counters."""
        return {
            "sets": [list(ways) for ways in self._sets],
            "dirty": sorted(self._dirty),
            "pending": {line: list(flips) for line, flips in self._pending.items()},
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "read_accesses": self.stats.read_accesses,
                "write_accesses": self.stats.write_accesses,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore the state captured by :meth:`dump_state`.

        Keys are coerced with ``int(...)`` throughout: after a JSON
        round-trip the ``pending`` dict carries *string* line-number
        keys, and without coercion ``victim in self._pending`` /
        ``line in self._pending`` (int probes) silently never matched —
        restored pending faults could neither propagate nor be masked.
        """
        self._sets = [dict.fromkeys(int(line) for line in ways) for ways in state["sets"]]
        self._dirty = {int(line) for line in state.get("dirty", ())}
        self._pending = {
            int(line): [tuple(flip) for flip in flips]
            for line, flips in state.get("pending", {}).items()
        }
        self.stats = CacheStats(**state["stats"])
        self._last_line = -1

    def flush(self) -> None:
        """Invalidate every line (no write-back; pending faults are dropped)."""
        self._sets = [{} for _ in range(self._num_sets)]
        self._dirty.clear()
        self._pending.clear()
        self._last_line = -1

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def occupancy(self) -> float:
        used = sum(len(ways) for ways in self._sets)
        return used / max(1, self.config.num_lines)
