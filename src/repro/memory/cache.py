"""Set-associative cache model.

The cache hierarchy is modelled functionally: it tracks which lines are
resident (for hit/miss statistics and access latency) but does not hold
a second copy of the data — the backing :class:`AddressSpace` remains
the single source of truth.  This mirrors how the study uses gem5: the
microarchitectural statistics feed the data-mining stage while fault
outcomes are decided architecturally.

For fault injection the model additionally tracks per-line *dirty*
state (write-back policy: a written line is dirty until evicted) and
*pending* single-bit faults.  A pending fault represents corruption
that lives only in the cached copy of a line; it becomes architectural
— applied to the backing address space through ``fault_sink`` — when
the line is next hit (the corrupted copy is consumed) or when a dirty
line is evicted (the write-back carries the corruption to memory).  A
clean eviction discards the line along with its corruption: the next
access refetches intact data from memory and the fault is masked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of a single cache."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 2
    miss_penalty: int = 20

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return max(1, self.num_lines // self.associativity)


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    read_accesses: int = 0
    write_accesses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def as_dict(self, prefix: str = "") -> dict[str, float]:
        return {
            f"{prefix}hits": self.hits,
            f"{prefix}misses": self.misses,
            f"{prefix}evictions": self.evictions,
            f"{prefix}accesses": self.accesses,
            f"{prefix}miss_rate": self.miss_rate,
            f"{prefix}read_accesses": self.read_accesses,
            f"{prefix}write_accesses": self.write_accesses,
        }


class Cache:
    """LRU set-associative cache keyed by line address.

    Each set is an ordered dict-like list of tags, most recently used
    last.  Only presence is tracked; the next level is consulted on a
    miss so that a multi-level hierarchy produces consistent inclusive
    statistics.
    """

    def __init__(self, config: CacheConfig, next_level: "Cache | None" = None):
        self.config = config
        self.next_level = next_level
        self.stats = CacheStats()
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self._line_shift = config.line_bytes.bit_length() - 1
        #: line numbers written since fill (write-back dirty state)
        self._dirty: set[int] = set()
        #: injected faults still confined to the cached copy of a line:
        #: line number -> [(byte offset within line, bit index)]
        self._pending: dict[int, list[tuple[int, int]]] = {}
        #: called as ``sink(line, byte_offset, bit)`` when a pending fault
        #: becomes architecturally visible; installed by the fault injector
        self.fault_sink: Optional[Callable[[int, int, int], None]] = None

    def _locate(self, address: int) -> tuple[int, int]:
        line = address >> self._line_shift
        set_index = line % self.config.num_sets
        return set_index, line

    def line_base(self, line: int) -> int:
        """Base address of line number ``line``."""
        return line << self._line_shift

    def _propagate(self, line: int) -> None:
        """A pending fault became architecturally visible; hand it to the sink."""
        flips = self._pending.pop(line)
        if self.fault_sink is not None:
            for byte_offset, bit in flips:
                self.fault_sink(line, byte_offset, bit)

    def _evict(self, victim: int) -> None:
        dirty = victim in self._dirty
        self._dirty.discard(victim)
        if victim in self._pending:
            if dirty:
                self._propagate(victim)  # write-back carries the corruption out
            else:
                self._pending.pop(victim)  # clean eviction masks the fault

    def access(self, address: int, write: bool = False) -> int:
        """Touch ``address``; returns the access latency in cycles."""
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if write:
            self.stats.write_accesses += 1
        else:
            self.stats.read_accesses += 1
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.stats.hits += 1
            if write:
                self._dirty.add(tag)
            if tag in self._pending:
                self._propagate(tag)  # the corrupted copy is consumed
            return self.config.hit_latency
        self.stats.misses += 1
        latency = self.config.hit_latency + self.config.miss_penalty
        if self.next_level is not None:
            latency = self.config.hit_latency + self.next_level.access(address, write)
        ways.append(tag)
        if write:
            self._dirty.add(tag)  # write-allocate: the filled line is dirty
        if len(ways) > self.config.associativity:
            victim = ways.pop(0)
            self.stats.evictions += 1
            self._evict(victim)
        return latency

    def contains(self, address: int) -> bool:
        set_index, tag = self._locate(address)
        return tag in self._sets[set_index]

    def is_dirty(self, address: int) -> bool:
        _set_index, tag = self._locate(address)
        return tag in self._dirty

    def resident_lines(self) -> list[int]:
        """Sorted line numbers of every resident line (deterministic order)."""
        return sorted(line for ways in self._sets for line in ways)

    def inject_resident_fault(self, selector: int, line_bit: int) -> Optional[tuple[int, int, int]]:
        """Flip bit ``line_bit`` of the resident line picked by ``selector``.

        ``selector`` indexes the sorted resident-line list modulo its
        length, so the choice is deterministic for a deterministic
        simulation state.  Returns ``(line, byte_offset, bit)`` or
        ``None`` when the cache holds no line (the fault landed in an
        invalid entry and has no effect).
        """
        lines = self.resident_lines()
        if not lines:
            return None
        line = lines[selector % len(lines)]
        byte_offset, bit = divmod(line_bit, 8)
        byte_offset %= self.config.line_bytes
        self._pending.setdefault(line, []).append((byte_offset, bit))
        return line, byte_offset, bit

    def dump_state(self) -> dict:
        """Checkpoint view: residency (LRU order), dirty state, pending faults, counters."""
        return {
            "sets": [list(ways) for ways in self._sets],
            "dirty": sorted(self._dirty),
            "pending": {line: list(flips) for line, flips in self._pending.items()},
            "stats": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "evictions": self.stats.evictions,
                "read_accesses": self.stats.read_accesses,
                "write_accesses": self.stats.write_accesses,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore the state captured by :meth:`dump_state`."""
        self._sets = [list(ways) for ways in state["sets"]]
        self._dirty = set(state.get("dirty", ()))
        self._pending = {
            line: [tuple(flip) for flip in flips]
            for line, flips in state.get("pending", {}).items()
        }
        self.stats = CacheStats(**state["stats"])

    def flush(self) -> None:
        """Invalidate every line (no write-back; pending faults are dropped)."""
        self._sets = [[] for _ in range(self.config.num_sets)]
        self._dirty.clear()
        self._pending.clear()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def occupancy(self) -> float:
        used = sum(len(ways) for ways in self._sets)
        return used / max(1, self.config.num_lines)
