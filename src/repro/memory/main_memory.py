"""Main memory model: named segments with permissions.

The guest address space is a small set of named segments (text, data,
heap, per-thread stacks).  Accesses outside any segment, or violating a
segment's permissions, raise :class:`~repro.errors.MemoryFault`; the
kernel converts that into an abnormal termination, which the fault
classifier records as an Unexpected Termination — exactly the mechanism
the paper identifies behind UT outcomes (corrupted address generation
hitting unmapped memory).

Data is stored little-endian in plain ``bytearray`` objects so the
fault injector can flip any bit of any mapped byte.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.errors import AlignmentFault, MemoryFault, SimulatorError

# Fixed-size accessors for the word sizes guests actually use: reading
# through a bound Struct method avoids the intermediate bytes object of
# a bytearray slice + int.from_bytes round trip.
_WORD_IO = {
    4: (struct.Struct("<I").unpack_from, struct.Struct("<I").pack_into),
    8: (struct.Struct("<Q").unpack_from, struct.Struct("<Q").pack_into),
}


@dataclass(frozen=True)
class Permissions:
    read: bool = True
    write: bool = True
    execute: bool = False

    def describe(self) -> str:
        return ("r" if self.read else "-") + ("w" if self.write else "-") + ("x" if self.execute else "-")


PERM_RW = Permissions(read=True, write=True, execute=False)
PERM_RO = Permissions(read=True, write=False, execute=False)
PERM_RX = Permissions(read=True, write=False, execute=True)


class MemorySegment:
    """A contiguous, permission-checked region of guest memory."""

    __slots__ = ("name", "base", "size", "perms", "data", "owner")

    def __init__(self, name: str, base: int, size: int, perms: Permissions = PERM_RW, owner: int | None = None):
        if base < 0 or size <= 0:
            raise SimulatorError(f"invalid segment geometry for {name!r}: base={base} size={size}")
        self.name = name
        self.base = base
        self.size = size
        self.perms = perms
        self.data = bytearray(size)
        self.owner = owner

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "MemorySegment") -> bool:
        return self.base < other.end and other.base < self.end

    def load_image(self, image: bytes, offset: int = 0) -> None:
        if offset + len(image) > self.size:
            raise SimulatorError(f"image of {len(image)} bytes does not fit segment {self.name!r}")
        self.data[offset : offset + len(image)] = image

    def snapshot(self) -> bytes:
        return bytes(self.data)

    def restore(self, snapshot: bytes) -> None:
        if len(snapshot) != self.size:
            raise SimulatorError(f"snapshot size mismatch for segment {self.name!r}")
        self.data[:] = snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemorySegment({self.name!r}, base={self.base:#x}, size={self.size:#x}, perms={self.perms.describe()})"


class AddressSpace:
    """The set of segments visible to one guest thread.

    Several threads may share the same address space (serial and OpenMP
    execution), while MPI ranks each get a private data/heap image to
    model distributed memory.
    """

    def __init__(self, name: str = "address-space"):
        self.name = name
        self.segments: list[MemorySegment] = []
        # Two-entry lookup cache: accesses commonly alternate between
        # two segments (data array vs. current stack frame), which would
        # thrash a single-entry cache into full segment walks.
        self._last_hit: MemorySegment | None = None
        self._prev_hit: MemorySegment | None = None
        # statistics
        self.read_count = 0
        self.write_count = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- segment management -------------------------------------------------

    def add_segment(self, segment: MemorySegment) -> MemorySegment:
        for existing in self.segments:
            if existing.overlaps(segment):
                raise SimulatorError(
                    f"segment {segment.name!r} [{segment.base:#x},{segment.end:#x}) overlaps "
                    f"{existing.name!r} [{existing.base:#x},{existing.end:#x})"
                )
        self.segments.append(segment)
        self.segments.sort(key=lambda s: s.base)
        return segment

    def map(self, name: str, base: int, size: int, perms: Permissions = PERM_RW, owner: int | None = None) -> MemorySegment:
        return self.add_segment(MemorySegment(name, base, size, perms, owner))

    def find_segment(self, address: int) -> MemorySegment | None:
        last = self._last_hit
        if last is not None and last.contains(address):
            return last
        prev = self._prev_hit
        if prev is not None and prev.contains(address):
            self._prev_hit = last
            self._last_hit = prev
            return prev
        for segment in self.segments:
            if segment.contains(address):
                self._prev_hit = self._last_hit
                self._last_hit = segment
                return segment
        return None

    def segment_by_name(self, name: str) -> MemorySegment:
        for segment in self.segments:
            if segment.name == name:
                return segment
        raise SimulatorError(f"no segment named {name!r}")

    def highest_address(self) -> int:
        return max((s.end for s in self.segments), default=0)

    # -- access helpers ------------------------------------------------------

    def _segment_for(self, address: int, size: int, write: bool) -> MemorySegment:
        segment = self.find_segment(address)
        if segment is None or address + size > segment.end:
            kind = "write" if write else "read"
            raise MemoryFault(f"unmapped {kind} of {size} bytes at {address:#x}", address=address)
        if write and not segment.perms.write:
            raise MemoryFault(f"write to read-only segment {segment.name!r} at {address:#x}", address=address)
        if not write and not segment.perms.read:
            raise MemoryFault(f"read from unreadable segment {segment.name!r} at {address:#x}", address=address)
        return segment

    def read(self, address: int, size: int, check_alignment: bool = True) -> int:
        """Read ``size`` bytes at ``address`` as an unsigned little-endian int."""
        # Fast path: the last-hit segment covers the access and every
        # check passes (segment bases are non-negative, so coverage
        # implies a non-negative address).  Any miss falls through to
        # the slow path, which re-checks in the canonical order so the
        # raised fault type/message is identical either way.
        segment = self._last_hit
        if segment is None or not (segment.base <= address and address + size <= segment.base + segment.size):
            segment = self._prev_hit
            if segment is not None and segment.base <= address and address + size <= segment.base + segment.size:
                self._prev_hit = self._last_hit
                self._last_hit = segment
            else:
                segment = None
        if (
            segment is not None
            and segment.perms.read
            and not (check_alignment and size > 1 and address % size)
        ):
            offset = address - segment.base
            self.read_count += 1
            self.bytes_read += size
            if size == 1:
                return segment.data[offset]
            io = _WORD_IO.get(size)
            if io is not None:
                return io[0](segment.data, offset)[0]
            return int.from_bytes(segment.data[offset : offset + size], "little")
        return self._read_slow(address, size, check_alignment)

    def _read_slow(self, address: int, size: int, check_alignment: bool) -> int:
        if address < 0:
            raise MemoryFault(f"negative address {address:#x}", address=address)
        if check_alignment and size > 1 and address % size != 0:
            raise AlignmentFault(f"misaligned read of {size} bytes at {address:#x}", address=address)
        segment = self._segment_for(address, size, write=False)
        offset = address - segment.base
        self.read_count += 1
        self.bytes_read += size
        return int.from_bytes(segment.data[offset : offset + size], "little")

    def write(self, address: int, value: int, size: int, check_alignment: bool = True) -> None:
        """Write ``size`` bytes of ``value`` (unsigned) at ``address``."""
        segment = self._last_hit
        if segment is None or not (segment.base <= address and address + size <= segment.base + segment.size):
            segment = self._prev_hit
            if segment is not None and segment.base <= address and address + size <= segment.base + segment.size:
                self._prev_hit = self._last_hit
                self._last_hit = segment
            else:
                segment = None
        if (
            segment is not None
            and segment.perms.write
            and not (check_alignment and size > 1 and address % size)
        ):
            offset = address - segment.base
            self.write_count += 1
            self.bytes_written += size
            if size == 1:
                segment.data[offset] = value & 0xFF
                return
            io = _WORD_IO.get(size)
            if io is not None:
                io[1](segment.data, offset, value & ((1 << (size * 8)) - 1))
                return
            segment.data[offset : offset + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
                size, "little"
            )
            return
        self._write_slow(address, value, size, check_alignment)

    def _write_slow(self, address: int, value: int, size: int, check_alignment: bool) -> None:
        if address < 0:
            raise MemoryFault(f"negative address {address:#x}", address=address)
        if check_alignment and size > 1 and address % size != 0:
            raise AlignmentFault(f"misaligned write of {size} bytes at {address:#x}", address=address)
        segment = self._segment_for(address, size, write=True)
        offset = address - segment.base
        segment.data[offset : offset + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(size, "little")
        self.write_count += 1
        self.bytes_written += size

    def read_bytes(self, address: int, length: int) -> bytes:
        segment = self._segment_for(address, length, write=False)
        offset = address - segment.base
        return bytes(segment.data[offset : offset + length])

    def write_bytes(self, address: int, data: bytes) -> None:
        segment = self._segment_for(address, len(data), write=True)
        offset = address - segment.base
        segment.data[offset : offset + len(data)] = data

    # -- fault injection support ----------------------------------------------

    def flip_bit(self, address: int, bit: int) -> int:
        """Flip one bit of the byte at ``address`` (ignores permissions).

        Returns the new byte value.  Radiation does not respect page
        protections, so this bypasses the permission checks.
        """
        segment = self.find_segment(address)
        if segment is None:
            raise MemoryFault(f"bit flip target {address:#x} is unmapped", address=address)
        if not 0 <= bit < 8:
            raise SimulatorError(f"byte bit index {bit} out of range")
        offset = address - segment.base
        segment.data[offset] ^= 1 << bit
        return segment.data[offset]

    def injectable_ranges(self) -> list[tuple[int, int, str]]:
        """(base, size, name) of all writable segments (fault targets)."""
        return [(s.base, s.size, s.name) for s in self.segments if s.perms.write]

    # -- snapshot / comparison -------------------------------------------------

    def snapshot(self, names: list[str] | None = None) -> dict[str, bytes]:
        """Copy of the raw contents of the selected (default: writable) segments."""
        chosen = [s for s in self.segments if (names is None and s.perms.write) or (names is not None and s.name in names)]
        return {s.name: bytes(s.data) for s in chosen}

    def restore(self, snapshot: dict[str, bytes]) -> None:
        for name, blob in snapshot.items():
            self.segment_by_name(name).restore(blob)

    def diff(self, snapshot: dict[str, bytes]) -> list[str]:
        """Names of snapshotted segments whose contents now differ."""
        changed = []
        for name, blob in snapshot.items():
            try:
                segment = self.segment_by_name(name)
            except SimulatorError:
                changed.append(name)
                continue
            if bytes(segment.data) != blob:
                changed.append(name)
        return changed

    def capture_contents(self) -> dict:
        """Checkpoint view: geometry + contents of every writable segment.

        Read-only segments (the text image) are excluded — they cannot
        change, and the restore target rebuilds them from the program.
        Access counters ride along so restored statistics match a
        straight run bit for bit.
        """
        return {
            "segments": [
                (s.name, s.base, s.size, bytes(s.data)) for s in self.segments if s.perms.write
            ],
            "counters": (self.read_count, self.write_count, self.bytes_read, self.bytes_written),
        }

    def restore_contents(self, state: dict) -> None:
        """Restore segments captured by :meth:`capture_contents`.

        Segments missing from this address space (thread stacks mapped
        after the checkpoint target was built) are created with the
        captured geometry.
        """
        by_name = {s.name: s for s in self.segments}
        for name, base, size, data in state["segments"]:
            segment = by_name.get(name)
            if segment is None:
                segment = self.map(name, base, size, PERM_RW)
            elif segment.base != base or segment.size != size:
                raise SimulatorError(
                    f"segment {name!r} geometry mismatch: checkpoint has "
                    f"[{base:#x},{base + size:#x}), address space has "
                    f"[{segment.base:#x},{segment.end:#x})"
                )
            segment.data[:] = data
        self.read_count, self.write_count, self.bytes_read, self.bytes_written = state["counters"]
        self._last_hit = None
        self._prev_hit = None

    def stats(self) -> dict[str, int]:
        return {
            "reads": self.read_count,
            "writes": self.write_count,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "segments": len(self.segments),
            "mapped_bytes": sum(s.size for s in self.segments),
        }
