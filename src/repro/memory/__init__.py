"""Memory subsystem: main memory with segment protection and cache models."""

from repro.memory.main_memory import AddressSpace, MemorySegment, Permissions
from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import CacheHierarchy, CORTEX_A_CACHE_CONFIG

__all__ = [
    "AddressSpace",
    "MemorySegment",
    "Permissions",
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "CORTEX_A_CACHE_CONFIG",
]
