"""Per-core cache hierarchy matching the paper's processor configuration.

Every processor model in the study uses the same two-level hierarchy:
L1 instruction 32 kB 4-way, L1 data 32 kB 4-way, shared L2 512 kB 8-way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, CacheConfig

#: Cache geometry from Section 3.1 of the paper.
CORTEX_A_CACHE_CONFIG = {
    "l1i": CacheConfig(name="l1i", size_bytes=32 * 1024, associativity=4, line_bytes=64, hit_latency=1, miss_penalty=10),
    "l1d": CacheConfig(name="l1d", size_bytes=32 * 1024, associativity=4, line_bytes=64, hit_latency=2, miss_penalty=10),
    "l2": CacheConfig(name="l2", size_bytes=512 * 1024, associativity=8, line_bytes=64, hit_latency=12, miss_penalty=80),
}


@dataclass
class CacheHierarchy:
    """One core's private L1 caches plus a reference to the shared L2."""

    l1i: Cache
    l1d: Cache
    l2: Cache

    @classmethod
    def build(cls, shared_l2: Cache | None = None, configs: dict | None = None) -> "CacheHierarchy":
        configs = configs or CORTEX_A_CACHE_CONFIG
        l2 = shared_l2 if shared_l2 is not None else Cache(configs["l2"])
        return cls(
            l1i=Cache(configs["l1i"], next_level=l2),
            l1d=Cache(configs["l1d"], next_level=l2),
            l2=l2,
        )

    def fetch(self, address: int) -> int:
        """Instruction fetch access; returns latency in cycles."""
        return self.l1i.access(address, write=False)

    def data_access(self, address: int, write: bool) -> int:
        """Data access; returns latency in cycles."""
        return self.l1d.access(address, write=write)

    def flush(self) -> None:
        self.l1i.flush()
        self.l1d.flush()

    def stats(self) -> dict[str, float]:
        out = {}
        out.update(self.l1i.stats.as_dict("l1i_"))
        out.update(self.l1d.stats.as_dict("l1d_"))
        return out
