"""Per-core cache hierarchy matching the paper's processor configuration.

Every processor model in the study uses the same two-level hierarchy:
L1 instruction 32 kB 4-way, L1 data 32 kB 4-way, shared L2 512 kB 8-way.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import Cache, CacheConfig

#: Cache geometry from Section 3.1 of the paper.
CORTEX_A_CACHE_CONFIG = {
    "l1i": CacheConfig(name="l1i", size_bytes=32 * 1024, associativity=4, line_bytes=64, hit_latency=1, miss_penalty=10),
    "l1d": CacheConfig(name="l1d", size_bytes=32 * 1024, associativity=4, line_bytes=64, hit_latency=2, miss_penalty=10),
    "l2": CacheConfig(name="l2", size_bytes=512 * 1024, associativity=8, line_bytes=64, hit_latency=12, miss_penalty=80),
}


@dataclass
class CacheHierarchy:
    """One core's private L1 caches plus a reference to the shared L2.

    ``owns_l2`` records whether this hierarchy created its own
    (private) L2 or references one shared between cores.  It decides
    whether :meth:`stats` and :meth:`flush` cover the L2: a shared L2
    must be exported and flushed exactly once at the SoC level
    (:meth:`repro.soc.multicore.MulticoreSystem.cache_stats` /
    :meth:`~repro.soc.multicore.MulticoreSystem.flush_caches`) —
    summing per-hierarchy exports would multiply the shared L2's
    counters by the core count.
    """

    l1i: Cache
    l1d: Cache
    l2: Cache
    owns_l2: bool = True

    @classmethod
    def build(cls, shared_l2: Cache | None = None, configs: dict | None = None) -> "CacheHierarchy":
        configs = configs or CORTEX_A_CACHE_CONFIG
        l2 = shared_l2 if shared_l2 is not None else Cache(configs["l2"])
        return cls(
            l1i=Cache(configs["l1i"], next_level=l2),
            l1d=Cache(configs["l1d"], next_level=l2),
            l2=l2,
            owns_l2=shared_l2 is None,
        )

    def fetch(self, address: int) -> int:
        """Instruction fetch access; returns latency in cycles."""
        return self.l1i.access(address, write=False)

    def data_access(self, address: int, write: bool) -> int:
        """Data access; returns latency in cycles."""
        return self.l1d.access(address, write=write)

    def flush(self, include_l2: bool | None = None) -> None:
        """Invalidate the hierarchy's lines (pending faults are dropped).

        ``include_l2`` defaults to ``owns_l2``: a private L2 is part of
        this hierarchy's flush domain, while a shared L2 is flushed
        exactly once per SoC flush by the owner of the sharing (the
        former behaviour of flushing only L1i/L1d left the L2 resident
        — leaking residency and pending-fault state across flush
        boundaries — for *every* caller, including single-core ones).
        """
        self.l1i.flush()
        self.l1d.flush()
        if self.owns_l2 if include_l2 is None else include_l2:
            self.l2.flush()

    def stats(self) -> dict[str, float]:
        out = {}
        out.update(self.l1i.stats.as_dict("l1i_"))
        out.update(self.l1d.stats.as_dict("l1d_"))
        if self.owns_l2:
            out.update(self.l2.stats.as_dict("l2_"))
        return out
