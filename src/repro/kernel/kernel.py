"""The mini kernel: process management, scheduling and system calls.

The kernel is intentionally small but covers everything the paper's
software stack exercises during the application lifespan: program
loading, thread scheduling across cores, synchronisation primitives
used by the OpenMP-like runtime, message passing used by the MPI-like
runtime, heap management and abnormal-termination delivery
(segmentation faults and aborts) which the fault classifier reports as
Unexpected Terminations.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.cpu import fpu
from repro.cpu.core import Core, CoreContext
from repro.errors import GuestFault, MemoryFault, SimulatorError
from repro.isa.program import Program
from repro.kernel.loader import STACK_GUARD, STACK_REGION_BASE, ProgramLoader
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.syscalls import ANY_RANK, SBRK_FAILED, Syscall, SyscallError
from repro.kernel.threads import Process, ProcessState, Thread, ThreadState

#: Upper bound on a single message size; corrupted length arguments are
#: clamped so the host does not allocate unbounded buffers.
MAX_MESSAGE_BYTES = 1 << 20


class Kernel:
    """Guest operating system kernel for one simulated multicore system."""

    def __init__(self, system, quantum: int = 20_000):
        self.system = system
        self.loader = ProgramLoader(system.arch)
        self.scheduler = RoundRobinScheduler(quantum=quantum)
        self.processes: list[Process] = []
        self._next_pid = 1
        self._next_tid = 1
        self._next_job = 1
        # (job_id, dest_rank) -> deque of (src_rank, tag, payload bytes)
        self._msg_queues: dict[tuple[int, int], deque] = {}
        # (job_id, rank) -> list of (thread, src_filter, tag_filter, buf, maxlen)
        self._recv_waiters: dict[tuple[int, int], list] = {}
        self.syscall_counts: dict[str, int] = {}
        # Recovery surface (set by the fault injector on systems running
        # under a rec scheme, never captured in snapshots): when
        # ``recovery_mode`` is on, a hardening detection additionally
        # records ``detection_event`` so the simulation loop can return
        # control to the injector's rollback logic instead of letting
        # the run coast to deadlock/termination.
        self.recovery_mode = False
        self.detection_event: Optional[dict] = None

    # ------------------------------------------------------------------
    # process / thread creation
    # ------------------------------------------------------------------

    def allocate_job_id(self) -> int:
        job = self._next_job
        self._next_job += 1
        return job

    def create_process(
        self,
        program: Program,
        name: str,
        rank: int = 0,
        nranks: int = 1,
        job_id: Optional[int] = None,
        nthreads_hint: int = 1,
    ) -> Process:
        """Create a process with its main thread ready to run ``_start``."""
        space, layout = self.loader.build_address_space(program, name=f"{name}.as")
        process = Process(
            pid=self._next_pid,
            name=name,
            program=program,
            address_space=space,
            rank=rank,
            nranks=nranks,
            job_id=job_id if job_id is not None else self.allocate_job_id(),
            nthreads_hint=nthreads_hint,
        )
        self._next_pid += 1
        process.heap_break = layout["heap_break"]
        process.heap_limit = layout["heap_limit"]
        process.next_stack_base = layout["stack_region_base"]
        self.processes.append(process)
        self._spawn_main_thread(process)
        return process

    def launch(self, program: Program, name: str = "proc", nthreads_hint: int = 1) -> Process:
        """Launch a single (serial or OpenMP) process."""
        return self.create_process(program, name, nthreads_hint=nthreads_hint)

    def launch_mpi_job(self, program: Program, nranks: int, name: str = "mpi") -> list[Process]:
        """Launch ``nranks`` processes sharing a job id (an MPI communicator)."""
        if nranks < 1:
            raise SimulatorError(f"invalid rank count {nranks}")
        job_id = self.allocate_job_id()
        return [
            self.create_process(program, f"{name}.r{rank}", rank=rank, nranks=nranks, job_id=job_id)
            for rank in range(nranks)
        ]

    def _spawn_main_thread(self, process: Process) -> Thread:
        thread = Thread(tid=self._next_tid, process=process)
        self._next_tid += 1
        stack, sp = self.loader.map_stack(
            process.address_space, process.next_stack_base, process.program.stack_size, thread.tid
        )
        process.next_stack_base = stack.end + STACK_GUARD
        thread.stack = stack
        thread.context = self.loader.initial_context(
            process.program, sp, args=(process.rank, process.nranks, process.nthreads_hint)
        )
        process.threads.append(thread)
        self.scheduler.add(thread)
        return thread

    def _spawn_thread(self, process: Process, entry_address: int, arg: int) -> Thread:
        thread = Thread(tid=self._next_tid, process=process)
        self._next_tid += 1
        stack, sp = self.loader.map_stack(
            process.address_space, process.next_stack_base, process.program.stack_size, thread.tid
        )
        process.next_stack_base = stack.end + STACK_GUARD
        thread.stack = stack
        thread.context = self.loader.thread_context(process.program, entry_address, sp, args=(arg,))
        process.threads.append(thread)
        self.scheduler.add(thread)
        return thread

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def attach(self, core: Core, thread: Thread) -> None:
        process = thread.process
        core.thread = thread
        core.text = process.program.instructions
        core.text_base = self.loader.text_base
        core.mem = process.address_space
        core.load_context(thread.context)
        if thread.pending_retval is not None:
            core.regs.write(core.arch.abi.ret_reg, thread.pending_retval)
            thread.pending_retval = None
        thread.state = ThreadState.RUNNING
        thread.core_id = core.core_id
        core.stats.context_switches += 1

    def detach(self, core: Core) -> None:
        thread = core.thread
        if thread is None:
            return
        thread.context = core.save_context()
        thread.core_id = None
        core.thread = None
        core.mem = None
        core.text = []

    def schedule(self) -> None:
        """Fill idle cores from the ready queue and apply preemption."""
        for core in self.system.cores:
            thread = core.thread
            if thread is not None and self.scheduler.should_preempt(thread):
                self.detach(core)
                thread.slice_used = 0
                self.scheduler.add(thread)
                self.scheduler.note_preemption()
        for core in self.system.cores:
            if core.thread is None:
                ready = self.scheduler.next_ready()
                if ready is None:
                    break
                self.attach(core, ready)

    def live_processes(self) -> list[Process]:
        return [p for p in self.processes if p.is_live()]

    def has_live_processes(self) -> bool:
        return any(p.is_live() for p in self.processes)

    def runnable_exists(self) -> bool:
        if self.scheduler.has_ready():
            return True
        return any(core.thread is not None for core in self.system.cores)

    def all_blocked(self) -> bool:
        """True when live processes exist but nothing can make progress."""
        return self.has_live_processes() and not self.runnable_exists()

    # ------------------------------------------------------------------
    # termination paths
    # ------------------------------------------------------------------

    def _terminate_process(self, process: Process, state: ProcessState, exit_code: int = 0,
                           fault_kind: Optional[str] = None, fault_message: Optional[str] = None) -> None:
        if not process.is_live():
            return
        process.state = state
        process.exit_code = exit_code
        process.fault_kind = fault_kind
        process.fault_message = fault_message
        for thread in process.threads:
            thread.state = ThreadState.EXITED
        self.scheduler.discard_process(process)
        for core in self.system.cores:
            if core.thread is not None and core.thread.process is process:
                core.thread = None
                core.mem = None
                core.text = []
        # Drop stale receive waiters belonging to this process.
        for key, waiters in self._recv_waiters.items():
            self._recv_waiters[key] = [w for w in waiters if w[0].process is not process]

    def exit_process(self, process: Process, exit_code: int) -> None:
        self._terminate_process(process, ProcessState.EXITED, exit_code=exit_code)

    def kill_process(self, process: Process, fault_kind: str, message: str) -> None:
        self._terminate_process(
            process, ProcessState.KILLED, exit_code=139, fault_kind=fault_kind, fault_message=message
        )

    def handle_fault(self, core: Core, fault: GuestFault) -> None:
        """Deliver a processor exception: the owning process is killed."""
        thread = core.thread
        if thread is None:
            return
        self.kill_process(thread.process, fault.kind, str(fault))

    def _exit_thread(self, core: Core, thread: Thread, value: int) -> None:
        thread.exit_value = value
        thread.state = ThreadState.EXITED
        for joiner in thread.joiners:
            self._wake(joiner, retval=value)
        thread.joiners.clear()
        if core.thread is thread:
            core.thread = None
            core.mem = None
            core.text = []
        process = thread.process
        if not process.live_threads():
            self.exit_process(process, exit_code=0)

    # ------------------------------------------------------------------
    # blocking / waking
    # ------------------------------------------------------------------

    def _block_current(self, core: Core, reason: str, key: object = None) -> Thread:
        thread = core.thread
        thread.state = ThreadState.BLOCKED
        thread.block_reason = reason
        thread.block_key = key
        self.detach(core)
        return thread

    def _wake(self, thread: Thread, retval: Optional[int] = None) -> None:
        if thread.state != ThreadState.BLOCKED:
            return
        thread.block_reason = None
        thread.block_key = None
        thread.pending_retval = retval
        self.scheduler.add(thread)

    # ------------------------------------------------------------------
    # system call interface
    # ------------------------------------------------------------------

    def _args(self, core: Core, count: int) -> list[int]:
        abi = core.arch.abi
        return [core.regs.read(abi.arg_regs[i]) for i in range(count)]

    def _ret(self, core: Core, value: int) -> None:
        core.regs.write(core.arch.abi.ret_reg, value)

    def handle_syscall(self, core: Core, sysno: int) -> None:
        thread = core.thread
        if thread is None:
            raise SimulatorError("system call executed on a core with no attached thread")
        try:
            call = Syscall(sysno)
        except ValueError:
            # A corrupted SVC immediate: Linux would return ENOSYS; a
            # benign outcome rather than a crash.
            self._ret(core, SyscallError.INVALID)
            return
        self.syscall_counts[call.name] = self.syscall_counts.get(call.name, 0) + 1
        handler = getattr(self, f"_sys_{call.name.lower()}")
        handler(core, thread)

    # -- process / output ------------------------------------------------

    def _sys_exit(self, core: Core, thread: Thread) -> None:
        (code,) = self._args(core, 1)
        self.exit_process(thread.process, exit_code=code)

    def _sys_abort(self, core: Core, thread: Thread) -> None:
        self.kill_process(thread.process, "abort", "guest called abort()")

    def _sys_ft_detected(self, core: Core, thread: Thread) -> None:
        if self.recovery_mode and self.detection_event is None:
            # Record the detection for the injector's rollback loop; the
            # kill below still runs so the event is delivered on the
            # exactly-accounted termination path (raising from a syscall
            # handler would leave the engine's batched statistics — and
            # the SoC instruction counter — unflushed mid-burst).
            self.detection_event = {
                "pid": thread.process.pid,
                "tid": thread.tid,
                "core": core.core_id,
            }
        self.kill_process(
            thread.process, "ft_detected", "software hardening check detected a fault"
        )

    def _sys_write_int(self, core: Core, thread: Thread) -> None:
        (value,) = self._args(core, 1)
        signed = value - (1 << core.arch.xlen) if value & core.arch.sign_bit else value
        thread.process.output += f"{signed}\n".encode()
        self._ret(core, 0)

    def _sys_write_float(self, core: Core, thread: Thread) -> None:
        # The calling convention passes floating point arguments in the
        # first FP argument register on architectures with a hardware
        # FPU, and as raw bits in the first integer argument register on
        # the software-float architecture.
        if core.arch.has_hw_float:
            bits = core.fregs.read_bits(core.arch.abi.fp_arg_regs[0])
            value = fpu.bits_to_double(bits)
        else:
            (bits,) = self._args(core, 1)
            value = fpu.bits_to_single(bits)
        thread.process.output += f"{value:.6e}\n".encode()
        self._ret(core, 0)

    def _sys_write_char(self, core: Core, thread: Thread) -> None:
        (value,) = self._args(core, 1)
        thread.process.output.append(value & 0xFF)
        self._ret(core, 0)

    def _sys_sbrk(self, core: Core, thread: Thread) -> None:
        (amount,) = self._args(core, 1)
        process = thread.process
        aligned = (amount + 15) & ~15
        if aligned > MAX_MESSAGE_BYTES * 16 or process.heap_break + aligned > process.heap_limit:
            self._ret(core, SBRK_FAILED)
            return
        old_break = process.heap_break
        process.heap_break += aligned
        self._ret(core, old_break)

    # -- identity ----------------------------------------------------------

    def _sys_get_tid(self, core: Core, thread: Thread) -> None:
        self._ret(core, thread.tid)

    def _sys_get_rank(self, core: Core, thread: Thread) -> None:
        self._ret(core, thread.process.rank)

    def _sys_get_nranks(self, core: Core, thread: Thread) -> None:
        self._ret(core, thread.process.nranks)

    def _sys_get_ncores(self, core: Core, thread: Thread) -> None:
        self._ret(core, len(self.system.cores))

    def _sys_get_nthreads(self, core: Core, thread: Thread) -> None:
        self._ret(core, thread.process.nthreads_hint)

    # -- threads ------------------------------------------------------------

    def _sys_thread_create(self, core: Core, thread: Thread) -> None:
        entry, arg = self._args(core, 2)
        new_thread = self._spawn_thread(thread.process, entry, arg)
        self._ret(core, new_thread.tid)

    def _sys_thread_join(self, core: Core, thread: Thread) -> None:
        (tid,) = self._args(core, 1)
        target = next((t for t in thread.process.threads if t.tid == tid), None)
        if target is None:
            self._ret(core, SyscallError.INVALID)
            return
        if target.state == ThreadState.EXITED:
            self._ret(core, target.exit_value)
            return
        blocked = self._block_current(core, "join", key=tid)
        target.joiners.append(blocked)

    def _sys_thread_exit(self, core: Core, thread: Thread) -> None:
        (value,) = self._args(core, 1)
        self._exit_thread(core, thread, value)

    def _sys_yield(self, core: Core, thread: Thread) -> None:
        self._ret(core, 0)
        self.detach(core)
        thread.slice_used = 0
        self.scheduler.add(thread)

    # -- synchronisation -------------------------------------------------------

    def _sys_sem_post(self, core: Core, thread: Thread) -> None:
        (sem_id,) = self._args(core, 1)
        process = thread.process
        waiters = process.sem_waiters.setdefault(sem_id, [])
        if waiters:
            self._wake(waiters.pop(0), retval=0)
        else:
            process.semaphores[sem_id] = process.semaphores.get(sem_id, 0) + 1
        self._ret(core, 0)

    def _sys_sem_wait(self, core: Core, thread: Thread) -> None:
        (sem_id,) = self._args(core, 1)
        process = thread.process
        count = process.semaphores.get(sem_id, 0)
        if count > 0:
            process.semaphores[sem_id] = count - 1
            self._ret(core, 0)
            return
        blocked = self._block_current(core, "sem", key=sem_id)
        process.sem_waiters.setdefault(sem_id, []).append(blocked)

    def _sys_barrier_wait(self, core: Core, thread: Thread) -> None:
        barrier_id, count = self._args(core, 2)
        process = thread.process
        waiting = process.barriers.setdefault(barrier_id, [])
        if count <= 1 or len(waiting) + 1 >= count:
            for waiter in waiting:
                self._wake(waiter, retval=0)
            process.barriers[barrier_id] = []
            self._ret(core, 0)
            return
        blocked = self._block_current(core, "barrier", key=barrier_id)
        waiting.append(blocked)

    def _sys_mutex_lock(self, core: Core, thread: Thread) -> None:
        (mutex_id,) = self._args(core, 1)
        process = thread.process
        owner = process.mutexes.get(mutex_id)
        if owner is None or owner.state == ThreadState.EXITED:
            process.mutexes[mutex_id] = thread
            self._ret(core, 0)
            return
        blocked = self._block_current(core, "mutex", key=mutex_id)
        process.mutex_waiters.setdefault(mutex_id, []).append(blocked)

    def _sys_mutex_unlock(self, core: Core, thread: Thread) -> None:
        (mutex_id,) = self._args(core, 1)
        process = thread.process
        waiters = process.mutex_waiters.setdefault(mutex_id, [])
        if waiters:
            next_owner = waiters.pop(0)
            process.mutexes[mutex_id] = next_owner
            self._wake(next_owner, retval=0)
        else:
            process.mutexes[mutex_id] = None
        self._ret(core, 0)

    # -- message passing ----------------------------------------------------------

    def _queue(self, job_id: int, rank: int) -> deque:
        return self._msg_queues.setdefault((job_id, rank), deque())

    def _find_process(self, job_id: int, rank: int) -> Optional[Process]:
        for process in self.processes:
            if process.job_id == job_id and process.rank == rank:
                return process
        return None

    def _sys_msg_send(self, core: Core, thread: Thread) -> None:
        dest, buf, nbytes, tag = self._args(core, 4)
        process = thread.process
        nbytes = min(nbytes, MAX_MESSAGE_BYTES)
        payload = process.address_space.read_bytes(buf, nbytes) if nbytes else b""
        destination = self._find_process(process.job_id, dest)
        if destination is None or not destination.is_live():
            self._ret(core, SyscallError.INVALID)
            return
        waiters = self._recv_waiters.setdefault((process.job_id, dest), [])
        for index, (waiter, src_filter, tag_filter, wbuf, wmax) in enumerate(waiters):
            if src_filter not in (ANY_RANK, process.rank):
                continue
            if tag_filter not in (ANY_RANK, tag):
                continue
            waiters.pop(index)
            delivered = payload[: min(len(payload), wmax)]
            try:
                if delivered:
                    waiter.process.address_space.write_bytes(wbuf, delivered)
                self._wake(waiter, retval=len(delivered))
            except MemoryFault as fault:
                self.kill_process(waiter.process, fault.kind, str(fault))
            self._ret(core, 0)
            return
        self._queue(process.job_id, dest).append((process.rank, tag, payload))
        self._ret(core, 0)

    def _sys_msg_recv(self, core: Core, thread: Thread) -> None:
        src, buf, maxbytes, tag = self._args(core, 4)
        process = thread.process
        maxbytes = min(maxbytes, MAX_MESSAGE_BYTES)
        queue = self._queue(process.job_id, process.rank)
        for index, (msg_src, msg_tag, payload) in enumerate(queue):
            if src not in (ANY_RANK, msg_src):
                continue
            if tag not in (ANY_RANK, msg_tag):
                continue
            del queue[index]
            delivered = payload[: min(len(payload), maxbytes)]
            if delivered:
                process.address_space.write_bytes(buf, delivered)
            self._ret(core, len(delivered))
            return
        blocked = self._block_current(core, "recv", key=(process.job_id, process.rank))
        self._recv_waiters.setdefault((process.job_id, process.rank), []).append(
            (blocked, src, tag, buf, maxbytes)
        )

    def _sys_msg_probe(self, core: Core, thread: Thread) -> None:
        src, tag = self._args(core, 2)
        process = thread.process
        queue = self._queue(process.job_id, process.rank)
        for msg_src, msg_tag, _payload in queue:
            if src not in (ANY_RANK, msg_src):
                continue
            if tag not in (ANY_RANK, msg_tag):
                continue
            self._ret(core, 1)
            return
        self._ret(core, 0)

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------

    def thread_by_ids(self, pid: int, tid: int) -> Thread:
        for process in self.processes:
            if process.pid == pid:
                for thread in process.threads:
                    if thread.tid == tid:
                        return thread
        raise SimulatorError(f"no thread {tid} in process {pid}")

    @staticmethod
    def _capture_context(context: Optional[CoreContext]):
        if context is None:
            return None
        return (tuple(context.gprs), tuple(context.fprs), context.pc, tuple(context.flags))

    @staticmethod
    def _restore_context(captured) -> Optional[CoreContext]:
        if captured is None:
            return None
        gprs, fprs, pc, flags = captured
        return CoreContext(tuple(gprs), tuple(fprs), pc, tuple(flags))

    def capture_state(self) -> dict:
        """Checkpoint view of all kernel state, as plain picklable data.

        Threads are referenced by (pid, tid) pairs everywhere an object
        identity exists at runtime (waiter lists, mutex owners, the ready
        queue), so the capture can be shipped across process boundaries
        and restored onto a freshly launched system.
        """
        processes = []
        for process in self.processes:
            threads = []
            for thread in process.threads:
                threads.append(
                    {
                        "tid": thread.tid,
                        "context": self._capture_context(thread.context),
                        "state": thread.state.value,
                        "core_id": thread.core_id,
                        "stack": None if thread.stack is None else thread.stack.name,
                        "block_reason": thread.block_reason,
                        "block_key": thread.block_key,
                        "pending_retval": thread.pending_retval,
                        "joiners": tuple(j.tid for j in thread.joiners),
                        "exit_value": thread.exit_value,
                        "slice_used": thread.slice_used,
                        "instructions_executed": thread.instructions_executed,
                    }
                )
            processes.append(
                {
                    "pid": process.pid,
                    "name": process.name,
                    "state": process.state.value,
                    "exit_code": process.exit_code,
                    "fault_kind": process.fault_kind,
                    "fault_message": process.fault_message,
                    "output": bytes(process.output),
                    "heap_break": process.heap_break,
                    "heap_limit": process.heap_limit,
                    "next_stack_base": process.next_stack_base,
                    "threads": threads,
                    "memory": process.address_space.capture_contents(),
                    "semaphores": dict(process.semaphores),
                    "sem_waiters": {k: tuple(t.tid for t in v) for k, v in process.sem_waiters.items()},
                    "barriers": {k: tuple(t.tid for t in v) for k, v in process.barriers.items()},
                    "mutexes": {k: (None if t is None else t.tid) for k, t in process.mutexes.items()},
                    "mutex_waiters": {
                        k: tuple(t.tid for t in v) for k, v in process.mutex_waiters.items()
                    },
                }
            )
        return {
            "processes": processes,
            "next_pid": self._next_pid,
            "next_tid": self._next_tid,
            "next_job": self._next_job,
            "msg_queues": {key: tuple(queue) for key, queue in self._msg_queues.items()},
            "recv_waiters": {
                key: tuple(
                    (waiter.process.pid, waiter.tid, src, tag, buf, maxlen)
                    for waiter, src, tag, buf, maxlen in waiters
                )
                for key, waiters in self._recv_waiters.items()
            },
            "syscall_counts": dict(self.syscall_counts),
            "scheduler": self.scheduler.capture_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`capture_state` checkpoint.

        The kernel must belong to a freshly built system on which the
        same workload was just launched: process creation is
        deterministic, so the captured processes are matched positionally
        (and verified by pid/name) against the fresh ones.
        """
        captured_processes = state["processes"]
        if len(captured_processes) != len(self.processes):
            raise SimulatorError(
                f"checkpoint has {len(captured_processes)} processes, "
                f"launched system has {len(self.processes)}"
            )
        registry: dict[tuple[int, int], Thread] = {}
        for process, snap in zip(self.processes, captured_processes):
            if process.pid != snap["pid"] or process.name != snap["name"]:
                raise SimulatorError(
                    f"checkpoint process {snap['pid']}:{snap['name']!r} does not match "
                    f"launched process {process.pid}:{process.name!r}"
                )
            process.state = ProcessState(snap["state"])
            process.exit_code = snap["exit_code"]
            process.fault_kind = snap["fault_kind"]
            process.fault_message = snap["fault_message"]
            process.output = bytearray(snap["output"])
            process.heap_break = snap["heap_break"]
            process.heap_limit = snap["heap_limit"]
            process.next_stack_base = snap["next_stack_base"]
            # Restore memory first: it maps the stack segments of threads
            # spawned after launch, which the thread records point at.
            process.address_space.restore_contents(snap["memory"])
            existing = {t.tid: t for t in process.threads}
            process.threads = []
            for tsnap in snap["threads"]:
                thread = existing.get(tsnap["tid"]) or Thread(tid=tsnap["tid"], process=process)
                thread.context = self._restore_context(tsnap["context"])
                thread.state = ThreadState(tsnap["state"])
                thread.core_id = tsnap["core_id"]
                thread.stack = (
                    process.address_space.segment_by_name(tsnap["stack"]) if tsnap["stack"] else None
                )
                thread.block_reason = tsnap["block_reason"]
                thread.block_key = tsnap["block_key"]
                thread.pending_retval = tsnap["pending_retval"]
                thread.exit_value = tsnap["exit_value"]
                thread.slice_used = tsnap["slice_used"]
                thread.instructions_executed = tsnap["instructions_executed"]
                process.threads.append(thread)
                registry[(process.pid, thread.tid)] = thread
            for thread, tsnap in zip(process.threads, snap["threads"]):
                thread.joiners = [registry[(process.pid, tid)] for tid in tsnap["joiners"]]
            process.semaphores = dict(snap["semaphores"])
            process.sem_waiters = {
                k: [registry[(process.pid, tid)] for tid in v] for k, v in snap["sem_waiters"].items()
            }
            process.barriers = {
                k: [registry[(process.pid, tid)] for tid in v] for k, v in snap["barriers"].items()
            }
            process.mutexes = {
                k: (None if tid is None else registry[(process.pid, tid)])
                for k, tid in snap["mutexes"].items()
            }
            process.mutex_waiters = {
                k: [registry[(process.pid, tid)] for tid in v] for k, v in snap["mutex_waiters"].items()
            }
        self._next_pid = state["next_pid"]
        self._next_tid = state["next_tid"]
        self._next_job = state["next_job"]
        self._msg_queues = {key: deque(items) for key, items in state["msg_queues"].items()}
        self._recv_waiters = {
            key: [
                (registry[(pid, tid)], src, tag, buf, maxlen)
                for pid, tid, src, tag, buf, maxlen in waiters
            ]
            for key, waiters in state["recv_waiters"].items()
        }
        self.syscall_counts = dict(state["syscall_counts"])
        self.scheduler.restore_state(state["scheduler"], lambda pid, tid: registry[(pid, tid)])

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def combined_output(self) -> str:
        """Deterministic concatenation of all process outputs (by pid)."""
        parts = []
        for process in sorted(self.processes, key=lambda p: p.pid):
            parts.append(process.output_text())
        return "".join(parts)

    def process_summary(self) -> list[dict]:
        return [
            {
                "pid": p.pid,
                "name": p.name,
                "rank": p.rank,
                "state": p.state.value,
                "exit_code": p.exit_code,
                "fault": p.fault_kind,
                "threads": len(p.threads),
            }
            for p in self.processes
        ]
