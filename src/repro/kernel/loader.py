"""Program loader: builds the guest address space of a process.

Address-space layout (identical for every process)::

    0x0001_0000  text   (read / execute, pseudo machine code image)
    0x0010_0000  data   (initialised data + bss, read / write)
    ...          heap   (read / write, grows via SBRK)
    0x0080_0000  stacks (one per thread, separated by unmapped guard gaps)

The gaps between segments are unmapped on purpose: a corrupted base
register that lands in a gap produces a segmentation fault, which is
the mechanism behind the paper's Unexpected Termination outcomes.
"""

from __future__ import annotations

from repro.cpu.core import CoreContext
from repro.errors import SimulatorError
from repro.isa.arch import ArchSpec
from repro.isa.program import Program
from repro.memory.main_memory import AddressSpace, Permissions

TEXT_BASE = 0x0001_0000
DATA_BASE = 0x0010_0000
STACK_REGION_BASE = 0x0080_0000
STACK_GUARD = 0x1000
PAGE = 0x1000

PERM_TEXT = Permissions(read=True, write=False, execute=True)
PERM_DATA = Permissions(read=True, write=True, execute=False)


def _align_up(value: int, alignment: int = PAGE) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def make_context(
    arch: ArchSpec,
    pc: int,
    sp: int,
    gp: int,
    args: tuple[int, ...] = (),
    lr: int = 0,
) -> CoreContext:
    """Build a fresh architectural context for a new thread."""
    gprs = [0] * arch.num_gpr
    abi = arch.abi
    gprs[abi.sp] = sp & arch.word_mask
    gprs[abi.gp] = gp & arch.word_mask
    gprs[abi.lr] = lr & arch.word_mask
    for index, value in enumerate(args):
        if index >= len(abi.arg_regs):
            raise SimulatorError(f"too many initial arguments ({len(args)}) for {arch.name}")
        gprs[abi.arg_regs[index]] = value & arch.word_mask
    fprs = [0] * max(1, arch.num_fpr)
    return CoreContext(tuple(gprs), tuple(fprs), pc, (False, False, False, False))


class ProgramLoader:
    """Builds address spaces and initial thread contexts from programs."""

    def __init__(self, arch: ArchSpec, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.arch = arch
        self.text_base = text_base
        self.data_base = data_base

    def build_address_space(self, program: Program, name: str) -> tuple[AddressSpace, dict]:
        """Create the address space for one process.

        Returns the address space plus a layout dictionary with the heap
        break, heap limit and the base from which thread stacks are
        carved.
        """
        if program.arch.name != self.arch.name:
            raise SimulatorError(
                f"program {program.name!r} was compiled for {program.arch.name} "
                f"but the loader targets {self.arch.name}"
            )
        space = AddressSpace(name=name)

        text_size = _align_up(max(program.text_size, 4))
        text = space.map("text", self.text_base, text_size, PERM_TEXT)
        text.load_image(program.machine_code())

        data_size = _align_up(max(program.data_size + program.bss_size, 4))
        data = space.map("data", self.data_base, data_size, PERM_DATA)
        if program.data_image:
            data.load_image(bytes(program.data_image))

        heap_base = _align_up(self.data_base + data_size + PAGE)
        heap_size = _align_up(max(program.heap_size, PAGE))
        space.map("heap", heap_base, heap_size, PERM_DATA)

        layout = {
            "text_base": self.text_base,
            "data_base": self.data_base,
            "heap_base": heap_base,
            "heap_break": heap_base,
            "heap_limit": heap_base + heap_size,
            "stack_region_base": STACK_REGION_BASE,
        }
        return space, layout

    def map_stack(self, space: AddressSpace, stack_base: int, stack_size: int, tid: int):
        """Map a stack segment for one thread; returns (segment, initial SP)."""
        size = _align_up(max(stack_size, PAGE))
        segment = space.map(f"stack.t{tid}", stack_base, size, PERM_DATA)
        initial_sp = segment.end - 16
        return segment, initial_sp

    def initial_context(
        self,
        program: Program,
        sp: int,
        args: tuple[int, ...] = (),
        entry_label: str | None = None,
    ) -> CoreContext:
        """Architectural context for a process' first thread."""
        entry = program.label_address(entry_label or program.entry, self.text_base)
        return make_context(self.arch, entry, sp, self.data_base, args)

    def thread_context(
        self,
        program: Program,
        entry_address: int,
        sp: int,
        args: tuple[int, ...] = (),
    ) -> CoreContext:
        """Architectural context for a thread created at runtime.

        The link register points at the ``_thread_exit`` stub so that a
        thread function returning normally terminates its thread.
        """
        exit_stub = program.label_address("_thread_exit", self.text_base)
        return make_context(self.arch, entry_address, sp, self.data_base, args, lr=exit_stub)
