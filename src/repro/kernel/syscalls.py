"""System call numbers and ABI.

The system call number travels in the immediate field of the ``SVC``
instruction; up to three arguments are passed in the first argument
registers of the calling convention and the return value is written to
the return register.
"""

from __future__ import annotations

from enum import IntEnum


class Syscall(IntEnum):
    """System call numbers understood by the mini kernel."""

    # process / output
    EXIT = 1
    ABORT = 2
    WRITE_INT = 3
    WRITE_FLOAT = 4
    WRITE_CHAR = 5
    SBRK = 6
    #: raised by the guest fault-tolerance trap (__ft_fault_detected)
    #: when a hardened binary's redundancy check fails; terminates the
    #: process with the distinct ``ft_detected`` fault kind so the
    #: classifier can report Detected instead of a generic UT
    FT_DETECTED = 7

    # identity
    GET_TID = 10
    GET_RANK = 11
    GET_NRANKS = 12
    GET_NCORES = 13
    GET_NTHREADS = 14

    # threads
    THREAD_CREATE = 20
    THREAD_JOIN = 21
    THREAD_EXIT = 22
    YIELD = 23

    # synchronisation
    SEM_POST = 30
    SEM_WAIT = 31
    BARRIER_WAIT = 32
    MUTEX_LOCK = 33
    MUTEX_UNLOCK = 34

    # message passing (used by the MPI-like runtime)
    MSG_SEND = 40
    MSG_RECV = 41
    MSG_PROBE = 42


#: Value returned by SBRK when the heap cannot grow further.
SBRK_FAILED = 0

#: Wildcard rank accepted by MSG_RECV / MSG_PROBE.
ANY_RANK = (1 << 32) - 1


class SyscallError(IntEnum):
    """Negative-style error codes returned in the return register.

    Because registers are unsigned, error codes are encoded as small
    magic values well above any valid result; guest code checks for
    them explicitly.
    """

    OK = 0
    INVALID = 0xFFFF_FFF1
    DEADLOCK = 0xFFFF_FFF2
    NO_RESOURCE = 0xFFFF_FFF3
