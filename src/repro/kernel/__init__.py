"""Miniature guest operating system.

The paper runs its benchmarks on top of a full Linux kernel and injects
faults during the application lifespan, which includes OS system calls
and parallelization API subroutines.  This package provides the
equivalent substrate for the reproduction: a small kernel with

* processes and threads scheduled onto the simulated cores,
* a system call interface (exit, output, heap, threading, semaphores,
  barriers and message passing),
* a program loader that builds the guest address space,
* segmentation-fault delivery for memory protection violations.
"""

from repro.kernel.kernel import Kernel
from repro.kernel.loader import ProgramLoader
from repro.kernel.syscalls import Syscall
from repro.kernel.threads import Process, ProcessState, Thread, ThreadState

__all__ = [
    "Kernel",
    "ProgramLoader",
    "Syscall",
    "Process",
    "ProcessState",
    "Thread",
    "ThreadState",
]
