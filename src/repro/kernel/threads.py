"""Process and thread control blocks."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

from repro.cpu.core import CoreContext
from repro.isa.program import Program
from repro.memory.main_memory import AddressSpace, MemorySegment


class ThreadState(Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    EXITED = "exited"


class ProcessState(Enum):
    RUNNING = "running"
    EXITED = "exited"
    KILLED = "killed"


@dataclass
class Thread:
    """A schedulable guest thread."""

    tid: int
    process: "Process"
    context: Optional[CoreContext] = None
    state: ThreadState = ThreadState.READY
    core_id: Optional[int] = None
    stack: Optional[MemorySegment] = None
    block_reason: Optional[str] = None
    block_key: Optional[object] = None
    pending_retval: Optional[int] = None
    joiners: list = field(default_factory=list)
    exit_value: int = 0
    slice_used: int = 0
    instructions_executed: int = 0

    @property
    def name(self) -> str:
        return f"{self.process.name}.t{self.tid}"

    def is_live(self) -> bool:
        return self.state not in (ThreadState.EXITED,)


@dataclass
class Process:
    """A guest process: one program image plus one address space."""

    pid: int
    name: str
    program: Program
    address_space: AddressSpace
    rank: int = 0
    nranks: int = 1
    job_id: int = 0
    nthreads_hint: int = 1
    state: ProcessState = ProcessState.RUNNING
    exit_code: int = 0
    fault_kind: Optional[str] = None
    fault_message: Optional[str] = None
    output: bytearray = field(default_factory=bytearray)
    threads: list[Thread] = field(default_factory=list)
    heap_break: int = 0
    heap_limit: int = 0
    next_stack_base: int = 0
    semaphores: dict[int, int] = field(default_factory=dict)
    sem_waiters: dict[int, list[Thread]] = field(default_factory=dict)
    barriers: dict[int, list[Thread]] = field(default_factory=dict)
    mutexes: dict[int, Optional[Thread]] = field(default_factory=dict)
    mutex_waiters: dict[int, list[Thread]] = field(default_factory=dict)

    def live_threads(self) -> list[Thread]:
        return [t for t in self.threads if t.is_live()]

    def is_live(self) -> bool:
        return self.state == ProcessState.RUNNING

    def output_text(self) -> str:
        return self.output.decode("utf-8", errors="replace")

    def main_thread(self) -> Thread:
        return self.threads[0]
