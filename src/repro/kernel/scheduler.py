"""Round-robin thread scheduler.

Threads ready to run wait in a FIFO queue; idle cores pick up the next
ready thread.  A running thread is preempted once its time slice
(measured in executed instructions) expires and another thread is
waiting.  Sub-utilised cores simply stay idle — the paper notes that an
idle core "executes a thread scheduling policy and when no thread is
suitable the core waits in a sleep mode".
"""

from __future__ import annotations

from collections import deque

from repro.kernel.threads import Thread, ThreadState


class RoundRobinScheduler:
    """FIFO ready queue with instruction-count time slices."""

    def __init__(self, quantum: int = 20_000):
        self.quantum = quantum
        self._ready: deque[Thread] = deque()
        self.enqueue_count = 0
        self.dispatch_count = 0
        self.preemption_count = 0

    def add(self, thread: Thread) -> None:
        thread.state = ThreadState.READY
        self._ready.append(thread)
        self.enqueue_count += 1

    def next_ready(self) -> Thread | None:
        """Pop the next live ready thread (skipping stale entries)."""
        while self._ready:
            thread = self._ready.popleft()
            if thread.state == ThreadState.READY and thread.process.is_live():
                self.dispatch_count += 1
                return thread
        return None

    def has_ready(self) -> bool:
        return any(t.state == ThreadState.READY and t.process.is_live() for t in self._ready)

    def ready_count(self) -> int:
        return sum(1 for t in self._ready if t.state == ThreadState.READY and t.process.is_live())

    def should_preempt(self, thread: Thread) -> bool:
        return thread.slice_used >= self.quantum and self.has_ready()

    def note_preemption(self) -> None:
        self.preemption_count += 1

    def capture_state(self) -> dict:
        """Checkpoint view: queue order (as pid/tid pairs) and counters.

        Stale queue entries (threads that exited or blocked while
        enqueued) are captured too so that restored dispatch behaviour
        and counters match a straight run exactly.
        """
        return {
            "ready": tuple((t.process.pid, t.tid) for t in self._ready),
            "enqueue_count": self.enqueue_count,
            "dispatch_count": self.dispatch_count,
            "preemption_count": self.preemption_count,
        }

    def restore_state(self, state: dict, resolve) -> None:
        """Rebuild the queue; ``resolve(pid, tid)`` maps ids to live threads."""
        self._ready = deque(resolve(pid, tid) for pid, tid in state["ready"])
        self.enqueue_count = state["enqueue_count"]
        self.dispatch_count = state["dispatch_count"]
        self.preemption_count = state["preemption_count"]

    def discard_process(self, process) -> None:
        """Drop queued threads belonging to a terminated process."""
        self._ready = deque(t for t in self._ready if t.process is not process)

    def stats(self) -> dict[str, int]:
        return {
            "enqueues": self.enqueue_count,
            "dispatches": self.dispatch_count,
            "preemptions": self.preemption_count,
            "quantum": self.quantum,
        }
