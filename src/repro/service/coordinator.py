"""Campaign coordinator: lease scenarios to workers over HTTP.

The coordinator owns a :class:`~repro.orchestration.store.CampaignStore`
and exposes the store's lease protocol as five JSON endpoints, so
workers that do *not* share the store's filesystem can still partition
one campaign:

```
POST /lease       {"worker": id}                  -> a scenario grant or null
POST /renew       {"worker": id, "scenario_id"}   -> heartbeat, {"ok": bool}
POST /complete    {"worker", "scenario_id", "report": <shard payload>}
POST /checkpoint  {"worker", "scenario_id", "partial": <batch state>}
POST /fail        {"worker", "scenario_id", "phase", "error_type", "error"}
GET  /status                                      -> progress + leases + failures
GET  /results/<table1|target_table|hardening_table|efficiency_table>
```

All lease state lives in the store's ``leases/`` directory — the
coordinator adds no second source of truth — so a deployment can mix
HTTP workers with processes running
:meth:`~repro.orchestration.runner.CampaignRunner.run_leased` directly
against a shared filesystem, and a restarted coordinator picks up
exactly where the store says the campaign is.

A grant carries everything a worker needs to execute deterministically:
the scenario (``Scenario.as_dict``), the campaign configuration
(``CampaignConfig.as_dict``) and the fault count, so workers never need
local campaign flags that could diverge from the coordinator's.  For
adaptive campaigns the grant additionally carries the sampling plan,
the (frozen) mined prior and the scenario's latest batch checkpoint, so
a reclaimed scenario continues its predecessor's deterministic batch
stream instead of restarting it.

The server is a stdlib ``ThreadingHTTPServer``; store mutations are
serialized by an in-process lock (the lease files additionally protect
against *other* processes sharing the store root).
"""

from __future__ import annotations

import json
import threading
from collections import Counter
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig, ScenarioReport
from repro.npb.suite import Scenario
from repro.orchestration.logging import CampaignLogger
from repro.orchestration.runner import prepare_store
from repro.orchestration.store import DEFAULT_LEASE_TTL, CampaignStore, ScenarioFailure
from repro.service.results import ResultsService
from repro.stats.plan import SamplingPlan
from repro.stats.prior import MinedPrior


class CampaignCoordinator:
    """Lease bookkeeping and result ingestion for one campaign."""

    def __init__(
        self,
        store: Union[CampaignStore, str, Path],
        scenarios: Iterable[Scenario],
        config: Optional[CampaignConfig] = None,
        faults: Optional[int] = None,
        resume: bool = False,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        logger: Optional[CampaignLogger] = None,
        plan: Optional[SamplingPlan] = None,
        prior: Optional[MinedPrior] = None,
    ) -> None:
        self.store = store if isinstance(store, CampaignStore) else CampaignStore(store)
        self.scenarios = list(scenarios)
        self.by_id = {scenario.scenario_id: scenario for scenario in self.scenarios}
        self.config = config or CampaignConfig()
        self.faults = faults
        self.lease_ttl = lease_ttl
        self.logger = logger or CampaignLogger("coordinator", quiet=True)
        self.plan = plan
        self.prior = prior
        self._lock = threading.Lock()
        self.prior_attempts = prepare_store(
            self.store,
            list(self.by_id),
            self.config.as_dict(),
            faults,
            resume,
            plan=plan.as_dict() if plan is not None else None,
        )
        self.results = ResultsService(self.store)
        #: times each scenario was granted to a worker.  With healthy
        #: workers every count stays at 1; a count above 1 means a ttl
        #: expired and the scenario was reclaimed.  The distributed
        #: smoke asserts on this to prove nothing ran twice.
        self.lease_grants: Counter = Counter()
        #: every grant as ``(scenario_id, worker)``, in grant order —
        #: the audit trail behind the counter
        self.grant_log: list[tuple[str, str]] = []
        #: scenarios that failed under this coordinator: quarantined
        #: from re-granting for this coordinator's lifetime (restarting
        #: with ``resume=True`` retries them once more), so one broken
        #: scenario cannot trap the worker fleet in a retry loop
        self.failed_ids: set = set()

    # ------------------------------------------------------------------
    # endpoints (HTTP-agnostic: each takes/returns JSON-safe dicts)
    # ------------------------------------------------------------------

    def lease(self, worker: str) -> dict:
        """Grant the next runnable scenario to ``worker``, if any.

        ``{"scenario": null, "done": true}`` ends a worker's poll loop;
        ``done: false`` means everything is leased out but the campaign
        is still in flight — the worker backs off and polls again, in
        case a peer dies and its lease expires.
        """
        with self._lock:
            claimable = [sid for sid in self.by_id if sid not in self.failed_ids]
            lease = self.store.claim_next(worker, scenario_ids=claimable, ttl=self.lease_ttl)
            if lease is None:
                pending = [
                    sid
                    for sid in self.store.pending_ids()
                    if sid in self.by_id and sid not in self.failed_ids
                ]
                return {"scenario": None, "done": not pending}
            self.lease_grants[lease.scenario_id] += 1
            self.grant_log.append((lease.scenario_id, worker))
        self.logger.info(f"leased {lease.scenario_id} to {worker}")
        grant = {
            "scenario": self.by_id[lease.scenario_id].as_dict(),
            "faults": self.faults,
            "config": self.config.as_dict(),
            "lease_ttl": self.lease_ttl,
        }
        if self.plan is not None:
            grant["plan"] = self.plan.as_dict()
            if self.prior is not None:
                grant["prior"] = self.prior.as_dict()
            # Hand a reclaimed scenario its predecessor's checkpoint so
            # the batch stream continues instead of restarting.
            grant["partial"] = self.store.load_partial(lease.scenario_id)
        return grant

    def renew(self, worker: str, scenario_id: str) -> dict:
        with self._lock:
            ok = self.store.renew_lease(scenario_id, worker)
        if not ok:
            self.logger.warning(f"renew refused: {worker} no longer holds {scenario_id}")
        return {"ok": ok}

    def complete(self, worker: str, scenario_id: str, report_payload: dict) -> dict:
        """Ingest a finished scenario: write its shard, release the lease.

        The shard is written only if ``worker`` still holds the lease
        (see ``CampaignStore.commit_leased``); a worker that stalled
        past its ttl gets ``{"ok": false}`` and must discard locally.
        """
        report = ScenarioReport.from_payload(report_payload)
        if report.scenario_id != scenario_id:
            raise SimulatorError(
                f"report is for {report.scenario_id!r} but the completion "
                f"names {scenario_id!r}"
            )
        with self._lock:
            ok = self.store.commit_leased(report, worker)
        if ok:
            self.logger.info(f"completed {scenario_id} ({worker})")
        else:
            self.logger.warning(
                f"rejected completion of {scenario_id} from {worker}: lease not held"
            )
        return {"ok": ok}

    def checkpoint(self, worker: str, scenario_id: str, partial: dict) -> dict:
        """Persist a batch checkpoint, iff ``worker`` still holds the lease."""
        with self._lock:
            ok = self.store.write_partial_leased(scenario_id, partial, worker)
        if not ok:
            self.logger.warning(
                f"rejected checkpoint of {scenario_id} from {worker}: lease not held"
            )
        return {"ok": ok}

    def fail(self, worker: str, scenario_id: str, phase: str, error_type: str, error: str) -> dict:
        failure = ScenarioFailure(
            scenario_id=scenario_id,
            phase=phase,
            error_type=error_type,
            error=error,
            attempts=self.prior_attempts.get(scenario_id, 0) + 1,
        )
        self.prior_attempts[scenario_id] = failure.attempts
        with self._lock:
            self.failed_ids.add(scenario_id)
            self.store.write_failure(failure)
            self.store.release_lease(scenario_id, worker)
        self.logger.warning(
            f"failed {scenario_id} ({worker}, {phase} phase): {error_type}: {error}"
        )
        return {"ok": True, "attempts": failure.attempts}

    def status(self) -> dict:
        status = self.results.status()
        status["lease_grants"] = dict(self.lease_grants)
        status["grant_log"] = [list(entry) for entry in self.grant_log]
        return status

    def table(self, name: str) -> dict:
        return self.results.table(name)

    @property
    def done(self) -> bool:
        """No grantable work left: every scenario has a shard or failed."""
        return not [sid for sid in self.store.pending_ids() if sid not in self.failed_ids]


class CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes the coordinator's endpoints; JSON in, JSON out."""

    #: quiets the default per-request stderr chatter; requests surface
    #: through the coordinator's logger at debug level instead
    def log_message(self, format: str, *args) -> None:  # noqa: A002 — stdlib signature
        self.server.coordinator.logger.debug(f"http {format % args}")

    def _respond(self, payload: dict, code: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if not length:
            return {}
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def do_POST(self) -> None:  # noqa: N802 — stdlib dispatch name
        coordinator = self.server.coordinator
        try:
            body = self._read_body()
            if self.path == "/lease":
                self._respond(coordinator.lease(str(body["worker"])))
            elif self.path == "/renew":
                self._respond(coordinator.renew(str(body["worker"]), str(body["scenario_id"])))
            elif self.path == "/complete":
                self._respond(
                    coordinator.complete(
                        str(body["worker"]), str(body["scenario_id"]), body["report"]
                    )
                )
            elif self.path == "/checkpoint":
                self._respond(
                    coordinator.checkpoint(
                        str(body["worker"]), str(body["scenario_id"]), body["partial"]
                    )
                )
            elif self.path == "/fail":
                self._respond(
                    coordinator.fail(
                        str(body["worker"]),
                        str(body["scenario_id"]),
                        str(body.get("phase", "run")),
                        str(body.get("error_type", "Error")),
                        str(body.get("error", "")),
                    )
                )
            else:
                self._respond({"error": f"unknown endpoint {self.path}"}, code=404)
        except (KeyError, ValueError) as exc:
            self._respond({"error": f"bad request: {exc}"}, code=400)
        except SimulatorError as exc:
            self._respond({"error": str(exc)}, code=400)
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            coordinator.logger.error(f"internal error on {self.path}: {exc}")
            self._respond({"error": f"{type(exc).__name__}: {exc}"}, code=500)

    def do_GET(self) -> None:  # noqa: N802 — stdlib dispatch name
        coordinator = self.server.coordinator
        try:
            if self.path == "/status":
                self._respond(coordinator.status())
            elif self.path.startswith("/results/"):
                self._respond(coordinator.table(self.path[len("/results/"):]))
            else:
                self._respond({"error": f"unknown endpoint {self.path}"}, code=404)
        except SimulatorError as exc:
            self._respond({"error": str(exc)}, code=400)
        except Exception as exc:  # noqa: BLE001 — a request must never kill the server
            coordinator.logger.error(f"internal error on {self.path}: {exc}")
            self._respond({"error": f"{type(exc).__name__}: {exc}"}, code=500)


def make_server(
    coordinator: CampaignCoordinator, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the coordinator to a threading HTTP server (port 0 = ephemeral)."""
    server = ThreadingHTTPServer((host, port), CoordinatorHandler)
    server.daemon_threads = True
    server.coordinator = coordinator
    return server


def serve(
    coordinator: CampaignCoordinator,
    host: str = "127.0.0.1",
    port: int = 0,
    until_complete: bool = False,
    poll_interval: float = 0.5,
) -> None:
    """Run the coordinator server until interrupted (or campaign done).

    ``until_complete`` turns the coordinator into a batch component: a
    watcher thread shuts the server down once every manifest scenario
    has a shard — what the CI smoke and scripted deployments use.
    """
    server = make_server(coordinator, host, port)
    bound_host, bound_port = server.server_address[:2]
    coordinator.logger.info(
        f"serving campaign at http://{bound_host}:{bound_port} "
        f"({len(coordinator.by_id)} scenarios, ttl {coordinator.lease_ttl:.0f}s)"
    )
    stop = threading.Event()
    if until_complete:
        def watch() -> None:
            while not stop.wait(poll_interval):
                if coordinator.done:
                    coordinator.logger.info("campaign complete; shutting down")
                    server.shutdown()
                    return

        threading.Thread(target=watch, name="coordinator-watch", daemon=True).start()
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        coordinator.logger.warning("interrupted; campaign store state is preserved")
    finally:
        stop.set()
        server.server_close()
