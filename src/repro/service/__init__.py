"""Distributed campaign service: coordinator, workers, results API.

Turns the single-host suite driver into a three-role system over the
campaign store (stdlib only — no external dependencies):

* :mod:`repro.service.coordinator` — a ``ThreadingHTTPServer`` exposing
  the store's lease protocol (``/lease``, ``/renew``, ``/complete``,
  ``/fail``) plus read-side endpoints (``/status``, ``/results/<table>``);
* :mod:`repro.service.worker` — a poll-loop agent that executes leased
  scenarios through the same ``CampaignRunner.run_one`` path as a local
  run, so distributed campaigns stay bit-identical;
* :mod:`repro.service.results` — a cached query layer materializing a
  ``ResultsDatabase`` from shards for concurrent readers.

See ``docs/orchestration.md`` ("Distributed campaigns").
"""

from repro.service.coordinator import CampaignCoordinator, make_server, serve
from repro.service.results import ResultsService, TABLE_NAMES, format_status
from repro.service.worker import CoordinatorClient, CoordinatorUnreachable, WorkerAgent

__all__ = [
    "CampaignCoordinator",
    "CoordinatorClient",
    "CoordinatorUnreachable",
    "ResultsService",
    "TABLE_NAMES",
    "WorkerAgent",
    "format_status",
    "make_server",
    "serve",
]
