"""Results service: the read side of a campaign store.

Shards are write-once JSON files; re-parsing all of them for every
status poll or table request would make the store the bottleneck the
moment several readers (dashboards, workers polling progress, the
``status`` CLI) hit one campaign.  :class:`ResultsService` materializes
a :class:`~repro.orchestration.database.ResultsDatabase` from the
shards once and caches it behind a *store signature* — the sorted
``(name, mtime_ns, size)`` of every shard file plus the manifest — so
concurrent readers share one parsed database and a new shard (or a
rewritten manifest) invalidates the cache on the next call.

The database is materialized in **manifest order** (extra shards
sorted after), which is the order a single-process ``run_suite`` of
the same suite inserts reports in — so a fingerprint of the
materialized database is directly comparable with a local run's.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.analysis.efficiency_table import efficiency_rows, render_efficiency_table
from repro.analysis.hardening_table import hardening_rows, render_hardening_table
from repro.analysis.recovery_table import recovery_rows, render_recovery_table
from repro.analysis.table1 import render_table1, table1_rows
from repro.analysis.target_table import render_target_table, target_masking_rows
from repro.errors import SimulatorError
from repro.orchestration.database import ResultsDatabase
from repro.orchestration.store import CampaignStore

#: Analysis tables the service knows how to serve.
TABLE_NAMES = ("table1", "target_table", "hardening_table", "recovery_table", "efficiency_table")


class _GoldenView:
    """Adapter: a shard's golden summary viewed as a golden-run result.

    ``table1_rows`` consumes ``GoldenRunResult`` objects; a results
    service only has shards.  Each report's ``golden_summary`` carries
    the two fields Table 1 needs (instruction count, single-run wall
    time), so this shim re-exposes them under the expected attributes.
    """

    __slots__ = ("scenario", "total_instructions", "wall_time_seconds")

    def __init__(self, report) -> None:
        self.scenario = report.scenario
        self.total_instructions = int(report.golden_summary.get("instructions", 0))
        self.wall_time_seconds = float(report.golden_summary.get("wall_time_seconds", 0.0))


class ResultsService:
    """Cached, concurrency-safe queries over one campaign store."""

    def __init__(self, store: Union[CampaignStore, str, Path]) -> None:
        self.store = store if isinstance(store, CampaignStore) else CampaignStore(store)
        self._lock = threading.Lock()
        self._signature: Optional[tuple] = None
        self._database: Optional[ResultsDatabase] = None
        #: served requests that reused the cached database (visibility
        #: for tests and the coordinator's debug logging)
        self.cache_hits = 0

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------

    def _store_signature(self) -> tuple:
        """Identity of the store's current contents, cheap to compute.

        mtime (nanoseconds) + size of every shard and failure file plus
        the manifest: any write through the store's atomic-replace
        protocol changes at least one entry.
        """
        entries = []
        for directory in (self.store.shards_dir, self.store.failures_dir):
            if not directory.exists():
                continue
            for path in sorted(directory.glob("*.json")):
                try:
                    stat = path.stat()
                except FileNotFoundError:
                    continue  # cleared between glob and stat
                entries.append((path.parent.name, path.name, stat.st_mtime_ns, stat.st_size))
        try:
            stat = self.store.manifest_path.stat()
            entries.append(("manifest", stat.st_mtime_ns, stat.st_size))
        except FileNotFoundError:
            pass
        return tuple(entries)

    def database(self) -> ResultsDatabase:
        """The campaign's current results, parsed once per store state."""
        signature = self._store_signature()
        with self._lock:
            if self._database is not None and signature == self._signature:
                self.cache_hits += 1
                return self._database
            self._database = self._materialize()
            self._signature = signature
            return self._database

    def invalidate(self) -> None:
        with self._lock:
            self._signature = None
            self._database = None

    def _materialize(self) -> ResultsDatabase:
        database = ResultsDatabase()
        completed = self.store.completed_ids()
        manifest = self.store.read_manifest()
        ordered = [
            sid for sid in (manifest.get("scenario_ids", []) if manifest else []) if sid in completed
        ]
        ordered += sorted(completed - set(ordered))
        for scenario_id in ordered:
            database.add_report(self.store.load_shard(scenario_id))
        for failure in self.store.load_failures():
            database.add_failure(failure)
        return database

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def outcome_totals(self) -> dict[str, int]:
        return self.database().outcome_totals()

    def status(self, now: Optional[float] = None) -> dict:
        """Campaign progress: counts, leases, failures, outcome totals."""
        now = time.time() if now is None else now
        manifest = self.store.read_manifest()
        suite_ids = list(manifest.get("scenario_ids", [])) if manifest else []
        database = self.database()
        completed = self.store.completed_ids()
        leases = self.store.active_leases(now)
        status = {
            "scenarios": len(suite_ids),
            "completed": len(completed),
            "pending": len([sid for sid in suite_ids if sid not in completed]),
            "leased": [
                {
                    "scenario_id": lease.scenario_id,
                    "owner": lease.owner,
                    "expires_in": round(lease.expires_at - now, 3),
                }
                for lease in leases
            ],
            "done": bool(suite_ids) and all(sid in completed for sid in suite_ids),
            "injections": database.total_injections(),
            "outcome_totals": database.outcome_totals(),
            "failures": [failure.as_dict() for failure in database.failures],
        }
        plan = manifest.get("plan") if manifest else None
        if plan is not None:
            # Adaptive stores only: fixed-count campaigns keep the exact
            # status payload they always had.
            status["adaptive"] = self._adaptive_progress(plan, suite_ids, database, completed)
        return status

    def _adaptive_progress(
        self, plan: dict, suite_ids: list, database: ResultsDatabase, completed: set
    ) -> dict:
        """Per-scenario CI convergence for an adaptive campaign.

        Finished scenarios read from their shard's ``adaptive`` payload;
        in-flight ones from the latest batch checkpoint in ``partials/``
        (spent so far + the half-width after the last recorded batch).
        """
        scenarios = []
        spent_total = 0
        for scenario_id in suite_ids:
            entry = {"scenario_id": scenario_id, "state": "pending",
                     "spent": 0, "half_width": None, "stopping": None}
            if scenario_id in completed:
                report = database.get(scenario_id)
                adaptive = (report.adaptive if report else None) or {}
                estimates = adaptive.get("estimates") or {}
                entry["state"] = "done"
                entry["spent"] = int(adaptive.get("spent", 0))
                entry["stopping"] = adaptive.get("stopping")
                if estimates:
                    entry["half_width"] = max(e["half_width"] for e in estimates.values())
            else:
                partial = self.store.load_partial(scenario_id)
                if partial is not None:
                    batches = partial.get("batches") or []
                    entry["state"] = "in_flight"
                    entry["spent"] = sum(int(batch.get("size", 0)) for batch in batches)
                    if batches:
                        entry["half_width"] = batches[-1].get("half_width")
            spent_total += entry["spent"]
            scenarios.append(entry)
        return {
            "target_half_width": plan.get("target_half_width"),
            "confidence": plan.get("confidence"),
            "spent_total": spent_total,
            "scenarios": scenarios,
        }

    def table(self, name: str) -> dict:
        """One analysis table as ``{"rows": [...], "rendered": str}``."""
        database = self.database()
        if name == "table1":
            manifest = self.store.read_manifest() or {}
            faults = manifest.get("faults") or (manifest.get("config") or {}).get(
                "faults_per_scenario", 8000
            )
            goldens = [_GoldenView(report) for report in database.reports.values()]
            rows = table1_rows(goldens, faults_per_scenario=faults)
            rendered = render_table1(rows)
        elif name == "target_table":
            rows = target_masking_rows(database)
            rendered = render_target_table(database)
        elif name == "hardening_table":
            rows = hardening_rows(database)
            rendered = render_hardening_table(database)
        elif name == "recovery_table":
            rows = recovery_rows(database)
            rendered = render_recovery_table(database)
        elif name == "efficiency_table":
            manifest = self.store.read_manifest() or {}
            rows = efficiency_rows(database, manifest.get("plan"))
            rendered = render_efficiency_table(rows)
        else:
            raise SimulatorError(
                f"unknown results table {name!r}; available: {', '.join(TABLE_NAMES)}"
            )
        return {"table": name, "rows": rows, "rendered": rendered}


def format_status(status: dict) -> str:
    """Human-readable rendering of a :meth:`ResultsService.status` dict.

    Used by the ``status`` CLI subcommand; failures — previously
    persisted but invisible from the command line — get one line each
    with their phase and error type.
    """
    lines = [
        f"scenarios: {status['completed']}/{status['scenarios']} completed, "
        f"{status['pending']} pending, {len(status['leased'])} leased"
        + (", campaign complete" if status.get("done") else "")
    ]
    lines.append(f"injections: {status['injections']}")
    totals = status.get("outcome_totals") or {}
    if any(totals.values()):
        lines.append(
            "outcomes: " + ", ".join(f"{k}={v}" for k, v in totals.items() if v)
        )
    for lease in status.get("leased", []):
        lines.append(
            f"leased: {lease['scenario_id']} -> {lease['owner']} "
            f"(expires in {lease['expires_in']:.0f}s)"
        )
    adaptive = status.get("adaptive")
    if adaptive:
        lines.append(
            f"adaptive: target half-width {adaptive['target_half_width']} at "
            f"{adaptive['confidence']:.0%} confidence, "
            f"{adaptive['spent_total']} faults spent"
        )
        for entry in adaptive.get("scenarios", []):
            width = entry.get("half_width")
            width_text = f"{width:.4f}" if width is not None else "-"
            line = (
                f"  {entry['scenario_id']}: {entry['state']}, "
                f"spent {entry['spent']}, half-width {width_text}"
            )
            if entry.get("stopping"):
                line += f", stop: {entry['stopping']}"
            lines.append(line)
    failures = status.get("failures", [])
    lines.append(f"failures: {len(failures)}")
    for failure in failures:
        lines.append(
            f"  FAILED {failure['scenario_id']} [{failure['phase']}] "
            f"{failure['error_type']}: {failure['error']} "
            f"(attempt {failure['attempts']})"
        )
    return "\n".join(lines)
