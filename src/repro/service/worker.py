"""Worker agent: pull scenarios from a coordinator, push back shards.

The execution half of the distributed campaign service.  A worker is a
poll loop around one :class:`~repro.orchestration.runner.CampaignRunner`:

1. ``POST /lease`` — ask for work.  The grant carries the scenario,
   the campaign configuration and the fault count, so the worker
   executes exactly the coordinator's campaign (never local flags that
   could diverge).
2. Execute through :meth:`CampaignRunner.run_one` — the same
   scenario-granular path the local suite loop uses, so a distributed
   campaign is bit-identical to a single-process run.
3. ``POST /complete`` with the lossless shard payload (or ``/fail``
   with a structured error).  A background heartbeat renews the lease
   every ``ttl / 4`` seconds while the scenario runs; if the lease was
   lost (the worker stalled past its ttl and the scenario was
   reclaimed) the result is discarded — the reclaiming peer's run is
   the one that counts.

Idle polls (everything leased out by peers) and coordinator connection
errors back off exponentially **with jitter**, so a fleet of workers
started by the same script does not stampede the coordinator in
lockstep.  ``request_stop()`` — wired to SIGINT by the CLI — drains
gracefully: the current scenario finishes and commits, then the loop
exits.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
import urllib.error
import urllib.request
from typing import Callable, Optional

from repro.errors import SimulatorError
from repro.injection.campaign import CampaignConfig
from repro.npb.suite import Scenario
from repro.orchestration.logging import CampaignLogger
from repro.orchestration.runner import CampaignRunner
from repro.stats.plan import SamplingPlan
from repro.stats.prior import MinedPrior


class CoordinatorUnreachable(SimulatorError):
    """The coordinator stayed unreachable through every retry."""


def jittered_backoff(attempt: int, base: float, ceiling: float, rng: random.Random) -> float:
    """Exponential backoff with multiplicative jitter in [0.5, 1.0].

    The shared delay policy of the service layer: the worker's idle/
    connect polling and the client's per-request retries draw from the
    same formula, so a fleet started by one script never stampedes the
    coordinator in lockstep.
    """
    delay = min(ceiling, base * (2.0 ** attempt))
    return delay * (0.5 + 0.5 * rng.random())


class CoordinatorClient:
    """Minimal JSON-over-HTTP client for the coordinator's endpoints.

    Connection-level failures (``URLError``, socket timeouts, refused
    connects) are retried up to ``retries`` times with jittered
    exponential backoff before the final ``ConnectionError`` escapes:
    a coordinator briefly unreachable — restarting, or behind a blinking
    link — must not cost a worker its held lease.  HTTP-level rejections
    (the coordinator *answered* and said no) are never retried.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_base: float = 0.5,
        backoff_max: float = 8.0,
        logger: Optional[CampaignLogger] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.logger = logger or CampaignLogger("client", quiet=True)
        self.rng = rng or random.Random()
        self._sleep = sleep

    def request(self, path: str, payload: Optional[dict] = None) -> dict:
        """One JSON exchange; ``payload=None`` sends a GET.

        Retries transient transport failures with jittered backoff (see
        class docstring); every retry is logged at role-prefixed INFO.
        """
        attempt = 0
        while True:
            try:
                return self._request_once(path, payload)
            except ConnectionError as exc:
                if attempt >= self.retries:
                    raise
                delay = jittered_backoff(attempt, self.backoff_base, self.backoff_max, self.rng)
                self.logger.info(
                    f"transient failure on {path} "
                    f"(attempt {attempt + 1}/{self.retries + 1}): {exc}; "
                    f"retrying in {delay:.1f}s"
                )
                self._sleep(delay)
                attempt += 1

    def _request_once(self, path: str, payload: Optional[dict] = None) -> dict:
        """One JSON round trip; ``payload=None`` sends a GET."""
        url = f"{self.base_url}{path}"
        if payload is None:
            request = urllib.request.Request(url)
        else:
            request = urllib.request.Request(
                url,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except ValueError:
                pass
            raise SimulatorError(f"coordinator rejected {path}: {detail}") from exc
        except (urllib.error.URLError, ConnectionError, TimeoutError) as exc:
            raise ConnectionError(f"coordinator unreachable at {url}: {exc}") from exc
        return body

    def post(self, path: str, payload: dict) -> dict:
        return self.request(path, payload)

    def get(self, path: str) -> dict:
        return self.request(path)


class _RemoteHeartbeat:
    """Renew one lease over HTTP while its scenario executes locally."""

    def __init__(self, client: CoordinatorClient, worker: str, scenario_id: str, ttl: float) -> None:
        self.client = client
        self.worker = worker
        self.scenario_id = scenario_id
        self.interval = max(0.05, ttl / 4.0)
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"renew-{scenario_id}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                response = self.client.post(
                    "/renew", {"worker": self.worker, "scenario_id": self.scenario_id}
                )
            except (ConnectionError, SimulatorError):
                continue  # transient; the ttl gives us 4 tries before expiry
            if not response.get("ok", False):
                self.lost = True
                return

    def __enter__(self) -> "_RemoteHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class WorkerAgent:
    """One campaign worker: poll, execute, report, repeat.

    Parameters
    ----------
    coordinator:
        Coordinator base URL (``http://host:port``) or a ready
        :class:`CoordinatorClient`.
    worker_id:
        Lease owner name; defaults to ``worker-<pid>``.
    workers / faults_per_job / job_retries:
        Forwarded to the per-config :class:`CampaignRunner` (``workers``
        is this agent's *local* pool size — 0 runs injections in
        process).
    poll_interval / backoff_max:
        Idle-poll base delay and the exponential backoff ceiling for
        idle polls and connection retries.
    max_connect_failures:
        Consecutive unreachable-coordinator retries before giving up
        with :class:`CoordinatorUnreachable`.
    rng:
        Jitter source, injectable for deterministic tests.
    """

    def __init__(
        self,
        coordinator: "CoordinatorClient | str",
        worker_id: Optional[str] = None,
        workers: int = 0,
        faults_per_job: int = 16,
        job_retries: int = 1,
        poll_interval: float = 1.0,
        backoff_max: float = 30.0,
        max_connect_failures: int = 10,
        logger: Optional[CampaignLogger] = None,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = None,
    ) -> None:
        self.worker_id = worker_id or f"worker-{os.getpid()}"
        self.pool_workers = workers
        self.faults_per_job = faults_per_job
        self.job_retries = job_retries
        self.poll_interval = poll_interval
        self.backoff_max = backoff_max
        self.max_connect_failures = max_connect_failures
        self.logger = logger or CampaignLogger(self.worker_id, quiet=True)
        self.rng = rng or random.Random()
        self._stop = threading.Event()
        self._sleep = sleep or self._stoppable_sleep
        # A client built here inherits the worker's role-prefixed logger,
        # jitter source and stoppable sleep, so its per-request retry
        # lines are attributable to this worker in fleet logs and a stop
        # request interrupts its backoff waits too.
        self.client = (
            coordinator
            if isinstance(coordinator, CoordinatorClient)
            else CoordinatorClient(
                coordinator, logger=self.logger, rng=self.rng, sleep=self._sleep
            )
        )
        self._runners: dict[str, CampaignRunner] = {}
        #: scenarios this agent completed / failed / discarded
        self.completed = 0
        self.failed = 0
        self.discarded = 0

    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Graceful drain: finish the scenario in flight, then exit."""
        self._stop.set()

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def _stoppable_sleep(self, seconds: float) -> None:
        self._stop.wait(seconds)

    def _backoff(self, attempt: int, base: Optional[float] = None) -> float:
        """Exponential backoff with multiplicative jitter in [0.5, 1.0]."""
        return jittered_backoff(attempt, base or self.poll_interval, self.backoff_max, self.rng)

    def _runner_for(
        self,
        config_dict: dict,
        plan_dict: Optional[dict] = None,
        prior_dict: Optional[dict] = None,
    ) -> CampaignRunner:
        """One runner per distinct campaign (config, plan, prior) triple.

        The plan and prior are part of the cache key: a runner carrying
        the wrong stopping rule or allocation prior would silently draw
        a different batch stream than the coordinator's campaign.
        """
        key = json.dumps(
            {"config": config_dict, "plan": plan_dict, "prior": prior_dict}, sort_keys=True
        )
        runner = self._runners.get(key)
        if runner is None:
            runner = CampaignRunner(
                CampaignConfig.from_dict(config_dict),
                workers=self.pool_workers,
                faults_per_job=self.faults_per_job,
                job_retries=self.job_retries,
                progress=self.logger.progress(),
                plan=SamplingPlan.from_dict(plan_dict) if plan_dict is not None else None,
                prior=MinedPrior.from_dict(prior_dict) if prior_dict is not None else None,
            )
            self._runners[key] = runner
        return runner

    # ------------------------------------------------------------------

    def _checkpoint(self, scenario_id: str, payload: dict) -> None:
        """Push one batch checkpoint; best effort (the ttl is the backstop)."""
        try:
            self.client.post(
                "/checkpoint",
                {"worker": self.worker_id, "scenario_id": scenario_id, "partial": payload},
            )
        except (ConnectionError, SimulatorError) as exc:
            # A lost checkpoint costs at most the batches since the last
            # one — a reclaiming peer replays from the previous state.
            self.logger.debug(f"checkpoint of {scenario_id} not persisted: {exc}")

    def _execute_grant(self, grant: dict) -> None:
        scenario = Scenario.from_dict(grant["scenario"])
        scenario_id = scenario.scenario_id
        runner = self._runner_for(grant["config"], grant.get("plan"), grant.get("prior"))
        ttl = float(grant.get("lease_ttl") or 120.0)
        adaptive = grant.get("plan") is not None
        with _RemoteHeartbeat(self.client, self.worker_id, scenario_id, ttl) as heartbeat:
            try:
                report = runner.run_one(
                    scenario,
                    grant.get("faults"),
                    partial=grant.get("partial") if adaptive else None,
                    checkpoint=self._checkpoint if adaptive else None,
                )
            except KeyboardInterrupt:
                # No /fail: an interrupt is not a scenario failure.  The
                # lease simply expires and a peer reclaims the scenario.
                self.logger.warning(f"interrupted during {scenario_id}; lease will expire")
                raise
            except Exception as exc:  # noqa: BLE001 — reported, loop continues
                self.failed += 1
                self.client.post(
                    "/fail",
                    {
                        "worker": self.worker_id,
                        "scenario_id": scenario_id,
                        "phase": "run",
                        "error_type": type(exc).__name__,
                        "error": str(exc),
                    },
                )
                return
        if heartbeat.lost:
            self.discarded += 1
            self.logger.warning(f"lease on {scenario_id} lost mid-run; discarding result")
            return
        response = self.client.post(
            "/complete",
            {
                "worker": self.worker_id,
                "scenario_id": scenario_id,
                "report": report.to_payload(),
            },
        )
        if response.get("ok", False):
            self.completed += 1
            self.logger.info(f"committed {scenario_id}")
        else:
            self.discarded += 1
            self.logger.warning(f"coordinator rejected {scenario_id}; result discarded")

    def run(self) -> int:
        """Poll until the campaign is done (or stop is requested).

        Returns the number of scenarios this agent completed.
        """
        idle_polls = 0
        connect_failures = 0
        self.logger.info(f"polling {self.client.base_url} as {self.worker_id}")
        while not self._stop.is_set():
            try:
                grant = self.client.post("/lease", {"worker": self.worker_id})
            except ConnectionError as exc:
                connect_failures += 1
                if connect_failures >= self.max_connect_failures:
                    raise CoordinatorUnreachable(
                        f"coordinator unreachable after {connect_failures} attempts: {exc}"
                    ) from exc
                delay = self._backoff(connect_failures, base=0.5)
                self.logger.debug(f"coordinator unreachable; retrying in {delay:.1f}s")
                self._sleep(delay)
                continue
            connect_failures = 0
            if grant.get("scenario") is None:
                if grant.get("done", False):
                    self.logger.info(
                        f"campaign complete: {self.completed} scenario(s) by this worker"
                    )
                    break
                idle_polls += 1
                delay = self._backoff(idle_polls)
                self.logger.debug(f"nothing claimable; polling again in {delay:.1f}s")
                self._sleep(delay)
                continue
            idle_polls = 0
            self._execute_grant(grant)
        if self._stop.is_set():
            self.logger.info(f"drained after stop request ({self.completed} completed)")
        return self.completed
