"""Linker: lays out global data, compiles every function and resolves labels.

The linker is what turns a set of MiniC modules (application code plus
the guest runtime libraries) into a loadable :class:`~repro.isa.program.Program`
for one target architecture — the reproduction's equivalent of invoking
the GCC 6.2 cross compiler with ``-O3 -mcpu=<target>``.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.compiler import ast
from repro.compiler.codegen import GlobalSlot, LinkContext, compile_function
from repro.compiler.optimizer import optimize_module
from repro.errors import LinkError
from repro.hardening.schemes import normalize_hardening
from repro.isa.arch import ArchSpec
from repro.isa.instructions import Instr, Op
from repro.isa.program import DataSymbol, Program
from repro.kernel.loader import TEXT_BASE
from repro.kernel.syscalls import Syscall

_BRANCH_LABEL_OPS = {Op.B, Op.BCC, Op.CBZ, Op.CBNZ, Op.BL}


def _element_size(arch: ArchSpec, typ: str) -> int:
    if typ == ast.BYTE:
        return 1
    if typ == ast.FLOAT:
        return arch.float_bytes
    return arch.word_bytes


def _encode_value(arch: ArchSpec, typ: str, value) -> bytes:
    if typ == ast.FLOAT:
        if arch.float_bytes == 8:
            return struct.pack("<d", float(value))
        return struct.pack("<f", float(value))
    if typ == ast.BYTE:
        return bytes([int(value) & 0xFF])
    return (int(value) & arch.word_mask).to_bytes(arch.word_bytes, "little")


def _layout_globals(modules: Sequence[ast.Module], arch: ArchSpec) -> tuple[dict[str, GlobalSlot], bytearray, dict[str, DataSymbol]]:
    slots: dict[str, GlobalSlot] = {}
    symbols: dict[str, DataSymbol] = {}
    image = bytearray()
    for module in modules:
        for declaration in module.globals:
            if declaration.name in slots:
                raise LinkError(f"global {declaration.name!r} defined in more than one module")
            elem = _element_size(arch, declaration.type)
            offset = (len(image) + elem - 1) & ~(elem - 1)
            image.extend(b"\x00" * (offset - len(image)))
            values: Iterable
            if declaration.init is None:
                values = [0] * declaration.count
            elif isinstance(declaration.init, (int, float)):
                values = [declaration.init] + [0] * (declaration.count - 1)
            else:
                init = list(declaration.init)
                if len(init) > declaration.count:
                    raise LinkError(
                        f"global {declaration.name!r} has {len(init)} initialisers for {declaration.count} elements"
                    )
                values = init + [0] * (declaration.count - len(init))
            for value in values:
                image.extend(_encode_value(arch, declaration.type, value))
            slots[declaration.name] = GlobalSlot(
                name=declaration.name,
                offset=offset,
                elem_size=elem,
                type=declaration.type,
                count=declaration.count,
            )
            symbols[declaration.name] = DataSymbol(
                name=declaration.name,
                offset=offset,
                size=elem * declaration.count,
                element_size=elem,
                is_float=declaration.type == ast.FLOAT,
            )
    return slots, image, symbols


def _collect_signatures(modules: Sequence[ast.Module]) -> dict[str, tuple[str, tuple[str, ...]]]:
    signatures: dict[str, tuple[str, tuple[str, ...]]] = {}
    for module in modules:
        for function in module.functions:
            if function.name in signatures:
                raise LinkError(f"function {function.name!r} defined in more than one module")
            signatures[function.name] = (function.return_type, tuple(t for _, t in function.params))
    return signatures


def _startup_stubs() -> tuple[list[Instr], dict[str, int], dict[str, tuple[int, int]]]:
    """The ``_start`` and ``_thread_exit`` stubs prepended to every program."""
    instrs = [
        # _start: the loader passes (rank, nranks, nthreads) in the first
        # argument registers; they flow straight into main().
        Instr(Op.BL, imm=0, label="main"),
        # main's return value is already in the return/first-arg register.
        Instr(Op.SVC, imm=int(Syscall.EXIT)),
        # _thread_exit: target of the link register for spawned threads.
        Instr(Op.SVC, imm=int(Syscall.THREAD_EXIT)),
    ]
    labels = {"_start": 0, "_thread_exit": 2}
    ranges = {"_start": (0, 2), "_thread_exit": (2, 3)}
    return instrs, labels, ranges


def link(
    modules: Sequence[ast.Module],
    arch: ArchSpec,
    name: str = "a.out",
    opt_level: int = 3,
    heap_size: int = 1 << 16,
    stack_size: int = 1 << 14,
    hardening: str | None = None,
    harden_modules: Sequence[str] | None = None,
    shadow_ranks: dict | None = None,
) -> Program:
    """Link a set of MiniC modules into an executable program.

    ``hardening`` selects a compiler-implemented fault-tolerance scheme
    (``"dwc"``, ``"cfc"``, ``"dwc+cfc"``; ``None``/``"off"`` builds the
    plain baseline).  The transform runs after optimisation and before
    code generation (``optimize_module -> harden_module ->
    compile_module``), so both ISA backends inherit identical
    instrumentation.  ``harden_modules`` restricts the transform to the
    named modules (campaigns harden the application module only —
    selective hardening); by default every module except the trap
    library itself is hardened.  The guest trap library is linked in
    automatically when hardening is enabled.

    ``shadow_ranks`` (function -> variable names) feeds selective
    ``dwcN`` schemes: only the named variables are duplicated.  Callers
    obtain it from the static vulnerability analysis of the *baseline*
    build (:func:`repro.staticlint.top_variables`).
    """
    hardening = normalize_hardening(hardening)
    modules = [optimize_module(module, opt_level) for module in modules]
    if hardening is not None:
        from repro.hardening import FT_MODULE_NAME, FT_TRAP, build_ft_module, harden_module

        if not any(f.name == FT_TRAP for module in modules for f in module.functions):
            modules = modules + [optimize_module(build_ft_module(), opt_level)]
        if harden_modules is None:
            selected = {module.name for module in modules if module.name != FT_MODULE_NAME}
        else:
            selected = set(harden_modules)
        modules = [
            harden_module(module, hardening, shadow_ranks=shadow_ranks)
            if module.name in selected
            else module
            for module in modules
        ]
    slots, image, symbols = _layout_globals(modules, arch)
    signatures = _collect_signatures(modules)
    if "main" not in signatures:
        raise LinkError(f"program {name!r} does not define a main() function")
    ctx = LinkContext(arch=arch, globals=slots, signatures=signatures)

    instructions, labels, function_ranges = _startup_stubs()
    line_table: dict[int, tuple[str, int]] = {}
    variable_homes: dict[str, dict[str, tuple[str, int]]] = {}
    for module in modules:
        for function in module.functions:
            body, local_labels, local_lines, homes = compile_function(function, ctx)
            variable_homes[function.name] = homes
            base = len(instructions)
            for label, index in local_labels.items():
                if label in labels:
                    raise LinkError(f"duplicate label {label!r}")
                labels[label] = base + index
            for index, record in local_lines.items():
                line_table[base + index] = record
            function_ranges[function.name] = (base, base + len(body))
            instructions.extend(body)

    for instr in instructions:
        if instr.label is None:
            continue
        if instr.label not in labels:
            raise LinkError(f"undefined symbol {instr.label!r} referenced from {name!r}")
        target = labels[instr.label]
        if instr.op in _BRANCH_LABEL_OPS:
            instr.imm = target
        elif instr.op == Op.MOVI:
            instr.imm = TEXT_BASE + 4 * target
        else:
            raise LinkError(f"cannot relocate label on opcode {instr.op!r}")

    return Program(
        arch=arch,
        instructions=instructions,
        labels=labels,
        data_image=image,
        symbols=symbols,
        entry="_start",
        bss_size=0,
        heap_size=heap_size,
        stack_size=stack_size,
        name=name,
        function_ranges=function_ranges,
        line_table=line_table,
        variable_homes=variable_homes,
    )
