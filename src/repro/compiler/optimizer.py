"""AST-level optimisation passes (the ``-O3`` stand-in).

The passes are conservative: constant folding, algebraic identities and
dead-branch elimination.  They run before code generation so that both
backends benefit identically, mirroring the paper's setup where the
same source and optimisation level are used for both ISAs.
"""

from __future__ import annotations

from repro.compiler import ast


def _is_const(expr: ast.Expr) -> bool:
    return isinstance(expr, (ast.IntConst, ast.FloatConst))


def _const_value(expr: ast.Expr):
    return expr.value


def _fold_binop(node: ast.BinOp) -> ast.Expr:
    left, right = node.left, node.right
    if _is_const(left) and _is_const(right):
        a, b = _const_value(left), _const_value(right)
        try:
            result = _eval_const_binop(node.op, a, b)
        except (ZeroDivisionError, ValueError):
            return node
        if node.type == ast.INT or node.op in ast.BinOp.COMPARISONS:
            return ast.IntConst(int(result))
        return ast.FloatConst(float(result))
    # algebraic identities on the integer/float domain
    if node.op == "+":
        if _is_const(right) and _const_value(right) == 0:
            return left
        if _is_const(left) and _const_value(left) == 0:
            return right
    if node.op == "-" and _is_const(right) and _const_value(right) == 0:
        return left
    if node.op == "*":
        if _is_const(right) and _const_value(right) == 1:
            return left
        if _is_const(left) and _const_value(left) == 1:
            return right
    if node.op == "/" and _is_const(right) and _const_value(right) == 1:
        return left
    return node


def _eval_const_binop(op: str, a, b):
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "/":
        if isinstance(a, int) and isinstance(b, int):
            if b == 0:
                raise ZeroDivisionError
            quotient = abs(a) // abs(b)
            return -quotient if (a < 0) != (b < 0) else quotient
        return a / b
    if op == "%":
        if b == 0:
            raise ZeroDivisionError
        return a - (abs(a) // abs(b)) * (b if (a < 0) == (b < 0) else -b) if False else int(a) % int(b)
    if op == "&":
        return int(a) & int(b)
    if op == "|":
        return int(a) | int(b)
    if op == "^":
        return int(a) ^ int(b)
    if op == "<<":
        return int(a) << int(b)
    if op == ">>":
        return int(a) >> int(b)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    raise ValueError(f"unknown operator {op!r}")


def fold_expr(expr: ast.Expr) -> ast.Expr:
    """Recursively fold constant sub-expressions."""
    if isinstance(expr, ast.BinOp):
        folded = ast.BinOp(expr.op, fold_expr(expr.left), fold_expr(expr.right))
        return _fold_binop(folded)
    if isinstance(expr, ast.UnOp):
        operand = fold_expr(expr.operand)
        if isinstance(operand, ast.IntConst):
            if expr.op == "neg":
                return ast.IntConst(-operand.value)
            if expr.op == "not":
                return ast.IntConst(int(operand.value == 0))
            if expr.op == "inv":
                return ast.IntConst(~operand.value)
        if isinstance(operand, ast.FloatConst) and expr.op == "neg":
            return ast.FloatConst(-operand.value)
        return ast.UnOp(expr.op, operand)
    if isinstance(expr, ast.Cast):
        inner = fold_expr(expr.expr)
        if isinstance(inner, ast.IntConst) and expr.type == ast.FLOAT:
            return ast.FloatConst(float(inner.value))
        if isinstance(inner, ast.FloatConst) and expr.type == ast.INT:
            return ast.IntConst(int(inner.value))
        return ast.Cast(inner, expr.type)
    if isinstance(expr, ast.Index):
        return ast.Index(expr.name, fold_expr(expr.index), expr.type)
    if isinstance(expr, ast.Deref):
        return ast.Deref(fold_expr(expr.address), expr.type)
    if isinstance(expr, ast.Call):
        return ast.Call(expr.name, [fold_expr(a) for a in expr.args], type=expr.type)
    if isinstance(expr, ast.CallPtr):
        return ast.CallPtr(fold_expr(expr.target), [fold_expr(a) for a in expr.args], type=expr.type)
    return expr


def _fold_stmt(stmt: ast.Stmt) -> list[ast.Stmt]:
    if isinstance(stmt, ast.Assign):
        return [ast.Assign(stmt.name, fold_expr(stmt.value))]
    if isinstance(stmt, ast.StoreIndex):
        return [ast.StoreIndex(stmt.name, fold_expr(stmt.index), fold_expr(stmt.value))]
    if isinstance(stmt, ast.StoreDeref):
        return [ast.StoreDeref(fold_expr(stmt.address), fold_expr(stmt.value), stmt.type)]
    if isinstance(stmt, ast.If):
        cond = fold_expr(stmt.cond)
        then_body = fold_body(stmt.then_body)
        else_body = fold_body(stmt.else_body)
        if isinstance(cond, ast.IntConst):
            return then_body if cond.value else else_body
        return [ast.If(cond, then_body, else_body)]
    if isinstance(stmt, ast.While):
        cond = fold_expr(stmt.cond)
        if isinstance(cond, ast.IntConst) and cond.value == 0:
            return []
        return [ast.While(cond, fold_body(stmt.body))]
    if isinstance(stmt, ast.For):
        return [ast.For(stmt.var, fold_expr(stmt.start), fold_expr(stmt.end), fold_body(stmt.body), fold_expr(stmt.step))]
    if isinstance(stmt, ast.Return):
        return [ast.Return(fold_expr(stmt.value) if stmt.value is not None else None)]
    if isinstance(stmt, ast.ExprStmt):
        return [ast.ExprStmt(fold_expr(stmt.expr))]
    return [stmt]


def fold_body(body: list[ast.Stmt]) -> list[ast.Stmt]:
    out: list[ast.Stmt] = []
    for stmt in body:
        out.extend(_fold_stmt(stmt))
    return out


def optimize_function(function: ast.Function) -> ast.Function:
    return ast.Function(
        name=function.name,
        params=list(function.params),
        locals=list(function.locals),
        body=fold_body(function.body),
        return_type=function.return_type,
    )


def optimize_module(module: ast.Module, level: int = 3) -> ast.Module:
    """Apply the optimisation pipeline to every function of a module."""
    if level <= 0:
        return module
    return ast.Module(
        name=module.name,
        functions=[optimize_function(f) for f in module.functions],
        globals=list(module.globals),
    )
