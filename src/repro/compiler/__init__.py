"""MiniC compiler: the reproduction's stand-in for the GCC 6.2 cross compiler.

Benchmarks and guest runtimes are written once as MiniC abstract syntax
trees (identical "source code", as in the paper) and compiled for each
target ISA.  The per-ISA differences the paper attributes to the
compiler are reproduced here:

* the v7 backend has fewer allocatable registers, so it spills more and
  emits more load/store instructions;
* the v7 backend has no hardware floating point and lowers every float
  operation to a call into the guest software float library;
* the v8 backend uses the larger integer register file and the hardware
  FP unit.

The pipeline runs ``optimize_module -> harden_module -> compile_module``
per module: the optional post-optimise hardening stage (see
:mod:`repro.hardening`) applies compiler-implemented fault tolerance
identically for both backends.
"""

from repro.compiler import ast
from repro.compiler.codegen import compile_module
from repro.compiler.linker import link
from repro.compiler.optimizer import optimize_module

__all__ = ["ast", "compile_module", "link", "optimize_module"]
