"""MiniC code generation for the two target ISAs.

The backend is a straightforward tree-walking code generator with a
static register allocator:

* local variables live in callee-saved registers when available and in
  stack slots otherwise (the v7 backend, with fewer registers, spills
  more — reproducing the load/store pressure the paper observes);
* expressions are evaluated into caller-saved scratch registers;
* floating point expressions map to FP instructions on v8 and to calls
  into the guest software float library on v7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler import ast
from repro.compiler.builtins import BUILTINS
from repro.cpu.fpu import double_to_bits, single_to_bits
from repro.errors import CompileError
from repro.isa.arch import ArchSpec
from repro.isa.instructions import Cond, Instr, Op

#: number of per-frame scratch spill slots reserved for call sequences
NUM_TEMP_SLOTS = 14

_SOFTFLOAT_BINOPS = {"+": "__sf_add", "-": "__sf_sub", "*": "__sf_mul", "/": "__sf_div"}

_COMPARE_CONDS = {"==": Cond.EQ, "!=": Cond.NE, "<": Cond.LT, "<=": Cond.LE, ">": Cond.GT, ">=": Cond.GE}
_INVERTED = {
    Cond.EQ: Cond.NE,
    Cond.NE: Cond.EQ,
    Cond.LT: Cond.GE,
    Cond.GE: Cond.LT,
    Cond.GT: Cond.LE,
    Cond.LE: Cond.GT,
}

_IMMEDIATE_FORMS = {"+": Op.ADDI, "-": Op.SUBI, "*": Op.MULI, "&": Op.ANDI, "|": Op.ORRI, "^": Op.EORI, "<<": Op.LSLI, ">>": Op.ASRI}
_REGISTER_FORMS = {"+": Op.ADD, "-": Op.SUB, "*": Op.MUL, "/": Op.SDIV, "&": Op.AND, "|": Op.ORR, "^": Op.EOR, "<<": Op.LSL, ">>": Op.ASR}
_FP_FORMS = {"+": Op.FADD, "-": Op.FSUB, "*": Op.FMUL, "/": Op.FDIV}


@dataclass
class GlobalSlot:
    """Placement of one global symbol inside the data segment."""

    name: str
    offset: int
    elem_size: int
    type: str
    count: int


@dataclass
class LinkContext:
    """Information the code generator needs about the whole program."""

    arch: ArchSpec
    globals: dict[str, GlobalSlot]
    signatures: dict[str, tuple[str, tuple[str, ...]]] = field(default_factory=dict)

    def global_slot(self, name: str) -> GlobalSlot:
        if name not in self.globals:
            raise CompileError(f"undefined global symbol {name!r}")
        return self.globals[name]

    def return_type_of(self, name: str) -> str:
        if name in BUILTINS:
            return BUILTINS[name].return_type
        if name in self.signatures:
            return self.signatures[name][0]
        raise CompileError(f"call to undefined function {name!r}")


class Value:
    """An evaluated expression: which register holds it and its kind."""

    __slots__ = ("kind", "reg", "borrowed")

    def __init__(self, kind: str, reg: int, borrowed: bool = False):
        self.kind = kind  # "int" (GPR) or "fp" (FPR)
        self.reg = reg
        self.borrowed = borrowed


class FunctionCodegen:
    """Generates code for a single MiniC function."""

    def __init__(self, function: ast.Function, ctx: LinkContext):
        self.func = function
        self.ctx = ctx
        self.arch = ctx.arch
        self.abi = ctx.arch.abi
        self.word = ctx.arch.word_bytes
        self.float_in_fp = ctx.arch.has_hw_float
        self.instrs: list[Instr] = []
        self.labels: dict[str, int] = {}
        self.line_table: dict[int, tuple[str, int]] = {}
        self.var_types = function.variable_types()
        self._label_counter = 0
        self._stmt_counter = 0
        self._temp_depth = 0
        self._loop_stack: list[tuple[str, str]] = []
        self._int_scratch_free = list(self.abi.scratch_regs)
        self._fp_scratch_free = list(self.abi.fp_scratch)
        self._allocate_homes()

    # ------------------------------------------------------------------
    # frame layout and register homes
    # ------------------------------------------------------------------

    def _allocate_homes(self) -> None:
        self.homes: dict[str, tuple[str, int]] = {}
        available_int = list(self.abi.callee_saved)
        available_fp = list(self.abi.fp_callee_saved)
        stack_slots = 0
        names = [name for name, _ in self.func.params] + [name for name, _ in self.func.locals]
        for name in names:
            typ = self.var_types[name]
            uses_fp_home = typ == ast.FLOAT and self.float_in_fp
            if uses_fp_home:
                if available_fp:
                    self.homes[name] = ("freg", available_fp.pop(0))
                else:
                    self.homes[name] = ("stack", stack_slots)
                    stack_slots += 1
            else:
                if available_int:
                    self.homes[name] = ("reg", available_int.pop(0))
                else:
                    self.homes[name] = ("stack", stack_slots)
                    stack_slots += 1
        self.used_callee_saved = sorted(
            {home[1] for home in self.homes.values() if home[0] == "reg"}
        )
        self.used_fp_callee_saved = sorted(
            {home[1] for home in self.homes.values() if home[0] == "freg"}
        )
        self.num_stack_locals = stack_slots
        temps_bytes = NUM_TEMP_SLOTS * self.word
        locals_bytes = stack_slots * self.word
        saved_bytes = (1 + len(self.used_callee_saved) + len(self.used_fp_callee_saved)) * self.word
        total = temps_bytes + locals_bytes + saved_bytes
        self.frame_size = (total + 15) & ~15
        self._temps_base = 0
        self._locals_base = temps_bytes
        self._saved_base = temps_bytes + locals_bytes

    def _stack_local_offset(self, slot: int) -> int:
        return self._locals_base + slot * self.word

    def _saved_offset(self, index: int) -> int:
        return self._saved_base + index * self.word

    # ------------------------------------------------------------------
    # low level emit helpers
    # ------------------------------------------------------------------

    def emit(self, instr: Instr) -> None:
        self.instrs.append(instr)

    def mark(self, label: str) -> None:
        self.labels[label] = len(self.instrs)

    def new_label(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.func.name}__{hint}{self._label_counter}"

    def _acquire_int(self) -> int:
        if not self._int_scratch_free:
            raise CompileError(f"integer expression too deep in {self.func.name!r}")
        return self._int_scratch_free.pop()

    def _acquire_fp(self) -> int:
        if not self._fp_scratch_free:
            raise CompileError(f"floating point expression too deep in {self.func.name!r}")
        return self._fp_scratch_free.pop()

    def _acquire(self, kind: str) -> Value:
        if kind == "fp":
            return Value("fp", self._acquire_fp())
        return Value("int", self._acquire_int())

    def _release(self, value: Value | None) -> None:
        if value is None or value.borrowed:
            return
        if value.kind == "fp":
            self._fp_scratch_free.append(value.reg)
        else:
            self._int_scratch_free.append(value.reg)

    def _value_kind(self, typ: str) -> str:
        return "fp" if (typ == ast.FLOAT and self.float_in_fp) else "int"

    def _contains_float(self, expr: ast.Expr) -> bool:
        if getattr(expr, "type", ast.INT) == ast.FLOAT:
            return True
        return any(self._contains_float(child) for child in expr.children())

    def _may_clobber_scratch(self, expr: ast.Expr) -> bool:
        """Whether evaluating ``expr`` may overwrite caller-saved registers.

        Explicit calls always do.  On the software-float backend every
        floating point operation is lowered to a call into the guest
        float library, so any float-typed sub-expression clobbers the
        scratch registers as well.
        """
        if expr.contains_call():
            return True
        if self.float_in_fp:
            return False
        return self._contains_float(expr)

    def _alloc_temp(self) -> int:
        if self._temp_depth >= NUM_TEMP_SLOTS:
            raise CompileError(f"call nesting too deep in {self.func.name!r}")
        offset = self._temps_base + self._temp_depth * self.word
        self._temp_depth += 1
        return offset

    def _free_temps(self, count: int) -> None:
        self._temp_depth -= count

    def _spill(self, value: Value) -> tuple[int, str]:
        """Store a value to a temp slot; returns (offset, kind)."""
        offset = self._alloc_temp()
        if value.kind == "fp":
            self.emit(Instr(Op.FSTR, rd=value.reg, rn=self.abi.sp, imm=offset))
        else:
            self.emit(Instr(Op.STR, rd=value.reg, rn=self.abi.sp, imm=offset))
        return offset, value.kind

    def _reload(self, offset: int, kind: str) -> Value:
        value = self._acquire(kind)
        if kind == "fp":
            self.emit(Instr(Op.FLDR, rd=value.reg, rn=self.abi.sp, imm=offset))
        else:
            self.emit(Instr(Op.LDR, rd=value.reg, rn=self.abi.sp, imm=offset))
        return value

    # ------------------------------------------------------------------
    # prologue / epilogue
    # ------------------------------------------------------------------

    def _emit_prologue(self) -> None:
        sp = self.abi.sp
        self.emit(Instr(Op.SUBI, rd=sp, rn=sp, imm=self.frame_size))
        save_index = 0
        self.emit(Instr(Op.STR, rd=self.abi.lr, rn=sp, imm=self._saved_offset(save_index)))
        save_index += 1
        for reg in self.used_callee_saved:
            self.emit(Instr(Op.STR, rd=reg, rn=sp, imm=self._saved_offset(save_index)))
            save_index += 1
        for reg in self.used_fp_callee_saved:
            self.emit(Instr(Op.FSTR, rd=reg, rn=sp, imm=self._saved_offset(save_index)))
            save_index += 1
        int_index = 0
        fp_index = 0
        for name, typ in self.func.params:
            if typ == ast.FLOAT and self.float_in_fp:
                if fp_index >= len(self.abi.fp_arg_regs):
                    raise CompileError(f"too many float parameters in {self.func.name!r}")
                src = self.abi.fp_arg_regs[fp_index]
                fp_index += 1
                self._move_to_home(name, Value("fp", src, borrowed=True))
            else:
                if int_index >= len(self.abi.arg_regs):
                    raise CompileError(f"too many parameters in {self.func.name!r}")
                src = self.abi.arg_regs[int_index]
                int_index += 1
                self._move_to_home(name, Value("int", src, borrowed=True))

    def _emit_epilogue(self) -> None:
        sp = self.abi.sp
        self.mark(self._return_label)
        save_index = 0
        self.emit(Instr(Op.LDR, rd=self.abi.lr, rn=sp, imm=self._saved_offset(save_index)))
        save_index += 1
        for reg in self.used_callee_saved:
            self.emit(Instr(Op.LDR, rd=reg, rn=sp, imm=self._saved_offset(save_index)))
            save_index += 1
        for reg in self.used_fp_callee_saved:
            self.emit(Instr(Op.FLDR, rd=reg, rn=sp, imm=self._saved_offset(save_index)))
            save_index += 1
        self.emit(Instr(Op.ADDI, rd=sp, rn=sp, imm=self.frame_size))
        self.emit(Instr(Op.RET))

    # ------------------------------------------------------------------
    # variable access
    # ------------------------------------------------------------------

    def _home_of(self, name: str) -> tuple[str, int]:
        if name not in self.homes:
            raise CompileError(f"undeclared variable {name!r} in {self.func.name!r}")
        return self.homes[name]

    def _read_var(self, name: str) -> Value:
        kind_home, where = self._home_of(name)
        typ = self.var_types[name]
        kind = self._value_kind(typ)
        if kind_home == "reg":
            return Value("int", where, borrowed=True)
        if kind_home == "freg":
            return Value("fp", where, borrowed=True)
        value = self._acquire(kind)
        offset = self._stack_local_offset(where)
        op = Op.FLDR if kind == "fp" else Op.LDR
        self.emit(Instr(op, rd=value.reg, rn=self.abi.sp, imm=offset))
        return value

    def _move_to_home(self, name: str, value: Value) -> None:
        kind_home, where = self._home_of(name)
        if kind_home == "reg":
            if value.kind == "fp":
                raise CompileError(f"type mismatch storing float into int home {name!r}")
            if value.reg != where:
                self.emit(Instr(Op.MOV, rd=where, rn=value.reg))
        elif kind_home == "freg":
            if value.kind != "fp":
                raise CompileError(f"type mismatch storing int into float home {name!r}")
            if value.reg != where:
                self.emit(Instr(Op.FMOV, rd=where, rn=value.reg))
        else:
            offset = self._stack_local_offset(where)
            op = Op.FSTR if value.kind == "fp" else Op.STR
            self.emit(Instr(op, rd=value.reg, rn=self.abi.sp, imm=offset))

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> Value | None:
        if isinstance(expr, ast.IntConst):
            value = self._acquire("int")
            self.emit(Instr(Op.MOVI, rd=value.reg, imm=expr.value))
            return value
        if isinstance(expr, ast.FloatConst):
            return self._eval_float_const(expr.value)
        if isinstance(expr, ast.Var):
            return self._read_var(expr.name)
        if isinstance(expr, ast.GlobalAddr):
            slot = self.ctx.global_slot(expr.name)
            value = self._acquire("int")
            self.emit(Instr(Op.ADDI, rd=value.reg, rn=self.abi.gp, imm=slot.offset))
            return value
        if isinstance(expr, ast.FuncAddr):
            value = self._acquire("int")
            self.emit(Instr(Op.MOVI, rd=value.reg, imm=0, label=expr.name))
            return value
        if isinstance(expr, ast.Index):
            return self._eval_index(expr)
        if isinstance(expr, ast.Deref):
            return self._eval_deref(expr)
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        if isinstance(expr, ast.UnOp):
            return self._eval_unop(expr)
        if isinstance(expr, ast.Cast):
            return self._eval_cast(expr)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr)
        if isinstance(expr, ast.CallPtr):
            return self._eval_callptr(expr)
        raise CompileError(f"cannot generate code for expression {expr!r}")

    def _eval_float_const(self, literal: float) -> Value:
        if self.float_in_fp:
            value = self._acquire("fp")
            self.emit(Instr(Op.FMOVI, rd=value.reg, imm=double_to_bits(float(literal))))
            return value
        value = self._acquire("int")
        self.emit(Instr(Op.MOVI, rd=value.reg, imm=single_to_bits(float(literal))))
        return value

    def _element_shift(self, elem_size: int) -> int:
        return {1: 0, 4: 2, 8: 3}[elem_size]

    def _eval_index(self, expr: ast.Index) -> Value:
        slot = self.ctx.global_slot(expr.name)
        self._check_index_type(expr, slot)
        kind = self._value_kind(expr.type)
        if slot.elem_size == 1:
            load_op = Op.LDRB
        elif slot.type == ast.FLOAT:
            load_op = Op.FLDR if self.float_in_fp else Op.LDR
        else:
            load_op = Op.LDR
        if isinstance(expr.index, ast.IntConst):
            base = self._acquire("int")
            self.emit(Instr(Op.ADDI, rd=base.reg, rn=self.abi.gp, imm=slot.offset))
            result = self._acquire(kind)
            self.emit(Instr(load_op, rd=result.reg, rn=base.reg, imm=expr.index.value * slot.elem_size))
            self._release(base)
            return result
        # Evaluate the index before materialising the base address so that
        # calls inside the index expression cannot clobber the base register.
        index = self._eval(expr.index)
        base = self._acquire("int")
        self.emit(Instr(Op.ADDI, rd=base.reg, rn=self.abi.gp, imm=slot.offset))
        result = self._acquire(kind)
        self.emit(Instr(load_op, rd=result.reg, rn=base.reg, rm=index.reg, imm=self._element_shift(slot.elem_size)))
        self._release(index)
        self._release(base)
        return result

    def _check_index_type(self, expr, slot: GlobalSlot) -> None:
        declared = ast.FLOAT if slot.type == ast.FLOAT else ast.INT
        node_type = ast.FLOAT if expr.type == ast.FLOAT else ast.INT
        if declared != node_type:
            raise CompileError(
                f"array {expr.name!r} is declared {slot.type!r} but accessed as {expr.type!r}"
            )

    def _eval_deref(self, expr: ast.Deref) -> Value:
        address = self._eval(expr.address)
        kind = self._value_kind(expr.type)
        result = self._acquire(kind)
        if expr.type == ast.FLOAT:
            op = Op.FLDR if self.float_in_fp else Op.LDR
        else:
            op = Op.LDR
        self.emit(Instr(op, rd=result.reg, rn=address.reg, imm=0))
        self._release(address)
        return result

    def _eval_binop(self, expr: ast.BinOp) -> Value:
        if expr.op in ast.BinOp.COMPARISONS:
            return self._eval_comparison(expr)
        if expr.type == ast.FLOAT:
            return self._eval_float_binop(expr)
        return self._eval_int_binop(expr)

    def _eval_int_binop(self, expr: ast.BinOp) -> Value:
        # immediate forms when the right operand is a small constant
        if isinstance(expr.right, ast.IntConst) and expr.op in _IMMEDIATE_FORMS:
            left = self._eval(expr.left)
            result = self._acquire("int")
            self.emit(Instr(_IMMEDIATE_FORMS[expr.op], rd=result.reg, rn=left.reg, imm=expr.right.value))
            self._release(left)
            return result
        left = self._eval(expr.left)
        spilled = None
        if self._may_clobber_scratch(expr.right) and not left.borrowed:
            spilled = self._spill(left)
            self._release(left)
        right = self._eval(expr.right)
        if spilled is not None:
            left = self._reload(*spilled)
            self._free_temps(1)
        if expr.op == "%":
            return self._eval_modulo(left, right)
        result = self._acquire("int")
        op = _REGISTER_FORMS.get(expr.op)
        if op is None:
            raise CompileError(f"unsupported integer operator {expr.op!r}")
        self.emit(Instr(op, rd=result.reg, rn=left.reg, rm=right.reg))
        self._release(right)
        self._release(left)
        return result

    def _eval_modulo(self, left: Value, right: Value) -> Value:
        quotient = self._acquire("int")
        self.emit(Instr(Op.SDIV, rd=quotient.reg, rn=left.reg, rm=right.reg))
        self.emit(Instr(Op.MUL, rd=quotient.reg, rn=quotient.reg, rm=right.reg))
        result = self._acquire("int")
        self.emit(Instr(Op.SUB, rd=result.reg, rn=left.reg, rm=quotient.reg))
        self._release(quotient)
        self._release(right)
        self._release(left)
        return result

    def _coerce_float(self, expr: ast.Expr) -> ast.Expr:
        if expr.type == ast.FLOAT:
            return expr
        return ast.Cast(expr, ast.FLOAT)

    def _eval_float_binop(self, expr: ast.BinOp) -> Value:
        left_expr = self._coerce_float(expr.left)
        right_expr = self._coerce_float(expr.right)
        if not self.float_in_fp:
            helper = _SOFTFLOAT_BINOPS.get(expr.op)
            if helper is None:
                raise CompileError(f"unsupported float operator {expr.op!r}")
            return self._emit_user_call(helper, [left_expr, right_expr], ast.FLOAT)
        left = self._eval(left_expr)
        spilled = None
        if self._may_clobber_scratch(right_expr) and not left.borrowed:
            spilled = self._spill(left)
            self._release(left)
        right = self._eval(right_expr)
        if spilled is not None:
            left = self._reload(*spilled)
            self._free_temps(1)
        op = _FP_FORMS.get(expr.op)
        if op is None:
            raise CompileError(f"unsupported float operator {expr.op!r}")
        result = self._acquire("fp")
        self.emit(Instr(op, rd=result.reg, rn=left.reg, rm=right.reg))
        self._release(right)
        self._release(left)
        return result

    def _eval_comparison(self, expr: ast.BinOp) -> Value:
        cond = _COMPARE_CONDS[expr.op]
        is_float = ast.FLOAT in (expr.left.type, expr.right.type)
        if is_float and not self.float_in_fp:
            compared = self._emit_user_call(
                "__sf_cmp", [self._coerce_float(expr.left), self._coerce_float(expr.right)], ast.INT
            )
            self.emit(Instr(Op.CMPI, rn=compared.reg, imm=0))
            self._release(compared)
        else:
            left = self._eval(self._coerce_float(expr.left) if is_float else expr.left)
            spilled = None
            if self._may_clobber_scratch(expr.right) and not left.borrowed:
                spilled = self._spill(left)
                self._release(left)
            right = self._eval(self._coerce_float(expr.right) if is_float else expr.right)
            if spilled is not None:
                left = self._reload(*spilled)
                self._free_temps(1)
            self.emit(Instr(Op.FCMP if is_float else Op.CMP, rn=left.reg, rm=right.reg))
            self._release(right)
            self._release(left)
        result = self._acquire("int")
        self.emit(Instr(Op.CSET, rd=result.reg, cond=cond))
        return result

    def _eval_unop(self, expr: ast.UnOp) -> Value:
        if expr.op == "neg" and expr.type == ast.FLOAT:
            operand = self._eval(expr.operand)
            if self.float_in_fp:
                result = self._acquire("fp")
                self.emit(Instr(Op.FNEG, rd=result.reg, rn=operand.reg))
            else:
                result = self._acquire("int")
                self.emit(Instr(Op.EORI, rd=result.reg, rn=operand.reg, imm=0x8000_0000))
            self._release(operand)
            return result
        operand = self._eval(expr.operand)
        result = self._acquire("int")
        if expr.op == "neg":
            self.emit(Instr(Op.MOVI, rd=result.reg, imm=0))
            self.emit(Instr(Op.SUB, rd=result.reg, rn=result.reg, rm=operand.reg))
        elif expr.op == "not":
            self.emit(Instr(Op.CMPI, rn=operand.reg, imm=0))
            self.emit(Instr(Op.CSET, rd=result.reg, cond=Cond.EQ))
        elif expr.op == "inv":
            self.emit(Instr(Op.MVN, rd=result.reg, rn=operand.reg))
        else:
            raise CompileError(f"unsupported unary operator {expr.op!r}")
        self._release(operand)
        return result

    def _eval_cast(self, expr: ast.Cast) -> Value:
        source_type = expr.expr.type
        if source_type == expr.type:
            return self._eval(expr.expr)
        if expr.type == ast.FLOAT:
            if not self.float_in_fp:
                return self._emit_user_call("__sf_fromint", [expr.expr], ast.FLOAT)
            operand = self._eval(expr.expr)
            result = self._acquire("fp")
            self.emit(Instr(Op.SCVTF, rd=result.reg, rn=operand.reg))
            self._release(operand)
            return result
        if not self.float_in_fp:
            return self._emit_user_call("__sf_toint", [expr.expr], ast.INT)
        operand = self._eval(expr.expr)
        result = self._acquire("int")
        self.emit(Instr(Op.FCVTZS, rd=result.reg, rn=operand.reg))
        self._release(operand)
        return result

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------

    def _eval_call(self, expr: ast.Call) -> Value | None:
        name = expr.name
        if name in BUILTINS:
            spec = BUILTINS[name]
            if len(expr.args) != spec.arg_count:
                raise CompileError(f"builtin {name!r} expects {spec.arg_count} arguments, got {len(expr.args)}")
            if spec.kind == "intrinsic":
                return self._eval_intrinsic(name, expr.args)
            return self._emit_call_sequence(expr.args, spec.return_type, syscall=spec.sysno)
        return self._emit_user_call(name, expr.args, self.ctx.return_type_of(name))

    def _emit_user_call(self, name: str, args: list[ast.Expr], return_type: str) -> Value | None:
        return self._emit_call_sequence(args, return_type, callee=name)

    def _eval_callptr(self, expr: ast.CallPtr) -> Value | None:
        return self._emit_call_sequence(expr.args, ast.INT, pointer=expr.target)

    def _eval_intrinsic(self, name: str, args: list[ast.Expr]) -> Value:
        arg = self._coerce_float(args[0])
        if name == "sqrt":
            if not self.float_in_fp:
                return self._emit_user_call("__sf_sqrt", [arg], ast.FLOAT)
            operand = self._eval(arg)
            result = self._acquire("fp")
            self.emit(Instr(Op.FSQRT, rd=result.reg, rn=operand.reg))
            self._release(operand)
            return result
        if name == "fabs":
            operand = self._eval(arg)
            if self.float_in_fp:
                result = self._acquire("fp")
                self.emit(Instr(Op.FABS, rd=result.reg, rn=operand.reg))
            else:
                result = self._acquire("int")
                self.emit(Instr(Op.ANDI, rd=result.reg, rn=operand.reg, imm=0x7FFF_FFFF))
            self._release(operand)
            return result
        raise CompileError(f"unknown intrinsic {name!r}")

    def _emit_call_sequence(
        self,
        args: list[ast.Expr],
        return_type: str,
        callee: str | None = None,
        syscall: int | None = None,
        pointer: ast.Expr | None = None,
    ) -> Value | None:
        # Evaluate every argument (and the call target) into temp slots so
        # nested calls cannot clobber partially evaluated arguments.
        stored: list[tuple[int, str]] = []
        for arg in args:
            value = self._eval(arg)
            if value is None:
                raise CompileError("void expression used as call argument")
            stored.append(self._spill(value))
            self._release(value)
        pointer_slot = None
        if pointer is not None:
            target = self._eval(pointer)
            pointer_slot = self._spill(target)
            self._release(target)
        # Load arguments into the argument registers.
        int_index = 0
        fp_index = 0
        for offset, kind in stored:
            if kind == "fp":
                if fp_index >= len(self.abi.fp_arg_regs):
                    raise CompileError("too many floating point call arguments")
                self.emit(Instr(Op.FLDR, rd=self.abi.fp_arg_regs[fp_index], rn=self.abi.sp, imm=offset))
                fp_index += 1
            else:
                if int_index >= len(self.abi.arg_regs):
                    raise CompileError("too many integer call arguments")
                self.emit(Instr(Op.LDR, rd=self.abi.arg_regs[int_index], rn=self.abi.sp, imm=offset))
                int_index += 1
        if pointer_slot is not None:
            target_reg = self.abi.scratch_regs[-1]
            self.emit(Instr(Op.LDR, rd=target_reg, rn=self.abi.sp, imm=pointer_slot[0]))
            self.emit(Instr(Op.BLR, rn=target_reg))
            self._free_temps(len(stored) + 1)
        elif syscall is not None:
            self.emit(Instr(Op.SVC, imm=syscall))
            self._free_temps(len(stored))
        else:
            self.emit(Instr(Op.BL, imm=0, label=callee))
            self._free_temps(len(stored))
        if return_type == ast.VOID:
            return None
        if return_type == ast.FLOAT and self.float_in_fp:
            result = self._acquire("fp")
            self.emit(Instr(Op.FMOV, rd=result.reg, rn=self.abi.fp_ret_reg))
            return result
        result = self._acquire("int")
        self.emit(Instr(Op.MOV, rd=result.reg, rn=self.abi.ret_reg))
        return result

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def _gen_body(self, body: list[ast.Stmt]) -> None:
        for stmt in body:
            self._stmt_counter += 1
            self.line_table[len(self.instrs)] = (self.func.name, self._stmt_counter)
            self._gen_stmt(stmt)

    def _gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            if value is None:
                raise CompileError(f"void expression assigned to {stmt.name!r}")
            expected = self._value_kind(self.var_types.get(stmt.name, ast.INT))
            if expected != value.kind:
                value = self._convert_kind(value, expected, stmt.value.type)
            self._move_to_home(stmt.name, value)
            self._release(value)
            return
        if isinstance(stmt, ast.StoreIndex):
            self._gen_store_index(stmt)
            return
        if isinstance(stmt, ast.StoreDeref):
            self._gen_store_deref(stmt)
            return
        if isinstance(stmt, ast.If):
            self._gen_if(stmt)
            return
        if isinstance(stmt, ast.While):
            self._gen_while(stmt)
            return
        if isinstance(stmt, ast.For):
            self._gen_for(stmt)
            return
        if isinstance(stmt, ast.Return):
            self._gen_return(stmt)
            return
        if isinstance(stmt, ast.ExprStmt):
            value = self._eval(stmt.expr)
            self._release(value)
            return
        if isinstance(stmt, ast.Break):
            if not self._loop_stack:
                raise CompileError(f"break outside of a loop in {self.func.name!r}")
            self.emit(Instr(Op.B, imm=0, label=self._loop_stack[-1][0]))
            return
        if isinstance(stmt, ast.Continue):
            if not self._loop_stack:
                raise CompileError(f"continue outside of a loop in {self.func.name!r}")
            self.emit(Instr(Op.B, imm=0, label=self._loop_stack[-1][1]))
            return
        raise CompileError(f"cannot generate code for statement {stmt!r}")

    def _convert_kind(self, value: Value, expected: str, source_type: str) -> Value:
        """Handle int<->float representation mismatches on assignment."""
        if expected == "fp" and value.kind == "int":
            result = self._acquire("fp")
            op = Op.SCVTF if source_type == ast.INT else Op.FMOVRG
            self.emit(Instr(op, rd=result.reg, rn=value.reg))
            self._release(value)
            return result
        if expected == "int" and value.kind == "fp":
            result = self._acquire("int")
            op = Op.FCVTZS if source_type == ast.FLOAT else Op.FMOVGR
            self.emit(Instr(op, rd=result.reg, rn=value.reg))
            self._release(value)
            return result
        return value

    def _gen_store_index(self, stmt: ast.StoreIndex) -> None:
        slot = self.ctx.global_slot(stmt.name)
        if slot.elem_size == 1:
            store_op = Op.STRB
            expected_kind = "int"
        elif slot.type == ast.FLOAT:
            store_op = Op.FSTR if self.float_in_fp else Op.STR
            expected_kind = "fp" if self.float_in_fp else "int"
        else:
            store_op = Op.STR
            expected_kind = "int"
        value_expr = stmt.value
        if slot.type == ast.FLOAT and value_expr.type != ast.FLOAT:
            value_expr = ast.Cast(value_expr, ast.FLOAT)
        if slot.type != ast.FLOAT and value_expr.type == ast.FLOAT:
            value_expr = ast.Cast(value_expr, ast.INT)
        const_index = isinstance(stmt.index, ast.IntConst)
        index = None
        spilled_index = None
        if not const_index:
            index = self._eval(stmt.index)
            if self._may_clobber_scratch(value_expr) and not index.borrowed:
                spilled_index = self._spill(index)
                self._release(index)
        value = self._eval(value_expr)
        if value.kind != expected_kind:
            value = self._convert_kind(value, expected_kind, value_expr.type)
        if spilled_index is not None:
            index = self._reload(*spilled_index)
            self._free_temps(1)
        base = self._acquire("int")
        self.emit(Instr(Op.ADDI, rd=base.reg, rn=self.abi.gp, imm=slot.offset))
        if const_index:
            self.emit(Instr(store_op, rd=value.reg, rn=base.reg, imm=stmt.index.value * slot.elem_size))
        else:
            self.emit(Instr(store_op, rd=value.reg, rn=base.reg, rm=index.reg, imm=self._element_shift(slot.elem_size)))
            self._release(index)
        self._release(base)
        self._release(value)

    def _gen_store_deref(self, stmt: ast.StoreDeref) -> None:
        address = self._eval(stmt.address)
        spilled = None
        if self._may_clobber_scratch(stmt.value) and not address.borrowed:
            spilled = self._spill(address)
            self._release(address)
        value_expr = stmt.value
        if stmt.type == ast.FLOAT and value_expr.type != ast.FLOAT:
            value_expr = ast.Cast(value_expr, ast.FLOAT)
        value = self._eval(value_expr)
        if spilled is not None:
            address = self._reload(*spilled)
            self._free_temps(1)
        if stmt.type == ast.FLOAT:
            op = Op.FSTR if self.float_in_fp else Op.STR
        else:
            op = Op.STR
        self.emit(Instr(op, rd=value.reg, rn=address.reg, imm=0))
        self._release(value)
        self._release(address)

    def _branch_if_false(self, cond: ast.Expr, target: str) -> None:
        """Emit a branch to ``target`` taken when ``cond`` evaluates false."""
        if isinstance(cond, ast.BinOp) and cond.op in _COMPARE_CONDS:
            cond_code = _COMPARE_CONDS[cond.op]
            is_float = ast.FLOAT in (cond.left.type, cond.right.type)
            if is_float and not self.float_in_fp:
                compared = self._emit_user_call(
                    "__sf_cmp", [self._coerce_float(cond.left), self._coerce_float(cond.right)], ast.INT
                )
                self.emit(Instr(Op.CMPI, rn=compared.reg, imm=0))
                self._release(compared)
            else:
                left = self._eval(self._coerce_float(cond.left) if is_float else cond.left)
                spilled = None
                if self._may_clobber_scratch(cond.right) and not left.borrowed:
                    spilled = self._spill(left)
                    self._release(left)
                right = self._eval(self._coerce_float(cond.right) if is_float else cond.right)
                if spilled is not None:
                    left = self._reload(*spilled)
                    self._free_temps(1)
                self.emit(Instr(Op.FCMP if is_float else Op.CMP, rn=left.reg, rm=right.reg))
                self._release(right)
                self._release(left)
            self.emit(Instr(Op.BCC, imm=0, cond=_INVERTED[cond_code], label=target))
            return
        value = self._eval(cond)
        self.emit(Instr(Op.CBZ, rn=value.reg, imm=0, label=target))
        self._release(value)

    def _gen_if(self, stmt: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif")
        self._branch_if_false(stmt.cond, else_label if stmt.else_body else end_label)
        self._gen_body(stmt.then_body)
        if stmt.else_body:
            self.emit(Instr(Op.B, imm=0, label=end_label))
            self.mark(else_label)
            self._gen_body(stmt.else_body)
        self.mark(end_label)

    def _gen_while(self, stmt: ast.While) -> None:
        loop_label = self.new_label("while")
        end_label = self.new_label("endwhile")
        self._loop_stack.append((end_label, loop_label))
        self.mark(loop_label)
        self._branch_if_false(stmt.cond, end_label)
        self._gen_body(stmt.body)
        self.emit(Instr(Op.B, imm=0, label=loop_label))
        self.mark(end_label)
        self._loop_stack.pop()

    def _gen_for(self, stmt: ast.For) -> None:
        if stmt.var not in self.var_types:
            raise CompileError(f"loop variable {stmt.var!r} is not declared in {self.func.name!r}")
        init = self._eval(stmt.start)
        self._move_to_home(stmt.var, init)
        self._release(init)
        loop_label = self.new_label("for")
        continue_label = self.new_label("forstep")
        end_label = self.new_label("endfor")
        descending = isinstance(stmt.step, ast.IntConst) and stmt.step.value < 0
        comparison = ">" if descending else "<"
        self._loop_stack.append((end_label, continue_label))
        self.mark(loop_label)
        self._branch_if_false(ast.BinOp(comparison, ast.Var(stmt.var, ast.INT), stmt.end), end_label)
        self._gen_body(stmt.body)
        self.mark(continue_label)
        step_value = self._eval(ast.BinOp("+", ast.Var(stmt.var, ast.INT), stmt.step))
        self._move_to_home(stmt.var, step_value)
        self._release(step_value)
        self.emit(Instr(Op.B, imm=0, label=loop_label))
        self.mark(end_label)
        self._loop_stack.pop()

    def _gen_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None:
            expected = self.func.return_type
            value_expr = stmt.value
            if expected == ast.FLOAT and value_expr.type != ast.FLOAT:
                value_expr = ast.Cast(value_expr, ast.FLOAT)
            if expected == ast.INT and value_expr.type == ast.FLOAT:
                value_expr = ast.Cast(value_expr, ast.INT)
            value = self._eval(value_expr)
            if value is None:
                raise CompileError(f"void expression returned from {self.func.name!r}")
            if value.kind == "fp":
                if value.reg != self.abi.fp_ret_reg:
                    self.emit(Instr(Op.FMOV, rd=self.abi.fp_ret_reg, rn=value.reg))
            else:
                if value.reg != self.abi.ret_reg:
                    self.emit(Instr(Op.MOV, rd=self.abi.ret_reg, rn=value.reg))
            self._release(value)
        self.emit(Instr(Op.B, imm=0, label=self._return_label))

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def generate(self) -> tuple[list[Instr], dict[str, int], dict[int, tuple[str, int]]]:
        """Generate code; returns (instructions, local labels, line table)."""
        self._return_label = f"{self.func.name}__return"
        self.mark(self.func.name)
        self._emit_prologue()
        self._gen_body(self.func.body)
        self._emit_epilogue()
        return self.instrs, self.labels, self.line_table


def compile_function(function: ast.Function, ctx: LinkContext):
    """Compile one function within a link context.

    Returns ``(instructions, labels, line_table, homes)`` where
    ``homes`` maps variable names to ``("reg"|"freg"|"stack", index)``.
    """
    codegen = FunctionCodegen(function, ctx)
    instrs, labels, line_table = codegen.generate()
    return instrs, labels, line_table, dict(codegen.homes)


def compile_module(module: ast.Module, arch: ArchSpec, hardening: str | None = None):
    """Compile a standalone module (convenience wrapper used by tests).

    Production code paths use :func:`repro.compiler.linker.link`, which
    lays out globals across several modules before compiling.
    """
    from repro.compiler.linker import link

    return link([module], arch, name=module.name, hardening=hardening)
