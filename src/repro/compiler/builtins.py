"""Builtin functions available to MiniC code.

Most builtins lower to a single ``SVC`` instruction (system calls of the
mini kernel); a few are arithmetic intrinsics that lower to hardware
instructions on v8 and to guest software-float calls on v7.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ast import FLOAT, INT, VOID
from repro.kernel.syscalls import Syscall


@dataclass(frozen=True)
class BuiltinSpec:
    name: str
    kind: str  # "syscall" or "intrinsic"
    return_type: str
    arg_count: int
    sysno: int = 0


_SYSCALL_BUILTINS = [
    ("exit", Syscall.EXIT, VOID, 1),
    ("abort", Syscall.ABORT, VOID, 0),
    ("print_int", Syscall.WRITE_INT, VOID, 1),
    ("print_float", Syscall.WRITE_FLOAT, VOID, 1),
    ("print_char", Syscall.WRITE_CHAR, VOID, 1),
    ("sbrk", Syscall.SBRK, INT, 1),
    ("ft_fault_detected", Syscall.FT_DETECTED, VOID, 0),
    ("get_tid", Syscall.GET_TID, INT, 0),
    ("get_rank", Syscall.GET_RANK, INT, 0),
    ("get_nranks", Syscall.GET_NRANKS, INT, 0),
    ("get_ncores", Syscall.GET_NCORES, INT, 0),
    ("get_nthreads", Syscall.GET_NTHREADS, INT, 0),
    ("thread_create", Syscall.THREAD_CREATE, INT, 2),
    ("thread_join", Syscall.THREAD_JOIN, INT, 1),
    ("thread_exit", Syscall.THREAD_EXIT, VOID, 1),
    ("yield_cpu", Syscall.YIELD, VOID, 0),
    ("sem_post", Syscall.SEM_POST, VOID, 1),
    ("sem_wait", Syscall.SEM_WAIT, VOID, 1),
    ("barrier_wait", Syscall.BARRIER_WAIT, VOID, 2),
    ("mutex_lock", Syscall.MUTEX_LOCK, VOID, 1),
    ("mutex_unlock", Syscall.MUTEX_UNLOCK, VOID, 1),
    ("msg_send", Syscall.MSG_SEND, INT, 4),
    ("msg_recv", Syscall.MSG_RECV, INT, 4),
    ("msg_probe", Syscall.MSG_PROBE, INT, 2),
]

_INTRINSIC_BUILTINS = [
    ("sqrt", FLOAT, 1),
    ("fabs", FLOAT, 1),
]


def _build_table() -> dict[str, BuiltinSpec]:
    table: dict[str, BuiltinSpec] = {}
    for name, sysno, ret, argc in _SYSCALL_BUILTINS:
        table[name] = BuiltinSpec(name=name, kind="syscall", return_type=ret, arg_count=argc, sysno=int(sysno))
    for name, ret, argc in _INTRINSIC_BUILTINS:
        table[name] = BuiltinSpec(name=name, kind="intrinsic", return_type=ret, arg_count=argc)
    return table


#: Builtin name -> specification.
BUILTINS: dict[str, BuiltinSpec] = _build_table()


def is_builtin(name: str) -> bool:
    return name in BUILTINS


def builtin_return_type(name: str) -> str:
    return BUILTINS[name].return_type
