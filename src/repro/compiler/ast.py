"""Abstract syntax tree of the MiniC guest language.

MiniC is a deliberately small structured language: word-sized integers,
floating point scalars, global arrays, functions with scalar arguments
and the control flow constructs needed by the benchmark kernels.  ASTs
are built programmatically from Python (there is no parser), which is
how the NPB kernels and the guest runtime libraries are written.

Types are the strings ``"int"``, ``"float"`` and ``"void"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.errors import CompileError

INT = "int"
FLOAT = "float"
VOID = "void"
BYTE = "byte"

_VALID_TYPES = (INT, FLOAT)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expressions."""

    type: str = INT

    def contains_call(self) -> bool:
        return any(child.contains_call() for child in self.children())

    def children(self) -> Sequence["Expr"]:
        return ()


@dataclass
class IntConst(Expr):
    value: int
    type: str = INT


@dataclass
class FloatConst(Expr):
    value: float
    type: str = FLOAT


@dataclass
class Var(Expr):
    """A local scalar variable or parameter."""

    name: str
    type: str = INT


@dataclass
class GlobalAddr(Expr):
    """Address of a global symbol (an integer value)."""

    name: str
    type: str = INT


@dataclass
class FuncAddr(Expr):
    """Address of a function (used for thread entries and parallel loops)."""

    name: str
    type: str = INT


@dataclass
class Index(Expr):
    """Load of ``name[index]`` where ``name`` is a global array."""

    name: str
    index: Expr
    type: str = INT

    def children(self):
        return (self.index,)


@dataclass
class Deref(Expr):
    """Load through a computed address (heap pointers, message buffers)."""

    address: Expr
    type: str = INT

    def children(self):
        return (self.address,)


@dataclass
class BinOp(Expr):
    """Binary operation; comparison operators always produce ``int``."""

    op: str
    left: Expr
    right: Expr
    type: str = INT

    COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")
    INT_ONLY = ("%", "&", "|", "^", "<<", ">>")

    def __post_init__(self):
        if self.op in self.COMPARISONS:
            self.type = INT
        else:
            self.type = FLOAT if FLOAT in (self.left.type, self.right.type) else INT
        if self.op in self.INT_ONLY and self.type == FLOAT:
            raise CompileError(f"operator {self.op!r} is not defined for float operands")

    def children(self):
        return (self.left, self.right)


@dataclass
class UnOp(Expr):
    """Unary operation: ``neg``, ``not`` (logical) or ``inv`` (bitwise)."""

    op: str
    operand: Expr
    type: str = INT

    def __post_init__(self):
        if self.op == "neg":
            self.type = self.operand.type
        else:
            self.type = INT

    def children(self):
        return (self.operand,)


@dataclass
class Cast(Expr):
    """Conversion between int and float."""

    expr: Expr
    type: str = INT

    def children(self):
        return (self.expr,)


@dataclass
class Call(Expr):
    """Call of a named function or builtin."""

    name: str
    args: list[Expr] = field(default_factory=list)
    type: str = INT

    def contains_call(self) -> bool:
        return True

    def children(self):
        return tuple(self.args)


@dataclass
class CallPtr(Expr):
    """Indirect call through a function address."""

    target: Expr
    args: list[Expr] = field(default_factory=list)
    type: str = INT

    def contains_call(self) -> bool:
        return True

    def children(self):
        return (self.target, *self.args)


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for statements."""


@dataclass
class Assign(Stmt):
    """Assignment to a local variable."""

    name: str
    value: Expr


@dataclass
class StoreIndex(Stmt):
    """Store into a global array element: ``name[index] = value``."""

    name: str
    index: Expr
    value: Expr


@dataclass
class StoreDeref(Stmt):
    """Store through a computed address: ``*(address) = value``."""

    address: Expr
    value: Expr
    type: str = INT


@dataclass
class If(Stmt):
    cond: Expr
    then_body: list[Stmt] = field(default_factory=list)
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Expr
    body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """Counted loop ``for (var = start; var < end; var += step)``."""

    var: str
    start: Expr
    end: Expr
    body: list[Stmt] = field(default_factory=list)
    step: Expr = field(default_factory=lambda: IntConst(1))


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass
class GlobalVar:
    """A global scalar or array placed in the data segment.

    ``init`` may be ``None`` (zero initialised), a scalar, or a sequence
    of values computed at build time (e.g. FFT twiddle factors).
    """

    name: str
    type: str = INT
    count: int = 1
    init: Union[None, int, float, Sequence[Union[int, float]]] = None

    def __post_init__(self):
        if self.type not in _VALID_TYPES + (BYTE,):
            raise CompileError(f"global {self.name!r} has invalid type {self.type!r}")
        if self.count < 1:
            raise CompileError(f"global {self.name!r} has invalid element count {self.count}")


@dataclass
class Function:
    """A MiniC function definition.

    ``params`` and ``locals`` are lists of ``(name, type)`` pairs; every
    variable used in the body must appear in one of them.
    """

    name: str
    params: list[tuple[str, str]] = field(default_factory=list)
    locals: list[tuple[str, str]] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    return_type: str = VOID

    def variable_types(self) -> dict[str, str]:
        table = {}
        for name, typ in list(self.params) + list(self.locals):
            if typ not in _VALID_TYPES:
                raise CompileError(f"variable {name!r} in {self.name!r} has invalid type {typ!r}")
            if name in table:
                raise CompileError(f"variable {name!r} declared twice in {self.name!r}")
            table[name] = typ
        return table


@dataclass
class Module:
    """A compilation unit: functions plus global data."""

    name: str
    functions: list[Function] = field(default_factory=list)
    globals: list[GlobalVar] = field(default_factory=list)

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise CompileError(f"module {self.name!r} has no function {name!r}")


# ---------------------------------------------------------------------------
# convenience constructors (keep benchmark sources compact and readable)
# ---------------------------------------------------------------------------


def const(value: Union[int, float]) -> Expr:
    if isinstance(value, bool):
        return IntConst(int(value))
    if isinstance(value, int):
        return IntConst(value)
    return FloatConst(float(value))


def var(name: str, typ: str = INT) -> Var:
    return Var(name, typ)


def fvar(name: str) -> Var:
    return Var(name, FLOAT)


def binop(op: str, left: Expr, right: Expr) -> BinOp:
    return BinOp(op, left, right)


def add(a: Expr, b: Expr) -> BinOp:
    return BinOp("+", a, b)


def sub(a: Expr, b: Expr) -> BinOp:
    return BinOp("-", a, b)


def mul(a: Expr, b: Expr) -> BinOp:
    return BinOp("*", a, b)


def div(a: Expr, b: Expr) -> BinOp:
    return BinOp("/", a, b)


def mod(a: Expr, b: Expr) -> BinOp:
    return BinOp("%", a, b)


def lt(a: Expr, b: Expr) -> BinOp:
    return BinOp("<", a, b)


def le(a: Expr, b: Expr) -> BinOp:
    return BinOp("<=", a, b)


def gt(a: Expr, b: Expr) -> BinOp:
    return BinOp(">", a, b)


def ge(a: Expr, b: Expr) -> BinOp:
    return BinOp(">=", a, b)


def eq(a: Expr, b: Expr) -> BinOp:
    return BinOp("==", a, b)


def ne(a: Expr, b: Expr) -> BinOp:
    return BinOp("!=", a, b)


def call(name: str, *args: Expr, type: str = INT) -> Call:
    return Call(name, list(args), type=type)


def fcall(name: str, *args: Expr) -> Call:
    return Call(name, list(args), type=FLOAT)


def assign(name: str, value: Expr) -> Assign:
    return Assign(name, value)


def store(name: str, index: Expr, value: Expr) -> StoreIndex:
    return StoreIndex(name, index, value)


def load(name: str, index: Expr, typ: str = INT) -> Index:
    return Index(name, index, typ)


def floadx(name: str, index: Expr) -> Index:
    return Index(name, index, FLOAT)


def for_range(varname: str, start: Expr, end: Expr, body: list[Stmt], step: Expr | None = None) -> For:
    return For(varname, start, end, body, step if step is not None else IntConst(1))


def int_to_float(expr: Expr) -> Cast:
    return Cast(expr, FLOAT)


def float_to_int(expr: Expr) -> Cast:
    return Cast(expr, INT)
