"""System-wide checkpoints of a :class:`MulticoreSystem`.

A :class:`SystemSnapshot` captures everything that determines the rest
of a simulation: per-core architectural state and counters, the cache
state (residency, write-back dirty bits and any pending injected line
faults — the population cache-fault injections target after a restore),
every process' writable memory, the full kernel state (threads,
scheduler queue, synchronisation objects, message queues) and the
SoC-level instruction counter, including the mid-iteration resume
point of a paused run.  Restoring a snapshot onto a freshly launched
system therefore continues the simulation with the exact instruction
interleaving of an uninterrupted run — the determinism guarantee the
fault injector relies on when it fast-forwards to an injection point
instead of re-simulating from boot.

Snapshots are plain picklable data (ints, strings, bytes, tuples,
dicts): object identities such as "this core runs that thread" are
encoded as (pid, tid) pairs, so snapshots can be shipped to worker
processes of a campaign pool.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import SimulatorError
from repro.soc.multicore import MulticoreSystem


@dataclass
class SystemSnapshot:
    """Full simulator state at one instruction boundary."""

    instruction_count: int
    run_reason: Optional[str]
    resume: Optional[tuple]
    cores: list[dict] = field(default_factory=list)
    kernel: dict = field(default_factory=dict)
    shared_l2: Optional[dict] = None
    model_caches: bool = False

    def approx_bytes(self) -> int:
        """Rough memory footprint: the captured segment contents dominate."""
        total = 0
        for process in self.kernel.get("processes", ()):
            for _name, _base, _size, data in process["memory"]["segments"]:
                total += len(data)
            total += len(process["output"])
        return total


def capture_snapshot(system: MulticoreSystem) -> SystemSnapshot:
    """Capture the complete state of ``system``.

    The system may be mid-run (paused at a breakpoint) or untouched
    since launch; it is not modified.
    """
    cores = []
    for core in system.cores:
        entry = core.capture_state()
        thread = core.thread
        entry["thread"] = None if thread is None else (thread.process.pid, thread.tid)
        if core.model_caches:
            entry["caches"] = {
                "l1i": core.caches.l1i.dump_state(),
                "l1d": core.caches.l1d.dump_state(),
            }
        else:
            entry["caches"] = None
        cores.append(entry)
    return SystemSnapshot(
        instruction_count=system.total_instructions,
        run_reason=system.run_reason,
        resume=system._resume,
        cores=cores,
        kernel=system.kernel.capture_state(),
        shared_l2=system.shared_l2.dump_state() if system.model_caches else None,
        model_caches=system.model_caches,
    )


def restore_snapshot(snapshot: SystemSnapshot, system: MulticoreSystem) -> MulticoreSystem:
    """Restore ``snapshot`` onto ``system`` (in place) and return it.

    ``system`` must be a freshly built system on which the same workload
    was launched (same scenario, same core count): process and thread
    creation are deterministic, so the snapshot's (pid, tid) references
    resolve against the fresh kernel state.

    Cache state is only restored when ``system`` models caches; a
    snapshot captured on a cache-modelling golden run restores cleanly
    onto a cache-less injection system because cache residency affects
    cycle counts only, never execution semantics.
    """
    if len(snapshot.cores) != len(system.cores):
        raise SimulatorError(
            f"checkpoint captured {len(snapshot.cores)} cores, system has {len(system.cores)}"
        )
    system.kernel.restore_state(snapshot.kernel)
    for core, entry in zip(system.cores, snapshot.cores):
        core.restore_state(entry)
        reference = entry["thread"]
        if reference is None:
            core.thread = None
            core.mem = None
            core.text = []
        else:
            thread = system.kernel.thread_by_ids(*reference)
            core.thread = thread
            core.text = thread.process.program.instructions
            core.text_base = system.kernel.loader.text_base
            core.mem = thread.process.address_space
        # The restored text is usually the same shared program object
        # (decode-cache hit), but dropping the per-core decoded
        # reference keeps restore correct even if the caller swaps in a
        # differently mutated text image.
        core.invalidate_decode()
        if core.model_caches and entry["caches"] is not None:
            core.caches.l1i.load_state(entry["caches"]["l1i"])
            core.caches.l1d.load_state(entry["caches"]["l1d"])
    if system.model_caches and snapshot.shared_l2 is not None:
        system.shared_l2.load_state(snapshot.shared_l2)
    system.total_instructions = snapshot.instruction_count
    system.run_reason = snapshot.run_reason
    system._resume = snapshot.resume
    return system


def nearest_checkpoint(
    checkpoints: Sequence[SystemSnapshot], instruction: int
) -> Optional[SystemSnapshot]:
    """Latest checkpoint at or before ``instruction`` (None when absent).

    ``checkpoints`` must be sorted by ``instruction_count``, which is how
    the golden runner records them.
    """
    if not checkpoints:
        return None
    counts = [checkpoint.instruction_count for checkpoint in checkpoints]
    index = bisect_right(counts, instruction) - 1
    if index < 0:
        return None
    return checkpoints[index]
