"""System-wide checkpoint/restore for fault-injection fast-forwarding."""

from repro.checkpoint.snapshot import (
    SystemSnapshot,
    capture_snapshot,
    nearest_checkpoint,
    restore_snapshot,
)

__all__ = [
    "SystemSnapshot",
    "capture_snapshot",
    "nearest_checkpoint",
    "restore_snapshot",
]
