"""Statistical campaign engine: sequential estimation for fault injection.

The subsystem that turns campaigns from fixed-count sweeps into
CI-driven adaptive sampling — interval estimators, stratification of
the fault space, sampling plans, the batch controller, and mined
allocation priors.  See docs/statistics.md.
"""

from repro.stats.controller import (
    STOP_BUDGET,
    STOP_CONVERGED,
    AdaptiveController,
    Batch,
)
from repro.stats.estimators import (
    RATE_COMPONENTS,
    TRACKED_RATES,
    RateEstimate,
    StratifiedEstimate,
    binomial_interval,
    clopper_pearson,
    confidence_z,
    max_half_width,
    normal_quantile,
    outcome_estimates,
    post_stratified,
    smoothed_variance,
    wilson_interval,
)
from repro.stats.plan import SamplingPlan
from repro.stats.prior import MinedPrior
from repro.stats.strata import (
    StratumSpace,
    build_stratum_space,
    rank_buckets,
    rank_order,
    static_vulnerability,
    stratum_cells,
    time_bin_counts,
    time_bin_of,
)

__all__ = [
    "AdaptiveController",
    "Batch",
    "MinedPrior",
    "RATE_COMPONENTS",
    "RateEstimate",
    "STOP_BUDGET",
    "STOP_CONVERGED",
    "SamplingPlan",
    "StratifiedEstimate",
    "StratumSpace",
    "TRACKED_RATES",
    "binomial_interval",
    "build_stratum_space",
    "clopper_pearson",
    "confidence_z",
    "max_half_width",
    "normal_quantile",
    "outcome_estimates",
    "post_stratified",
    "rank_buckets",
    "rank_order",
    "smoothed_variance",
    "static_vulnerability",
    "stratum_cells",
    "time_bin_counts",
    "time_bin_of",
    "wilson_interval",
]
