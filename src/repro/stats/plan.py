"""Sampling plans: the knobs of CI-driven adaptive campaigns.

A :class:`SamplingPlan` is the declarative half of the adaptive engine:
*when to stop* (target half-width at a confidence level, fault budget
bounds) and *how to draw* (batch size, stratification granularity,
interval method).  The procedural half lives in
:mod:`repro.stats.controller`.

Plans ride inside campaign-store manifests and coordinator grants, so
they are frozen, JSON-safe, and reject unknown keys the same way
:class:`repro.injection.campaign.CampaignConfig` does — a version-skewed
worker must fail loudly, not silently run a different stopping rule.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields as dataclasses_fields
from typing import Tuple

from repro.stats.estimators import RATE_COMPONENTS, TRACKED_RATES, _INTERVALS


@dataclass(frozen=True)
class SamplingPlan:
    """Stopping rule and draw policy for one adaptive campaign.

    ``target_half_width`` is on the [0, 1] rate scale (0.01 = ±1 point).
    A scenario stops as soon as every tracked rate's post-stratified
    interval is at most that wide — or when ``max_faults`` is spent,
    whichever comes first; ``min_faults`` guards against stopping on
    the noise of the first batch.
    """

    target_half_width: float = 0.02
    confidence: float = 0.95
    min_faults: int = 64
    max_faults: int = 4096
    batch_size: int = 64
    #: stratification granularity (see repro.stats.strata); the defaults
    #: are tuned on the tier-1 matrix: finer time bins buy little once
    #: register-rank buckets separate dead from live registers, and the
    #: coverage floor of extra strata eats the gain
    time_bins: int = 4
    rank_buckets: int = 8
    #: interval method for the pooled per-rate reporting CIs
    method: str = "wilson"
    #: rates the stopping rule watches
    track: Tuple[str, ...] = TRACKED_RATES

    def __post_init__(self) -> None:
        if not 0.0 < self.target_half_width < 0.5:
            raise ValueError(f"target_half_width must be in (0, 0.5), got {self.target_half_width}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.min_faults < 1 or self.max_faults < self.min_faults:
            raise ValueError(
                f"need 1 <= min_faults <= max_faults, got {self.min_faults}..{self.max_faults}"
            )
        if self.time_bins < 1 or self.rank_buckets < 1:
            raise ValueError("time_bins and rank_buckets must be >= 1")
        if self.method not in _INTERVALS:
            raise ValueError(f"unknown interval method {self.method!r}")
        # Any estimable rate may be tracked (notably "Recovered" for
        # recovery sweeps); only the *default* track stays the narrower
        # TRACKED_RATES so existing plans draw identical batches.
        unknown = sorted(set(self.track) - set(RATE_COMPONENTS))
        if unknown:
            raise ValueError(f"unknown tracked rates {unknown}; know {sorted(RATE_COMPONENTS)}")
        if not self.track:
            raise ValueError("track must name at least one rate")

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["track"] = list(self.track)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "SamplingPlan":
        known = {f.name for f in dataclasses_fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(f"unknown sampling plan keys {unknown}")
        data = dict(payload)
        if "track" in data:
            data["track"] = tuple(str(rate) for rate in data["track"])
        return cls(**data)
