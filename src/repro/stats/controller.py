"""The adaptive sampling controller: deterministic batched draws with
CI-driven stopping.

One :class:`AdaptiveController` drives one scenario.  Each round it

1. allocates the next batch over strata by greedy marginal gain on the
   exact variance charge the stopping interval bills (p_h²·v_h/n_h on
   blended own/prior variance; a never-sampled stratum's first slot is
   worth its full probability, so coverage emerges without a floor rule);
2. draws the batch from the scenario's **canonical fault stream** — the
   exact sequence ``ScenarioCampaign.build_fault_list`` produces, which
   is a prefix-stable function of (scenario, seed).  Acceptance walks
   the stream in order and keeps a fault iff its stratum still has
   quota, so the accepted set is a pure function of (seed, plan, prior,
   tallies-so-far): every resume and every worker reproduces it
   bit-identically;
3. records outcomes, updates per-stratum tallies, and evaluates the
   stopping rule (every tracked rate's post-stratified half-width at or
   under the plan's target, the fault budget, or both bounds).

Faults keep their stream position as ``fault_id`` — non-contiguous ids
are deliberate provenance: the id *is* the position in the reproducible
stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.injection.classify import NOT_INJECTED
from repro.injection.fault import FaultDescriptor, TARGET_FPR, TARGET_GPR
from repro.stats.estimators import (
    RATE_COMPONENTS,
    RateEstimate,
    StratifiedEstimate,
    max_half_width,
    outcome_estimates,
    post_stratified,
    smoothed_variance,
)
from repro.stats.plan import SamplingPlan
from repro.stats.prior import MinedPrior
from repro.stats.strata import StratumSpace, build_stratum_space

#: Effective variance assumed for strata with no own samples and no
#: mined prior (worst-case Bernoulli).
DEFAULT_VARIANCE = 0.25

#: Pseudo-sample weight of the mined prior when blending with own
#: tallies: the prior steers early batches, own data takes over as the
#: stratum accumulates real observations.
PRIOR_PSEUDO_SAMPLES = 8

#: Pseudo-sample weight of the collapsed (kind, bucket) group variance
#: when shrinking a stratum's own variance estimate toward its group.
GROUP_SHRINKAGE = 2

#: Stream positions scanned per requested fault before the draw gives
#: up on exact quotas and fills the batch greedily (still deterministic;
#: recorded as ``spilled`` in the batch provenance).
SCAN_LIMIT_FACTOR = 1000

STOP_CONVERGED = "converged"
STOP_BUDGET = "max_faults"


@dataclass
class Batch:
    """One drawn batch plus its provenance skeleton."""

    index: int
    start: int  #: stream cursor before the draw
    stop: int  #: stream cursor after the draw
    faults: List[FaultDescriptor]
    allocation: Dict[str, int]
    spilled: int

    def record(self, counts: Dict[str, int], half_width: float, stopping: Optional[str]) -> dict:
        return {
            "index": self.index,
            "start": self.start,
            "stop": self.stop,
            "size": len(self.faults),
            "spilled": self.spilled,
            "allocation": {key: self.allocation[key] for key in sorted(self.allocation)},
            "counts": {key: counts[key] for key in sorted(counts)},
            "half_width": half_width,
            "stopping": stopping,
        }


@dataclass
class AdaptiveController:
    """Sequential estimation over one scenario's fault space."""

    campaign: "object"  #: ScenarioCampaign with its golden run completed
    plan: SamplingPlan
    prior: Optional[MinedPrior] = None
    space: StratumSpace = field(init=False)
    cursor: int = field(default=0, init=False)
    spent: int = field(default=0, init=False)
    batches: List[dict] = field(default_factory=list, init=False)
    stopping: Optional[str] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.campaign.golden is None:
            self.campaign.run_golden()
        from repro.injection.fault import FaultModel

        scenario = self.campaign.scenario
        mix = FaultModel(
            isa=scenario.isa,
            cores=scenario.cores,
            target_mix=self.campaign.resolved_target_mix(),
            include_pc=self.campaign.config.include_pc,
        ).target_mix
        self.space = build_stratum_space(
            scenario,
            self.campaign.golden.total_instructions,
            mix,
            time_bins=self.plan.time_bins,
            buckets=self.plan.rank_buckets,
        )
        self._probs = self.space.probabilities()
        #: per-stratum outcome tallies (NotInjected kept but never counted
        #: as a trial)
        self._tallies: Dict[str, Dict[str, int]] = {}
        self._counts: Dict[str, int] = {}
        self._stream: List[FaultDescriptor] = []
        self._prior_variance = self._mine_prior_variances()

    # ------------------------------------------------------------------
    # prior and variance blending
    # ------------------------------------------------------------------

    def _registers_of(self, key: str) -> Optional[List[int]]:
        kind, bucket, _ = key.split(":")
        if kind == TARGET_GPR and bucket.startswith("b"):
            wanted = int(bucket[1:])
            return [reg for reg, b in sorted(self.space.gpr_bucket.items()) if b == wanted]
        if kind == TARGET_FPR and bucket.startswith("b"):
            wanted = int(bucket[1:])
            return [reg for reg, b in sorted(self.space.fpr_bucket.items()) if b == wanted]
        return None

    def _mine_prior_variances(self) -> Dict[str, float]:
        if self.prior is None:
            return {}
        isa = self.campaign.scenario.isa
        bins = self.space.time_bins
        mined: Dict[str, float] = {}
        for key in self._probs:
            kind, _, tpart = key.split(":")
            tbin = int(tpart[1:])
            variance = self.prior.stratum_variance(
                isa,
                kind,
                self._registers_of(key),
                tbin / bins,
                (tbin + 1) / bins,
                self.plan.track,
            )
            if variance is not None:
                mined[key] = variance
        return mined

    def _stratum_trials(self, key: str) -> int:
        tally = self._tallies.get(key)
        if not tally:
            return 0
        return sum(count for outcome, count in tally.items() if outcome != NOT_INJECTED)

    @staticmethod
    def _group_of(key: str) -> str:
        return key.rsplit(":", 1)[0]

    def _rate_cells(self, rate: str) -> Dict[str, Tuple[int, int]]:
        """Per-stratum (successes, trials) for one tracked rate."""
        cells: Dict[str, Tuple[int, int]] = {}
        for key, tally in self._tallies.items():
            trials = sum(n for o, n in tally.items() if o != NOT_INJECTED)
            if trials == 0:
                continue
            successes = sum(tally.get(c, 0) for c in RATE_COMPONENTS[rate])
            cells[key] = (successes, trials)
        return cells

    def _rate_variances(self, cells: Dict[str, Tuple[int, int]]) -> Dict[str, float]:
        """Hierarchical within-stratum variance estimates for one rate.

        A stratum's own unsmoothed p̂(1-p̂) is shrunk toward its
        collapsed (kind, bucket) group's smoothed variance: with a
        handful of samples per time-bin cell the own estimate is pure
        noise (and exactly 0 for one-sided cells), while the group has
        enough trials for an honest — mildly conservative, since it
        includes between-bin spread — estimate.  The same variances
        drive batch allocation, so the draws target exactly the terms
        the stopping interval charges.
        """
        groups: Dict[str, Tuple[int, int]] = {}
        for key, (successes, trials) in cells.items():
            group = self._group_of(key)
            g_successes, g_trials = groups.get(group, (0, 0))
            groups[group] = (g_successes + successes, g_trials + trials)
        variances: Dict[str, float] = {}
        for key, (successes, trials) in cells.items():
            p_hat = successes / trials
            own = p_hat * (1.0 - p_hat)
            group_v = smoothed_variance(*groups[self._group_of(key)])
            variances[key] = (trials * own + GROUP_SHRINKAGE * group_v) / (
                trials + GROUP_SHRINKAGE
            )
        return variances

    def _allocation_variances(self) -> Dict[str, float]:
        """Per-stratum effective variance for batch allocation.

        Sums the estimation variances across tracked rates — the *same*
        quantities the stopping interval charges, so allocation cannot
        chase variance the interval never bills — and softly blends in
        the mined prior, which steers draws before own data exists and
        decays as real observations accumulate.
        """
        effective: Dict[str, float] = {key: 0.0 for key in self._probs}
        sampled = False
        for rate in self.plan.track:
            cells = self._rate_cells(rate)
            if not cells:
                continue
            sampled = True
            for key, variance in self._rate_variances(cells).items():
                effective[key] += variance
        variances: Dict[str, float] = {}
        for key in self._probs:
            trials = self._stratum_trials(key)
            own = effective[key] if (sampled and trials > 0) else None
            mined = self._prior_variance.get(key)
            if own is None and mined is None:
                variances[key] = DEFAULT_VARIANCE
            elif mined is None:
                variances[key] = own  # type: ignore[assignment]
            elif own is None:
                variances[key] = mined
            else:
                variances[key] = (trials * own + PRIOR_PSEUDO_SAMPLES * mined) / (
                    trials + PRIOR_PSEUDO_SAMPLES
                )
        return variances

    # ------------------------------------------------------------------
    # allocation and drawing
    # ------------------------------------------------------------------

    def _allocate(self, size: int) -> Dict[str, int]:
        """Quota per stratum for the next batch: greedy marginal gain.

        Each slot goes to the stratum where one more sample most
        reduces the stopping interval's variance charge
        ``p_h^2 * v_h / n_h`` (summed over tracked rates).  A stratum
        with no samples yet contributes its full probability to the
        interval's unsampled mass, so its first slot's gain is ``p_h``
        itself — coverage of the whole space emerges without a separate
        floor rule.  Ties break on the stratum key, keeping the
        allocation a pure function of the tallies.
        """
        variances = self._allocation_variances()
        trials = {key: self._stratum_trials(key) for key in self._probs}
        quotas = {key: 0 for key in self._probs}

        def gain(key: str) -> float:
            n = trials[key] + quotas[key]
            p = self._probs[key]
            if n == 0:
                return p
            return p * p * variances[key] * (1.0 / n - 1.0 / (n + 1))

        for _ in range(size):
            best = min(((-gain(key), key) for key in quotas))
            quotas[best[1]] += 1
        return quotas

    def _stream_fault(self, position: int) -> FaultDescriptor:
        if position >= len(self._stream):
            want = max(position + 1, len(self._stream) * 2, 4 * self.plan.batch_size)
            self._stream = self.campaign.build_fault_list(count=want)
        return self._stream[position]

    def _next_size(self) -> int:
        """Size of the next batch: full, or trimmed to the estimated need.

        Once estimates exist, the half-width shrinks roughly as 1/√n, so
        the total need is ≈ spent·(w/target)²; when the remaining gap is
        smaller than a full batch, drawing only the shortfall (floor 8)
        avoids overshooting the target by most of a batch.
        """
        size = min(self.plan.batch_size, self.plan.max_faults - self.spent)
        if size <= 0 or self.spent == 0:
            return size
        width = max_half_width(self.estimates())
        if width >= 1.0:  # unsampled mass still dominates: no basis to trim
            return size
        needed = self.spent * ((width / self.plan.target_half_width) ** 2 - 1.0)
        needed = max(needed, self.plan.min_faults - self.spent)
        return max(8, min(size, math.ceil(needed)))

    def next_batch(self) -> Optional[Batch]:
        """Draw the next deterministic batch, or None once stopped."""
        if self.stopping is not None:
            return None
        size = self._next_size()
        if size <= 0:
            self.stopping = STOP_BUDGET
            return None
        quotas = self._allocate(size)
        open_quotas = {key: quota for key, quota in quotas.items() if quota > 0}
        wanted = sum(open_quotas.values())
        accepted: List[FaultDescriptor] = []
        start = self.cursor
        scanned = 0
        spilled = 0
        scan_limit = SCAN_LIMIT_FACTOR * size
        while len(accepted) < size:
            fault = self._stream_fault(self.cursor)
            self.cursor += 1
            scanned += 1
            if scanned <= scan_limit and wanted > 0:
                key = self.space.key_of(fault)
                quota = open_quotas.get(key, 0)
                if quota > 0:
                    open_quotas[key] = quota - 1
                    wanted -= 1
                    accepted.append(fault)
            else:
                spilled += 1
                accepted.append(fault)
        return Batch(
            index=len(self.batches),
            start=start,
            stop=self.cursor,
            faults=accepted,
            allocation=quotas,
            spilled=spilled,
        )

    # ------------------------------------------------------------------
    # recording and stopping
    # ------------------------------------------------------------------

    def record_batch(self, batch: Batch, results) -> dict:
        """Tally one executed batch; returns its provenance record."""
        counts: Dict[str, int] = {}
        for result in results:
            key = self.space.key_of(result.fault)
            tally = self._tallies.setdefault(key, {})
            tally[result.outcome] = tally.get(result.outcome, 0) + 1
            self._counts[result.outcome] = self._counts.get(result.outcome, 0) + 1
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        self.spent += len(batch.faults)
        self.stopping = self._evaluate_stopping()
        record = batch.record(counts, max_half_width(self.estimates()), self.stopping)
        self.batches.append(record)
        return record

    def _evaluate_stopping(self) -> Optional[str]:
        if self.spent >= self.plan.max_faults:
            return STOP_BUDGET
        if self.spent < self.plan.min_faults:
            return None
        if max_half_width(self.estimates()) <= self.plan.target_half_width:
            return STOP_CONVERGED
        return None

    def estimates(self) -> Dict[str, StratifiedEstimate]:
        """Post-stratified interval per tracked rate (the stopping metric).

        Point estimates are per-stratum; within-stratum variances come
        from :meth:`_rate_variances` (own estimate shrunk toward the
        collapsed group) — the same quantities batch allocation targets.
        """
        estimates: Dict[str, StratifiedEstimate] = {}
        for rate in self.plan.track:
            cells = self._rate_cells(rate)
            estimates[rate] = post_stratified(
                cells,
                self._probs,
                rate=rate,
                confidence=self.plan.confidence,
                variance_of=self._rate_variances(cells),
            )
        return estimates

    def pooled_estimates(self) -> Dict[str, RateEstimate]:
        """Unweighted per-rate intervals over the raw pooled counts."""
        return outcome_estimates(
            self._counts, self.plan.confidence, self.plan.method, self.plan.track
        )

    # ------------------------------------------------------------------
    # provenance and state transfer
    # ------------------------------------------------------------------

    def summary(self) -> dict:
        """The ``adaptive`` payload attached to the scenario report."""
        return {
            "plan": self.plan.as_dict(),
            "seed": self.stream_seed(),
            "spent": self.spent,
            "cursor": self.cursor,
            "stopping": self.stopping,
            "strata": len(self._probs),
            "strata_sampled": sum(
                1 for key in self._probs if self._stratum_trials(key) > 0
            ),
            "batches": list(self.batches),
            "estimates": {
                rate: estimate.as_dict() for rate, estimate in sorted(self.estimates().items())
            },
            "pooled": {
                rate: estimate.as_dict()
                for rate, estimate in sorted(self.pooled_estimates().items())
            },
        }

    def stream_seed(self) -> int:
        """The effective fault-stream seed (campaign seed + scenario tag)."""
        import zlib

        scenario_tag = zlib.crc32(self.campaign.scenario.scenario_id.encode()) % 100_000
        return self.campaign.config.seed + scenario_tag

    def restore(self, batches: List[dict], results) -> None:
        """Rebuild controller state from stored provenance + results.

        ``results`` must be exactly the injections of the recorded
        batches, in order.  Tallies, cursor, spent and the stopping
        verdict are recomputed — not trusted from the payload — so a
        corrupt partial cannot smuggle in an inconsistent state.
        """
        if self.spent or self.batches:
            raise ValueError("restore() requires a fresh controller")
        results = list(results)
        consumed = 0
        for stored in batches:
            size = int(stored["size"])
            batch = Batch(
                index=int(stored["index"]),
                start=int(stored["start"]),
                stop=int(stored["stop"]),
                faults=[result.fault for result in results[consumed : consumed + size]],
                allocation={str(k): int(v) for k, v in stored.get("allocation", {}).items()},
                spilled=int(stored.get("spilled", 0)),
            )
            if len(batch.faults) != size:
                raise ValueError(
                    f"partial state truncated: batch {batch.index} wants {size} results, "
                    f"got {len(batch.faults)}"
                )
            self.cursor = batch.stop
            self.record_batch(batch, results[consumed : consumed + size])
            consumed += size
        if consumed != len(results):
            raise ValueError(
                f"partial state has {len(results) - consumed} results beyond its batches"
            )
