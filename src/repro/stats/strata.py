"""Stratification of the fault space for adaptive sampling.

A stratum is a cell of (target kind × register-rank bucket × injection-
time quantile bin).  The axes mirror what actually drives outcome
variance in this simulator:

* **target kind** — PC faults behave nothing like register faults;
* **register-rank bucket** — registers sorted by the static ACE
  fraction from :mod:`repro.staticlint` (PR 8's validated ranks): a
  mostly-dead register masks nearly everything, a hot one almost
  nothing, so rank buckets separate near-deterministic cells from
  genuinely noisy ones;
* **injection-time quantile** — early faults get overwritten, late
  faults land after the last output write; time bins capture the
  program-phase structure of masking.

The stratum *probability* under the uniform fault model factorises
exactly: kinds are drawn from the normalized mix, registers uniformly
within a kind, times uniformly over ``[1, total_instructions - 1]`` —
all independent.  That makes post-stratified reweighting exact rather
than approximate.

Everything here is a pure function of (scenario binary, golden length,
mix, plan), so every worker and every resume rebuilds the identical
space without shipping it over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.injection.fault import (
    CACHE_LEVELS,
    TARGET_CACHE,
    TARGET_FPR,
    TARGET_GPR,
    FaultDescriptor,
)
from repro.isa.arch import get_arch

#: Bucket label for kinds with no register sub-structure (pc, memory).
NO_BUCKET = "-"


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def time_bin_of(injection_time: int, total_instructions: int, bins: int) -> int:
    """Quantile bin of an injection time drawn from [1, T-1]."""
    span = total_instructions - 1
    if span <= 0 or bins <= 1:
        return 0
    k = injection_time - 1  # 0 .. span-1
    return min(bins - 1, (k * bins) // span)


def time_bin_counts(total_instructions: int, bins: int) -> Tuple[int, ...]:
    """Exact number of integer times [1, T-1] falling in each bin."""
    span = max(0, total_instructions - 1)
    if bins <= 1:
        return (span,)
    return tuple(
        _ceil_div((i + 1) * span, bins) - _ceil_div(i * span, bins) for i in range(bins)
    )


def rank_order(ace: Mapping[int, float], count: int) -> Tuple[int, ...]:
    """Registers sorted by ACE fraction, descending; index breaks ties.

    Registers absent from the ACE map rank last (weight 0) — the sort is
    total and deterministic either way.
    """
    return tuple(sorted(range(count), key=lambda reg: (-ace.get(reg, 0.0), reg)))


def rank_buckets(order: Tuple[int, ...], buckets: int) -> Dict[int, int]:
    """Map register index -> bucket, splitting the rank order evenly."""
    n = len(order)
    if n == 0:
        return {}
    buckets = max(1, min(buckets, n))
    mapping: Dict[int, int] = {}
    for b in range(buckets):
        for reg in order[b * n // buckets : (b + 1) * n // buckets]:
            mapping[reg] = b
    return mapping


@dataclass(frozen=True, eq=False)
class StratumSpace:
    """The full stratification of one scenario's fault space."""

    #: normalized kind -> probability, as drawn by the fault model
    kind_probs: Tuple[Tuple[str, float], ...]
    total_instructions: int
    time_bins: int
    #: per-kind register->bucket maps (gpr/fpr); other kinds unbucketed
    gpr_bucket: Mapping[int, int]
    fpr_bucket: Mapping[int, int]
    num_gpr: int
    num_fpr: int

    def key_of(self, fault: FaultDescriptor) -> str:
        """Stratum key of a fault, e.g. ``"gpr:b2:t5"`` or ``"pc:-:t0"``."""
        kind = fault.target_kind
        if kind == TARGET_GPR:
            bucket = f"b{self.gpr_bucket.get(fault.register_index, 0)}"
        elif kind == TARGET_FPR:
            bucket = f"b{self.fpr_bucket.get(fault.register_index, 0)}"
        elif kind == TARGET_CACHE:
            bucket = fault.cache_level or CACHE_LEVELS[0]
        else:
            bucket = NO_BUCKET
        tbin = time_bin_of(fault.injection_time, self.total_instructions, self.time_bins)
        return f"{kind}:{bucket}:t{tbin}"

    def _bucket_probs(self, kind: str) -> Dict[str, float]:
        if kind == TARGET_GPR and self.num_gpr:
            return _bucket_shares(self.gpr_bucket, self.num_gpr)
        if kind == TARGET_FPR and self.num_fpr:
            return _bucket_shares(self.fpr_bucket, self.num_fpr)
        if kind == TARGET_CACHE:
            return {level: 1.0 / len(CACHE_LEVELS) for level in CACHE_LEVELS}
        return {NO_BUCKET: 1.0}

    def probabilities(self) -> Dict[str, float]:
        """Probability of each stratum under the uniform fault model.

        Keys are emitted in sorted order; probabilities sum to 1 up to
        float rounding.
        """
        counts = time_bin_counts(self.total_instructions, self.time_bins)
        span = max(1, sum(counts))
        probs: Dict[str, float] = {}
        for kind, kind_p in self.kind_probs:
            for bucket, bucket_p in self._bucket_probs(kind).items():
                for tbin, count in enumerate(counts):
                    probs[f"{kind}:{bucket}:t{tbin}"] = kind_p * bucket_p * count / span
        return {key: probs[key] for key in sorted(probs)}

    def keys(self) -> Tuple[str, ...]:
        return tuple(self.probabilities())


def _bucket_shares(bucket_map: Mapping[int, int], num_registers: int) -> Dict[str, float]:
    shares: Dict[str, float] = {}
    for bucket in bucket_map.values():
        label = f"b{bucket}"
        shares[label] = shares.get(label, 0.0) + 1.0 / num_registers
    return shares or {NO_BUCKET: 1.0}


def build_stratum_space(
    scenario,
    total_instructions: int,
    target_mix: Mapping[str, float],
    time_bins: int = 4,
    buckets: int = 8,
    vulnerability=None,
) -> StratumSpace:
    """Build the stratum space for one scenario.

    ``target_mix`` must be the *normalized* mix actually used by the
    fault model (``FaultModel.target_mix``).  ``vulnerability`` defaults
    to the purely static ACE analysis of the scenario's linked program —
    a deterministic function of the binary, so distributed workers and
    resumed runs always agree on the bucketing without any shared state.
    """
    arch = get_arch(scenario.isa)
    if vulnerability is None:
        vulnerability = static_vulnerability(scenario)
    gpr_map = rank_buckets(rank_order(vulnerability.gpr_ace, arch.num_gpr), buckets)
    fpr_map = rank_buckets(rank_order(vulnerability.fpr_ace, arch.num_fpr), buckets)
    return StratumSpace(
        kind_probs=tuple(sorted(target_mix.items())),
        total_instructions=total_instructions,
        time_bins=max(1, time_bins),
        gpr_bucket=gpr_map,
        fpr_bucket=fpr_map,
        num_gpr=arch.num_gpr,
        num_fpr=arch.num_fpr,
    )


def static_vulnerability(scenario):
    """Static (unprofiled) ACE analysis of the scenario's program.

    Profiled weighting would need a golden run; the plain liveness
    fixpoint is cheap, and bucket *membership* — all the space needs —
    is robust to the difference.
    """
    from repro.hardening.schemes import hardening_label
    from repro.npb.suite import build_program
    from repro.staticlint.ace import analyze_program

    program = build_program(scenario.app, scenario.mode, scenario.isa, scenario.hardening)
    return analyze_program(
        program,
        scenario_id=scenario.scenario_id,
        app=scenario.app,
        mode=scenario.mode,
        isa=scenario.isa,
        hardening=hardening_label(scenario.hardening),
    )


def stratum_cells(
    results,
    space: StratumSpace,
    rate_components: Tuple[str, ...],
) -> Dict[str, Tuple[int, int]]:
    """Per-stratum (successes, trials) for one tracked rate.

    ``results`` is an iterable of objects with ``fault`` (descriptor)
    and ``outcome`` attributes; NotInjected runs are excluded entirely
    (they observed nothing).
    """
    from repro.injection.classify import NOT_INJECTED

    cells: Dict[str, Tuple[int, int]] = {}
    for result in results:
        if result.outcome == NOT_INJECTED:
            continue
        key = space.key_of(result.fault)
        successes, trials = cells.get(key, (0, 0))
        cells[key] = (successes + (1 if result.outcome in rate_components else 0), trials + 1)
    return cells
