"""Confidence intervals and stratified estimators for outcome rates.

Campaign outcomes are Bernoulli observations: each injected fault either
lands in a given category (Vanished, OMM, ...) or it does not.  This
module provides the interval machinery the adaptive sampling controller
stops on:

* :func:`wilson_interval` — the Wilson score interval, the default.  It
  behaves well at the extremes (0 or n successes) where the naive Wald
  interval collapses to zero width.
* :func:`clopper_pearson` — the exact (conservative) interval, built on
  the regularized incomplete beta function implemented here from
  ``math.lgamma`` (stdlib only, no scipy).
* :func:`post_stratified` — reweights per-stratum rates by known stratum
  probabilities.  With proportional weights it reduces exactly to the
  plain pooled estimator; with Neyman-style allocation it is the reason
  adaptive campaigns need fewer faults than uniform ones.

``NotInjected`` runs carry no fault-behaviour information; callers must
exclude them before counting (see :func:`outcome_estimates`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.injection.classify import NOT_INJECTED, Outcome

#: Rates the sampling controller tracks for its stopping rule.  The
#: masking rate ("masked" = Vanished + ONA) is tracked as one combined
#: rate: its two components are individually noisy (a dead register can
#: flip a fault between Vanished and ONA) but their sum is the paper's
#: headline metric and stratifies cleanly over register liveness.
TRACKED_RATES: Tuple[str, ...] = ("masked", "OMM", "UT", "Hang", "Detected")

#: Outcome categories folded into each trackable rate.  ``Recovered``
#: is estimable but deliberately absent from :data:`TRACKED_RATES`:
#: adding it to the default stopping rule would change the variance
#: sums — and therefore the batch draws — of every existing adaptive
#: campaign.  Recovery sweeps opt in via ``SamplingPlan.track`` (see
#: ``scripts/run_campaign.py``).
RATE_COMPONENTS: Dict[str, Tuple[str, ...]] = {
    "masked": (Outcome.VANISHED.value, Outcome.ONA.value),
    "OMM": (Outcome.OMM.value,),
    "UT": (Outcome.UT.value,),
    "Hang": (Outcome.HANG.value,),
    "Detected": (Outcome.DETECTED.value,),
    "Recovered": (Outcome.RECOVERED.value,),
}


def normal_quantile(p: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Accurate to ~1.15e-9 over (0, 1) — far below sampling noise for any
    campaign this repo can run, and stdlib-only.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"quantile probability must be in (0, 1), got {p}")
    # Coefficients of Acklam's approximation.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    )


def confidence_z(confidence: float) -> float:
    """Two-sided normal critical value for a confidence level."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return normal_quantile(0.5 + confidence / 2.0)


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    _check_counts(successes, trials)
    if trials == 0:
        return (0.0, 1.0)
    z = confidence_z(confidence)
    n = float(trials)
    p_hat = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p_hat + z2 / (2.0 * n)) / denom
    margin = (z / denom) * math.sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n))
    return (max(0.0, centre - margin), min(1.0, centre + margin))


# ----------------------------------------------------------------------
# Clopper-Pearson via the regularized incomplete beta function
# ----------------------------------------------------------------------


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-30
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b), the regularized incomplete beta function."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
        + a * math.log(x) + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def _beta_quantile(p: float, a: float, b: float) -> float:
    """Inverse of I_x(a, b) by bisection (monotone, always converges)."""
    lo, hi = 0.0, 1.0
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if regularized_incomplete_beta(a, b, mid) < p:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def clopper_pearson(successes: int, trials: int, confidence: float = 0.95) -> Tuple[float, float]:
    """Exact (conservative) binomial confidence interval."""
    _check_counts(successes, trials)
    if trials == 0:
        return (0.0, 1.0)
    alpha = 1.0 - confidence
    if successes == 0:
        lower = 0.0
    else:
        lower = _beta_quantile(alpha / 2.0, successes, trials - successes + 1)
    if successes == trials:
        upper = 1.0
    else:
        upper = _beta_quantile(1.0 - alpha / 2.0, successes + 1, trials - successes)
    return (lower, upper)


_INTERVALS = {"wilson": wilson_interval, "clopper-pearson": clopper_pearson}


def binomial_interval(
    successes: int, trials: int, confidence: float = 0.95, method: str = "wilson"
) -> Tuple[float, float]:
    """Dispatch to a named interval method ("wilson" or "clopper-pearson")."""
    try:
        fn = _INTERVALS[method]
    except KeyError:
        raise ValueError(f"unknown interval method {method!r}; know {sorted(_INTERVALS)}")
    return fn(successes, trials, confidence)


def _check_counts(successes: int, trials: int) -> None:
    if trials < 0:
        raise ValueError(f"trials must be >= 0, got {trials}")
    if not 0 <= successes <= max(trials, 0):
        raise ValueError(f"successes {successes} outside [0, {trials}]")


# ----------------------------------------------------------------------
# Rate estimates over outcome counts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RateEstimate:
    """A point estimate with its confidence interval, on the [0, 1] scale."""

    rate: str
    estimate: float
    lower: float
    upper: float
    successes: int
    trials: int
    confidence: float
    method: str

    @property
    def half_width(self) -> float:
        return 0.5 * (self.upper - self.lower)

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "estimate": self.estimate,
            "lower": self.lower,
            "upper": self.upper,
            "half_width": self.half_width,
            "successes": self.successes,
            "trials": self.trials,
            "confidence": self.confidence,
            "method": self.method,
        }


def observed_total(counts: Mapping[str, int]) -> int:
    """Number of *injected* runs — NotInjected excluded."""
    return sum(value for key, value in counts.items() if key != NOT_INJECTED)


def rate_successes(counts: Mapping[str, int], rate: str) -> int:
    """Successes for a tracked rate (sums its component outcomes)."""
    try:
        components = RATE_COMPONENTS[rate]
    except KeyError:
        raise ValueError(f"unknown tracked rate {rate!r}; know {sorted(RATE_COMPONENTS)}")
    return sum(counts.get(component, 0) for component in components)


def outcome_estimates(
    counts: Mapping[str, int],
    confidence: float = 0.95,
    method: str = "wilson",
    rates: Sequence[str] = TRACKED_RATES,
) -> Dict[str, RateEstimate]:
    """Interval estimates for the tracked rates over raw outcome counts.

    ``NotInjected`` is excluded from both numerator and denominator: a
    run that finished before its injection point observed nothing.
    """
    trials = observed_total(counts)
    estimates: Dict[str, RateEstimate] = {}
    for rate in rates:
        successes = rate_successes(counts, rate)
        lower, upper = binomial_interval(successes, trials, confidence, method)
        estimates[rate] = RateEstimate(
            rate=rate,
            estimate=(successes / trials) if trials else 0.0,
            lower=lower,
            upper=upper,
            successes=successes,
            trials=trials,
            confidence=confidence,
            method=method,
        )
    return estimates


def max_half_width(estimates: Mapping[str, RateEstimate]) -> float:
    """The widest half-interval across tracked rates (the stopping metric)."""
    if not estimates:
        return 1.0
    return max(estimate.half_width for estimate in estimates.values())


# ----------------------------------------------------------------------
# Post-stratified estimation
# ----------------------------------------------------------------------


def smoothed_variance(successes: int, trials: int) -> float:
    """Smoothed Bernoulli variance (x+1/2)(n-x+1/2)/(n+1)^2.

    The add-half (Jeffreys-style) smoothing keeps empty or one-sided
    strata from claiming exactly zero variance, which would starve them
    of samples forever under Neyman allocation.
    """
    _check_counts(successes, trials)
    n = trials + 1.0
    return ((successes + 0.5) * (trials - successes + 0.5)) / (n * n)


@dataclass(frozen=True)
class StratifiedEstimate:
    """Post-stratified rate estimate: sum_h p_h * p̂_h with normal CI.

    ``unsampled_weight`` is the total probability of strata with zero
    observations — their rates are unknown, so the interval is clipped
    to admit anything in those cells (the controller's allocation floor
    drives this to zero before convergence is possible).
    """

    rate: str
    estimate: float
    variance: float
    confidence: float
    trials: int
    strata_sampled: int
    unsampled_weight: float

    @property
    def half_width(self) -> float:
        base = confidence_z(self.confidence) * math.sqrt(max(self.variance, 0.0))
        return min(1.0, base + self.unsampled_weight)

    @property
    def lower(self) -> float:
        return max(0.0, self.estimate - self.half_width)

    @property
    def upper(self) -> float:
        return min(1.0, self.estimate + self.half_width)

    def as_dict(self) -> dict:
        return {
            "rate": self.rate,
            "estimate": self.estimate,
            "half_width": self.half_width,
            "lower": self.lower,
            "upper": self.upper,
            "variance": self.variance,
            "confidence": self.confidence,
            "trials": self.trials,
            "strata_sampled": self.strata_sampled,
            "unsampled_weight": self.unsampled_weight,
        }


def post_stratified(
    cells: Mapping[str, Tuple[int, int]],
    probabilities: Optional[Mapping[str, float]] = None,
    rate: str = "rate",
    confidence: float = 0.95,
    variance_of: Optional[Mapping[str, float]] = None,
) -> StratifiedEstimate:
    """Post-stratified estimate from per-stratum (successes, trials).

    ``probabilities`` maps stratum key -> its probability under the base
    fault distribution.  When omitted, strata are weighted by their
    observed sample share — which reduces *exactly* to the plain pooled
    estimator (the hypothesis property tier-1 tests pin down).

    ``variance_of`` optionally supplies per-stratum within-stratum
    variance estimates (e.g. pooled over a collapsed parent group, the
    controller's choice — see docs/statistics.md); by default each
    stratum's own smoothed variance is used.  Point estimates always
    come from the stratum's own counts.

    Strata are iterated in sorted key order so the floating-point
    summation order — and therefore every downstream fingerprint — is
    independent of dict construction order.
    """
    total = sum(trials for _, trials in cells.values())
    if probabilities is None:
        if total == 0:
            probabilities = {}
        else:
            probabilities = {key: cells[key][1] / total for key in cells}
    weight_sum = sum(probabilities.get(key, 0.0) for key in cells)
    estimate = 0.0
    variance = 0.0
    unsampled = max(0.0, 1.0 - weight_sum) if probabilities else 1.0
    sampled = 0
    for key in sorted(cells):
        successes, trials = cells[key]
        _check_counts(successes, trials)
        p_h = probabilities.get(key, 0.0)
        if trials == 0:
            unsampled += p_h
            continue
        sampled += 1
        p_hat = successes / trials
        estimate += p_h * p_hat
        if variance_of is not None and key in variance_of:
            within = variance_of[key]
        else:
            within = smoothed_variance(successes, trials)
        variance += p_h * p_h * within / trials
    return StratifiedEstimate(
        rate=rate,
        estimate=estimate,
        variance=variance,
        confidence=confidence,
        trials=total,
        strata_sampled=sampled,
        unsampled_weight=unsampled,
    )
