"""Mined allocation priors: steering adaptive draws from completed shards.

An adaptive campaign allocates each batch over strata by Neyman's rule
(n_h proportional to p_h * sqrt(v_h)), which needs per-stratum variance
estimates.  Before a scenario has drawn anything, those estimates come
from a :class:`MinedPrior` built out of *completed* campaign shards —
typically a brute-forced calibration store — pooled per (isa, target
kind, register, time-fraction bin).

The prior also carries the mining layer's F*B-indices (function calls ×
branches, the paper's Table 2 hang predictor): scenarios with a high
index hang in the late execution phases, so the prior tilts the
late-time bins of high-F*B ISAs toward more variance, pulling samples
into the tail where Hang events live.

Determinism contract: a prior is an **explicit input** (a path on the
CLI, a JSON blob in a coordinator grant).  It is never accumulated from
the in-flight run — shard completion order differs between runs and
workers, and folding it back in would break the bit-identical
reproducibility of adaptive campaigns.  Given the same prior payload,
allocation is a pure function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.injection.classify import NOT_INJECTED
from repro.stats.estimators import RATE_COMPONENTS, smoothed_variance
from repro.stats.strata import time_bin_of

#: Time resolution the prior pools at (fractions of the golden run).
PRIOR_TIME_BINS = 8

#: F*B tilt: late-time variance multiplier ramps up to this cap as the
#: normalized F*B index grows.  Allocation-only — estimates never see it.
FB_TILT_CAP = 2.0

#: Fraction of the time axis (from the end) the F*B tilt applies to.
FB_TAIL_FRACTION = 0.25


def _cell_key(isa: str, kind: str, register: int, tbin: int) -> str:
    return f"{isa}|{kind}|{register}|{tbin}"


@dataclass
class MinedPrior:
    """Pooled per-cell outcome counts mined from completed shards.

    ``cells`` maps ``"isa|kind|register|tbin"`` (register ``-1`` for
    unbucketed kinds) to per-outcome counts.  ``fb_by_isa`` maps ISA to
    its mean normalized F*B-index over the mined scenarios.
    """

    time_bins: int = PRIOR_TIME_BINS
    cells: Dict[str, Dict[str, int]] = field(default_factory=dict)
    fb_by_isa: Dict[str, float] = field(default_factory=dict)
    scenarios: int = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_reports(cls, reports: Iterable, time_bins: int = PRIOR_TIME_BINS) -> "MinedPrior":
        """Mine a prior from :class:`ScenarioReport` objects with results."""
        prior = cls(time_bins=time_bins)
        products: Dict[str, list] = {}
        for report in reports:
            total = int(report.golden_summary.get("instructions", 0))
            if total < 3:
                continue
            prior.scenarios += 1
            isa = report.scenario.isa
            for result in report.results:
                if result.outcome == NOT_INJECTED:
                    continue
                fault = result.fault
                register = (
                    fault.register_index if fault.target_kind in ("gpr", "fpr") else -1
                )
                tbin = time_bin_of(fault.injection_time, total, time_bins)
                key = _cell_key(isa, fault.target_kind, register, tbin)
                cell = prior.cells.setdefault(key, {})
                cell[result.outcome] = cell.get(result.outcome, 0) + 1
            branches = float(report.golden_stats.get("branches_total", 0.0))
            calls = float(report.golden_stats.get("function_calls_total", 0.0))
            product = branches * calls
            if product > 0:
                products.setdefault(isa, []).append(product)
        for isa, values in sorted(products.items()):
            baseline = min(values)
            prior.fb_by_isa[isa] = sum(v / baseline for v in values) / len(values)
        return prior

    @classmethod
    def from_store(cls, store, time_bins: int = PRIOR_TIME_BINS) -> "MinedPrior":
        """Mine every completed shard of a campaign store."""
        reports = [store.load_shard(sid) for sid in sorted(store.completed_ids())]
        return cls.from_reports(reports, time_bins=time_bins)

    # ------------------------------------------------------------------
    # serialisation (priors ride inside coordinator grants)
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "time_bins": self.time_bins,
            "cells": {key: dict(cell) for key, cell in sorted(self.cells.items())},
            "fb_by_isa": dict(sorted(self.fb_by_isa.items())),
            "scenarios": self.scenarios,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MinedPrior":
        return cls(
            time_bins=int(payload.get("time_bins", PRIOR_TIME_BINS)),
            cells={
                str(key): {str(o): int(n) for o, n in cell.items()}
                for key, cell in (payload.get("cells") or {}).items()
            },
            fb_by_isa={str(k): float(v) for k, v in (payload.get("fb_by_isa") or {}).items()},
            scenarios=int(payload.get("scenarios", 0)),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def _pooled(
        self, isa: str, kind: str, registers: Optional[Sequence[int]], lo: float, hi: float
    ) -> Dict[str, int]:
        regs = [-1] if registers is None else sorted(registers)
        pooled: Dict[str, int] = {}
        for tbin in range(self.time_bins):
            centre = (tbin + 0.5) / self.time_bins
            if not lo <= centre < hi:
                continue
            for register in regs:
                cell = self.cells.get(_cell_key(isa, kind, register, tbin))
                if not cell:
                    continue
                for outcome, count in cell.items():
                    pooled[outcome] = pooled.get(outcome, 0) + count
        return pooled

    def stratum_variance(
        self,
        isa: str,
        kind: str,
        registers: Optional[Sequence[int]],
        time_lo: float,
        time_hi: float,
        track: Tuple[str, ...],
    ) -> Optional[float]:
        """Prior effective variance of a stratum, or None if unmined.

        The effective variance sums the smoothed Bernoulli variances of
        the tracked rates over the pooled cell counts.  Falls back to
        the full time axis when the requested window has no mined
        samples (coarse beats nothing); returns None only when the
        (isa, kind, registers) slice was never mined at all.
        """
        pooled = self._pooled(isa, kind, registers, time_lo, time_hi)
        if not pooled:
            pooled = self._pooled(isa, kind, registers, 0.0, 1.0)
        trials = sum(pooled.values())
        if trials == 0:
            return None
        variance = 0.0
        for rate in track:
            successes = sum(pooled.get(c, 0) for c in RATE_COMPONENTS[rate])
            variance += smoothed_variance(successes, trials)
        return variance * self.fb_tilt(isa, time_lo, time_hi)

    def fb_tilt(self, isa: str, time_lo: float, time_hi: float) -> float:
        """Late-time allocation multiplier from the mined F*B-index.

        1.0 everywhere except the execution tail of ISAs whose mined
        F*B-index exceeds the baseline; capped at :data:`FB_TILT_CAP`.
        """
        if time_hi <= 1.0 - FB_TAIL_FRACTION:
            return 1.0
        fb = self.fb_by_isa.get(isa, 1.0)
        return min(FB_TILT_CAP, max(1.0, fb))
