"""repro — reproduction of "Extensive Evaluation of Programming Models and
ISAs Impact on Multicore Soft Error Reliability" (DAC 2018).

The package is organised bottom-up:

* :mod:`repro.isa`, :mod:`repro.memory`, :mod:`repro.cpu`, :mod:`repro.soc` —
  the multicore instruction-level simulator (the gem5 stand-in);
* :mod:`repro.kernel` — the miniature guest operating system;
* :mod:`repro.compiler`, :mod:`repro.runtime` — the MiniC toolchain and the
  guest runtime libraries (software float, OpenMP-like, MPI-like);
* :mod:`repro.npb` — the NPB-style workloads and the 130-scenario matrix;
* :mod:`repro.injection`, :mod:`repro.orchestration` — the fault-injection
  framework and campaign orchestration;
* :mod:`repro.profiling`, :mod:`repro.mining`, :mod:`repro.analysis` — the
  cross-layer data-mining tool and the per-table/figure experiment drivers.
"""

from repro.injection import CampaignConfig, FaultInjector, FaultModel, GoldenRunner, Outcome, ScenarioCampaign
from repro.isa import ARMV7, ARMV8, get_arch
from repro.npb import build_program, build_scenario_suite
from repro.orchestration import CampaignRunner, ResultsDatabase
from repro.soc import build_system

__version__ = "1.0.0"

__all__ = [
    "ARMV7",
    "ARMV8",
    "get_arch",
    "build_system",
    "build_program",
    "build_scenario_suite",
    "FaultModel",
    "FaultInjector",
    "GoldenRunner",
    "ScenarioCampaign",
    "CampaignConfig",
    "CampaignRunner",
    "ResultsDatabase",
    "Outcome",
    "__version__",
]
