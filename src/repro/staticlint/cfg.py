"""Control-flow graph over linked program text.

Basic blocks are computed from the classic leader rule over the flat
instruction list of a linked :class:`~repro.isa.program.Program`:
index ``start`` is a leader, every branch target is a leader, and the
instruction following any block terminator (``BLOCK_TERMINATOR_OPS``)
is a leader.  Branch targets are absolute instruction indices after
linking (the linker resolves labels into ``imm``).

Call instructions (``BL``/``BLR``) do *not* produce an edge to the
callee: the graph is intraprocedural with call-summary semantics — a
call's only successor is its fallthrough, and the dataflow analysis
(:mod:`repro.staticlint.liveness`) models the callee's effect as a
def/use summary.  ``RET`` and ``HALT`` end their blocks with no
successors; ``SVC`` is summarised like a call and falls through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instructions import BLOCK_TERMINATOR_OPS, Instr, Op
from repro.isa.program import Program

#: Ops whose resolved ``imm`` is a branch target inside the text.
_JUMP_TARGET_OPS = frozenset((Op.B, Op.BCC, Op.CBZ, Op.CBNZ))
#: Conditional terminators: they branch *or* fall through.
_CONDITIONAL_OPS = frozenset((Op.BCC, Op.CBZ, Op.CBNZ))


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start`` is inclusive, ``end`` exclusive (indices into the
    program's instruction list); ``successors`` holds the start indices
    of successor blocks in deterministic (target-then-fallthrough)
    order.
    """

    start: int
    end: int
    successors: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def terminator_index(self) -> int:
        return self.end - 1


@dataclass
class ControlFlowGraph:
    """Blocks keyed by start index, plus derived predecessor edges."""

    start: int
    end: int
    blocks: Dict[int, BasicBlock] = field(default_factory=dict)
    predecessors: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    @property
    def order(self) -> List[int]:
        """Block start indices in ascending text order."""
        return sorted(self.blocks)

    def block_of(self, index: int) -> BasicBlock:
        """The block containing instruction ``index``."""
        candidates = [s for s in self.blocks if s <= index]
        if candidates:
            block = self.blocks[max(candidates)]
            if block.start <= index < block.end:
                return block
        raise KeyError(f"instruction index {index} is outside the CFG range")

    def reachable_from(self, start: Optional[int] = None) -> set:
        """Block starts reachable from ``start`` (default: the CFG entry)."""
        if not self.blocks:
            return set()
        root = self.start if start is None else start
        if root not in self.blocks:
            root = self.block_of(root).start
        seen = {root}
        stack = [root]
        while stack:
            for succ in self.blocks[stack.pop()].successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen


def _successor_starts(instr: Instr, index: int, start: int, end: int) -> Tuple[int, ...]:
    """Successor start indices of the block ending at ``index``."""
    fallthrough = index + 1 if index + 1 < end else None
    op = instr.op
    if op is Op.B:
        target = instr.imm
        return (target,) if start <= target < end else ()
    if op in _CONDITIONAL_OPS:
        succs = []
        target = instr.imm
        if start <= target < end:
            succs.append(target)
        if fallthrough is not None and fallthrough not in succs:
            succs.append(fallthrough)
        return tuple(succs)
    if op in (Op.RET, Op.HALT):
        return ()
    # BL/BLR/SVC (call summaries), WFI and plain fallthrough all
    # continue at the next instruction.
    return (fallthrough,) if fallthrough is not None else ()


def build_cfg(
    instructions: Sequence[Instr], start: int = 0, end: Optional[int] = None
) -> ControlFlowGraph:
    """Build the CFG of ``instructions[start:end]``.

    Branch targets outside the range are dropped (the block simply has
    no edge for them), so the builder works both on whole programs and
    on single-function ranges.
    """
    if end is None:
        end = len(instructions)
    cfg = ControlFlowGraph(start=start, end=end)
    if start >= end:
        return cfg

    leaders = {start}
    for index in range(start, end):
        instr = instructions[index]
        if instr.op in _JUMP_TARGET_OPS and start <= instr.imm < end:
            leaders.add(instr.imm)
        if instr.op in BLOCK_TERMINATOR_OPS and index + 1 < end:
            leaders.add(index + 1)

    ordered = sorted(leaders)
    for position, block_start in enumerate(ordered):
        block_end = ordered[position + 1] if position + 1 < len(ordered) else end
        terminator = instructions[block_end - 1]
        successors = _successor_starts(terminator, block_end - 1, start, end)
        cfg.blocks[block_start] = BasicBlock(block_start, block_end, successors)

    preds: Dict[int, List[int]] = {block_start: [] for block_start in cfg.blocks}
    for block_start in sorted(cfg.blocks):
        for succ in cfg.blocks[block_start].successors:
            preds[succ].append(block_start)
    cfg.predecessors = {key: tuple(value) for key, value in preds.items()}
    return cfg


def build_program_cfg(program: Program) -> ControlFlowGraph:
    """CFG over a linked program's entire text."""
    return build_cfg(program.instructions)


def build_function_cfg(program: Program, function: str) -> ControlFlowGraph:
    """CFG restricted to one function's instruction range."""
    try:
        start, end = program.function_ranges[function]
    except KeyError:
        raise KeyError(
            f"program {program.name!r} has no function {function!r}"
        ) from None
    return build_cfg(program.instructions, start, min(end, len(program.instructions)))
