"""ACE-fraction estimation: liveness weighted by execution counts.

The bridge from dataflow to reliability: a register-file fault is
architecturally masked unless it lands in a *live* register, so the
probability a uniformly-timed fault in register ``r`` matters is the
execution-weighted fraction of dynamic instructions at which ``r`` is
live — its ACE fraction.  Averaging over the registers the fault model
draws from yields a predicted masking rate per target kind, directly
comparable to the measured ``masking_rate`` of an injection campaign.

Weights come from the functional profiler's per-index execution counts
(:class:`repro.profiling.functional.FunctionalProfile`); with no
profile every instruction weighs the same (the *static* estimate used
by selective hardening, which must rank variables before any run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.isa.program import Program
from repro.staticlint.cfg import build_program_cfg
from repro.staticlint.liveness import LivenessResult, analyze_liveness

#: Target kinds this analysis can predict (register-file kinds only;
#: PC/memory/cache faults need different models).
PREDICTABLE_KINDS = ("gpr", "fpr")


@dataclass
class ScenarioVulnerability:
    """Static vulnerability estimate for one scenario."""

    scenario_id: str
    app: str
    mode: str
    isa: str
    hardening: str
    total_weight: int
    gpr_ace: Dict[int, float] = field(default_factory=dict)
    fpr_ace: Dict[int, float] = field(default_factory=dict)

    def ace_of(self, kind: str) -> Dict[int, float]:
        if kind == "gpr":
            return self.gpr_ace
        if kind == "fpr":
            return self.fpr_ace
        raise KeyError(f"no ACE estimate for target kind {kind!r}")

    def predicted_ace(self, kind: str = "gpr") -> float:
        """Mean ACE fraction over the registers the fault model draws from."""
        fractions = self.ace_of(kind)
        if not fractions:
            return 0.0
        return sum(fractions.values()) / len(fractions)

    def predicted_masking(self, kind: str = "gpr") -> float:
        """Predicted fraction of injections with no architectural effect."""
        return 1.0 - self.predicted_ace(kind)

    def register_weights(self, kind: str = "gpr", floor: float = 0.02) -> Tuple[float, ...]:
        """Sampling weights per register index (floored so no register
        gets zero probability — dead registers still need a few samples
        to *confirm* masking)."""
        fractions = self.ace_of(kind)
        count = max(fractions) + 1 if fractions else 0
        return tuple(max(fractions.get(reg, 0.0), floor) for reg in range(count))


def register_ace_fractions(
    program: Program,
    liveness: Optional[LivenessResult] = None,
    weights: Optional[Mapping[int, int]] = None,
) -> Tuple[Dict[int, float], Dict[int, float], int]:
    """Per-register ACE fractions; returns (gpr, fpr, total_weight).

    ``weights`` maps instruction index to its dynamic execution count;
    ``None`` weighs every instruction equally (static estimate).
    """
    if liveness is None:
        liveness = analyze_liveness(program)
    arch = program.arch
    text_len = len(program.instructions)
    gpr_weight = [0] * arch.num_gpr
    fpr_weight = [0] * arch.num_fpr
    total = 0
    if weights is None:
        indexed = ((index, 1) for index in range(text_len))
    else:
        indexed = ((index, count) for index, count in sorted(weights.items()))
    for index, count in indexed:
        if not (0 <= index < text_len) or count <= 0:
            continue
        total += count
        mask = liveness.live_in[index]
        for reg in range(arch.num_gpr):
            if mask >> reg & 1:
                gpr_weight[reg] += count
        if arch.num_fpr:
            base = arch.num_gpr + 4
            for reg in range(arch.num_fpr):
                if mask >> (base + reg) & 1:
                    fpr_weight[reg] += count
    if not total:
        return {}, {}, 0
    gpr = {reg: gpr_weight[reg] / total for reg in range(arch.num_gpr)}
    fpr = {reg: fpr_weight[reg] / total for reg in range(arch.num_fpr)}
    return gpr, fpr, total


def analyze_program(
    program: Program,
    scenario_id: str,
    app: str,
    mode: str,
    isa: str,
    hardening: str,
    weights: Optional[Mapping[int, int]] = None,
) -> ScenarioVulnerability:
    """Full static analysis of one linked program."""
    liveness = analyze_liveness(program, build_program_cfg(program))
    gpr, fpr, total = register_ace_fractions(program, liveness, weights)
    return ScenarioVulnerability(
        scenario_id=scenario_id,
        app=app,
        mode=mode,
        isa=isa,
        hardening=hardening,
        total_weight=total,
        gpr_ace=gpr,
        fpr_ace=fpr,
    )


def analyze_scenario(scenario, profile=None) -> ScenarioVulnerability:
    """Analyze a campaign scenario, weighting by its golden-run profile.

    ``profile`` may be a :class:`FunctionalProfile` with per-index
    ``instruction_counts`` (reused when the caller already profiled);
    by default a fresh cache-less profiling run collects the counts.
    """
    from repro.hardening.schemes import hardening_label
    from repro.npb.suite import build_program

    program = build_program(scenario.app, scenario.mode, scenario.isa, scenario.hardening)
    if profile is None:
        from repro.profiling.functional import FunctionalProfiler

        profile = FunctionalProfiler(instruction_counts=True).run(scenario)
    weights = profile.instruction_counts or None
    return analyze_program(
        program,
        scenario_id=scenario.scenario_id,
        app=scenario.app,
        mode=scenario.mode,
        isa=scenario.isa,
        hardening=hardening_label(scenario.hardening),
        weights=weights,
    )


def variable_ranks(
    program: Program,
    liveness: Optional[LivenessResult] = None,
    weights: Optional[Mapping[int, int]] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-function variable vulnerability scores from the debug map.

    A variable homed in a register scores the execution-weighted live
    time of that register *within its function's range*; stack-homed
    variables score 0 (register-file faults cannot hit them directly).
    Scores are comparable within a function, which is how selective
    hardening consumes them.
    """
    if liveness is None:
        liveness = analyze_liveness(program)
    arch = program.arch
    fpr_base = arch.num_gpr + 4
    text_len = len(program.instructions)
    ranks: Dict[str, Dict[str, float]] = {}
    for function, homes in program.variable_homes.items():
        start, end = program.function_ranges.get(function, (0, 0))
        end = min(end, text_len)
        scores: Dict[str, float] = {}
        for variable, (kind, reg) in homes.items():
            if kind == "stack":
                scores[variable] = 0.0
                continue
            bit = reg if kind == "reg" else fpr_base + reg
            score = 0
            for index in range(start, end):
                if liveness.live_in[index] >> bit & 1:
                    score += 1 if weights is None else weights.get(index, 0)
            scores[variable] = float(score)
        ranks[function] = scores
    return ranks


def top_variables(
    ranks: Mapping[str, Mapping[str, float]], count: int
) -> Dict[str, Tuple[str, ...]]:
    """The ``count`` highest-scoring variables of each function.

    Ties break alphabetically so the selection is deterministic.
    """
    out: Dict[str, Tuple[str, ...]] = {}
    for function in sorted(ranks):
        scores = ranks[function]
        ordered = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        out[function] = tuple(name for name, _score in ordered[:count])
    return out
