"""Static vulnerability analysis: CFG + liveness/ACE over linked binaries.

The injection campaigns measure reliability by brute force; this
package *predicts* it by dataflow analysis.  A control-flow graph over
the linked program text (:mod:`repro.staticlint.cfg`), a backward
liveness fixpoint with interprocedural call summaries
(:mod:`repro.staticlint.liveness`) and execution-count weighting from
golden-run profiles (:mod:`repro.staticlint.ace`) yield a predicted
per-register ACE fraction and a predicted masking rate per scenario —
a prior over where faults matter, validated against measured campaign
outcomes by :mod:`repro.staticlint.validate` and consumed by
importance-weighted fault sampling and top-N selective hardening.
"""

from repro.staticlint.ace import (
    PREDICTABLE_KINDS,
    ScenarioVulnerability,
    analyze_program,
    analyze_scenario,
    register_ace_fractions,
    top_variables,
    variable_ranks,
)
from repro.staticlint.cfg import (
    BasicBlock,
    ControlFlowGraph,
    build_cfg,
    build_function_cfg,
    build_program_cfg,
)
from repro.staticlint.liveness import LivenessResult, analyze_liveness
from repro.staticlint.validate import (
    ValidationReport,
    ValidationRow,
    validate_database,
    validate_store,
)

__all__ = [
    "PREDICTABLE_KINDS",
    "ScenarioVulnerability",
    "analyze_program",
    "analyze_scenario",
    "register_ace_fractions",
    "top_variables",
    "variable_ranks",
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "build_function_cfg",
    "build_program_cfg",
    "LivenessResult",
    "analyze_liveness",
    "ValidationReport",
    "ValidationRow",
    "validate_database",
    "validate_store",
]
