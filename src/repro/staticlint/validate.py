"""Predicted-vs-measured validation of the static vulnerability model.

Given an existing campaign store (or saved results database), this
module recomputes the static ACE prediction for every register-file
scenario in it and correlates predicted masking with the masking rate
the injections actually measured.  Rank correlation (Spearman) is the
headline number: the model's job is to *order* scenarios and targets by
vulnerability — steering sampling and selective hardening — not to
predict absolute percentages.

No injections are re-run: measurements come straight from the store's
reports.  The prediction side does need basic-block weights, which come
from a fresh cache-less golden profiling run per scenario (seconds, not
the hours a campaign takes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.analysis.render import render_table
from repro.injection.fault import TARGET_FPR, TARGET_GPR
from repro.mining.correlation import grouped_spearman, pearson, spearman
from repro.orchestration.database import ResultsDatabase
from repro.staticlint.ace import PREDICTABLE_KINDS, analyze_scenario

#: Minimum combined weight of gpr/fpr targets for a scenario's
#: measurement to be attributable to the register-file model.
_MIN_PREDICTABLE_SHARE = 0.75


@dataclass
class ValidationRow:
    scenario_id: str
    app: str
    mode: str
    isa: str
    hardening: str
    faults: int
    predicted_masking_pct: float
    measured_masking_pct: float

    def as_record(self) -> dict:
        return {
            "scenario_id": self.scenario_id,
            "app": self.app,
            "mode": self.mode,
            "isa": self.isa,
            "hardening": self.hardening,
            "faults": self.faults,
            "predicted_masking_pct": round(self.predicted_masking_pct, 3),
            "measured_masking_pct": round(self.measured_masking_pct, 3),
        }


@dataclass
class ValidationReport:
    rows: List[ValidationRow] = field(default_factory=list)
    skipped: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def overall_spearman(self) -> float:
        xs = [row.predicted_masking_pct for row in self.rows]
        ys = [row.measured_masking_pct for row in self.rows]
        return spearman(xs, ys)

    @property
    def overall_pearson(self) -> float:
        xs = [row.predicted_masking_pct for row in self.rows]
        ys = [row.measured_masking_pct for row in self.rows]
        return pearson(xs, ys)

    def spearman_by(self, key: str) -> Dict[str, float]:
        records = [row.as_record() for row in self.rows]
        return grouped_spearman(
            records, key, "predicted_masking_pct", "measured_masking_pct"
        )

    def render(self) -> str:
        columns = [
            "scenario_id",
            "isa",
            "mode",
            "hardening",
            "faults",
            "predicted_masking_pct",
            "measured_masking_pct",
        ]
        lines = [
            render_table(
                [row.as_record() for row in self.rows],
                columns,
                title="Static vulnerability model: predicted vs measured masking",
            )
        ]
        lines.append("")
        lines.append(f"overall Spearman: {self.overall_spearman:+.3f}   "
                     f"Pearson: {self.overall_pearson:+.3f}   n={len(self.rows)}")
        for axis in ("isa", "mode"):
            per_group = self.spearman_by(axis)
            if per_group:
                parts = ", ".join(f"{name}: {value:+.3f}" for name, value in per_group.items())
                lines.append(f"Spearman by {axis}: {parts}")
        if self.skipped:
            lines.append("")
            lines.append("skipped scenarios (not register-file campaigns):")
            for scenario_id, reason in self.skipped:
                lines.append(f"  {scenario_id}: {reason}")
        return "\n".join(lines)


def _predictable_mix(report) -> Optional[Dict[str, float]]:
    """The report's target mix restricted to kinds the model covers.

    Returns normalised shares over gpr/fpr, or ``None`` when too little
    of the campaign targeted the register files for the measured
    masking to be attributable to them.
    """
    mix = report.scenario.target_mix
    shares: Dict[str, float]
    if mix is None:
        # the default campaign targets the GPR file (plus a small PC
        # share in some configurations) — treat as a GPR campaign
        shares = {TARGET_GPR: 1.0}
    else:
        shares = {kind: float(weight) for kind, weight in mix}
    total = sum(shares.values()) or 1.0
    covered = {
        kind: weight / total
        for kind, weight in shares.items()
        if kind in PREDICTABLE_KINDS and weight > 0
    }
    covered_share = sum(covered.values())
    if covered_share < _MIN_PREDICTABLE_SHARE:
        return None
    return {kind: weight / covered_share for kind, weight in covered.items()}


def validate_database(
    database: ResultsDatabase, min_faults: int = 1
) -> ValidationReport:
    """Correlate static predictions with every report in a database."""
    out = ValidationReport()
    for scenario_id in sorted(database.reports):
        report = database.reports[scenario_id]
        mix = _predictable_mix(report)
        if mix is None:
            out.skipped.append((scenario_id, "target mix is not register-file dominated"))
            continue
        if report.faults_injected < min_faults:
            out.skipped.append((scenario_id, "no injected faults"))
            continue
        if TARGET_FPR in mix and report.scenario.isa == "armv7":
            out.skipped.append((scenario_id, "no FP register file on armv7"))
            continue
        vulnerability = analyze_scenario(report.scenario)
        predicted = sum(
            share * vulnerability.predicted_masking(kind) for kind, share in mix.items()
        )
        out.rows.append(
            ValidationRow(
                scenario_id=scenario_id,
                app=report.scenario.app,
                mode=report.scenario.mode,
                isa=report.scenario.isa,
                hardening=report.scenario.hardening_label,
                faults=report.faults_injected,
                predicted_masking_pct=100.0 * predicted,
                measured_masking_pct=report.masking_rate_pct,
            )
        )
    return out


def load_results(path: Union[str, Path]) -> ResultsDatabase:
    """Load measurements from a campaign store directory or a JSON file."""
    path = Path(path)
    if path.is_dir():
        from repro.service.results import ResultsService

        return ResultsService(path).database()
    return ResultsDatabase.load(path)


def validate_store(path: Union[str, Path]) -> ValidationReport:
    """End-to-end: load a store and produce the validation report."""
    return validate_database(load_results(path))
