"""Backward liveness dataflow over a program CFG.

The analysis computes, for every instruction index, the set of live
architectural storage locations *at the moment the instruction is about
to execute* (its ``live_in``).  A register is live when some path to a
use exists before the next definition — the ACE criterion for register
file bits: a fault flipping a dead register vanishes; a fault in a live
one can propagate.

Locations are packed into one integer bitmask per program point:
bits ``[0, num_gpr)`` are the integer registers, the next four bits are
the NZCV flags, and bits from ``num_gpr + 4`` are the FP registers.

Calls are summarised rather than followed (the CFG is intraprocedural,
see :mod:`repro.staticlint.cfg`): a call *defines* the ABI scratch
registers, the return/link registers and all flags, and *uses* the
argument registers the callee actually consumes.  The consumed-argument
sets are themselves computed by this module with a small interprocedural
fixpoint: each function's summary starts empty, global liveness runs,
the live-in at each function entry (restricted to ABI-visible inputs:
argument registers, ``sp``, ``gp``) becomes the new summary, and the
process repeats until the summaries stabilise.  Indirect calls
(``BLR``) fall back to the conservative "uses every argument register"
summary.  Callee-saved registers are transparent through calls: the
callee restores them, so a caller's value is live across a call iff it
is live after it.

``RET`` ends its block; the boundary condition injects the ABI
return-value registers, ``sp`` and the callee-saved set as live-out
(the caller may consume any of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.isa.arch import ArchSpec
from repro.isa.instructions import Instr, Op
from repro.isa.program import Program
from repro.isa.roles import (
    ALL_FLAGS,
    FLAG_C,
    FLAG_N,
    FLAG_V,
    FLAG_Z,
    flag_defs,
    flag_uses,
    fpr_defs,
    fpr_uses,
    gpr_defs,
    gpr_uses,
    roles_of,
)
from repro.staticlint.cfg import ControlFlowGraph, build_program_cfg

_FLAG_ORDER: Tuple[str, ...] = (FLAG_N, FLAG_Z, FLAG_C, FLAG_V)
_MAX_SUMMARY_ROUNDS = 12


@dataclass
class LivenessResult:
    """Per-instruction live-in masks plus the layout needed to read them."""

    arch: ArchSpec
    live_in: List[int]
    cfg: ControlFlowGraph

    @property
    def _flag_base(self) -> int:
        return self.arch.num_gpr

    @property
    def _fpr_base(self) -> int:
        return self.arch.num_gpr + len(_FLAG_ORDER)

    def gpr_live(self, index: int, reg: int) -> bool:
        """Is integer register ``reg`` live when instruction ``index`` executes?"""
        return bool(self.live_in[index] >> reg & 1)

    def fpr_live(self, index: int, reg: int) -> bool:
        return bool(self.live_in[index] >> (self._fpr_base + reg) & 1)

    def flag_live(self, index: int, flag: str) -> bool:
        return bool(self.live_in[index] >> (self._flag_base + _FLAG_ORDER.index(flag)) & 1)

    def live_gpr_count(self, index: int) -> int:
        mask = self.live_in[index] & ((1 << self.arch.num_gpr) - 1)
        return mask.bit_count()


class _MaskBuilder:
    """Translates role sets into bitmask positions for one architecture."""

    def __init__(self, arch: ArchSpec):
        self.arch = arch
        self.flag_base = arch.num_gpr
        self.fpr_base = arch.num_gpr + len(_FLAG_ORDER)

    def gpr(self, regs) -> int:
        mask = 0
        for reg in regs:
            mask |= 1 << reg
        return mask

    def flags(self, flags: FrozenSet[str]) -> int:
        mask = 0
        for position, flag in enumerate(_FLAG_ORDER):
            if flag in flags:
                mask |= 1 << (self.flag_base + position)
        return mask

    def fpr(self, regs) -> int:
        mask = 0
        for reg in regs:
            mask |= 1 << (self.fpr_base + reg)
        return mask


def _call_clobber_mask(masks: _MaskBuilder) -> int:
    """Locations a call may redefine: scratch, return, link, all flags."""
    abi = masks.arch.abi
    clobber = masks.gpr(abi.scratch_regs) | masks.gpr((abi.ret_reg, abi.lr))
    clobber |= masks.flags(ALL_FLAGS)
    if masks.arch.num_fpr:
        clobber |= masks.fpr(abi.fp_scratch) | masks.fpr((abi.fp_ret_reg,))
    return clobber


def _conservative_call_use_mask(masks: _MaskBuilder) -> int:
    """Worst-case inputs of an unknown callee: every argument register."""
    abi = masks.arch.abi
    use = masks.gpr(abi.arg_regs) | masks.gpr((abi.sp, abi.gp))
    if masks.arch.num_fpr:
        use |= masks.fpr(abi.fp_arg_regs)
    return use


def _entry_visible_mask(masks: _MaskBuilder) -> int:
    """ABI-visible function inputs a call summary may propagate."""
    return _conservative_call_use_mask(masks)


def _return_boundary_mask(masks: _MaskBuilder) -> int:
    """Live-out at a RET: what the caller's continuation may consume."""
    abi = masks.arch.abi
    out = masks.gpr(abi.callee_saved) | masks.gpr((abi.ret_reg, abi.sp, abi.gp))
    if masks.arch.num_fpr:
        out |= masks.fpr(abi.fp_callee_saved) | masks.fpr((abi.fp_ret_reg,))
    return out


def _instruction_masks(
    program: Program,
    masks: _MaskBuilder,
    call_summaries: Dict[int, int],
) -> Tuple[List[int], List[int]]:
    """Per-instruction (use, def) bitmasks with call/return summaries."""
    abi = program.arch.abi
    use_masks: List[int] = []
    def_masks: List[int] = []
    conservative_use = _conservative_call_use_mask(masks)
    call_clobber = _call_clobber_mask(masks)
    for instr in program.instructions:
        use = masks.gpr(gpr_uses(instr, abi)) | masks.flags(flag_uses(instr))
        define = masks.gpr(gpr_defs(instr, abi)) | masks.flags(flag_defs(instr))
        if program.arch.num_fpr:
            use |= masks.fpr(fpr_uses(instr, abi))
            define |= masks.fpr(fpr_defs(instr, abi))
        roles = roles_of(instr.op)
        if roles.is_call:
            define |= call_clobber
            if instr.op is Op.BL and instr.imm in call_summaries:
                use |= call_summaries[instr.imm]
            else:
                use |= conservative_use
        use_masks.append(use)
        def_masks.append(define)
    return use_masks, def_masks


def _solve(
    cfg: ControlFlowGraph,
    use_masks: List[int],
    def_masks: List[int],
    instructions: List[Instr],
    return_boundary: int,
) -> List[int]:
    """Backward fixpoint; returns live-in per instruction index."""
    live_in_block: Dict[int, int] = {start: 0 for start in cfg.blocks}
    changed = True
    while changed:
        changed = False
        for start in sorted(cfg.blocks, reverse=True):
            block = cfg.blocks[start]
            live = 0
            for succ in block.successors:
                live |= live_in_block[succ]
            terminator = instructions[block.end - 1]
            if terminator.op is Op.RET:
                live |= return_boundary
            for index in range(block.end - 1, block.start - 1, -1):
                live = (live & ~def_masks[index]) | use_masks[index]
            if live != live_in_block[start]:
                live_in_block[start] = live
                changed = True

    live_in = [0] * cfg.end
    for start, block in cfg.blocks.items():
        live = 0
        for succ in block.successors:
            live |= live_in_block[succ]
        terminator = instructions[block.end - 1]
        if terminator.op is Op.RET:
            live |= return_boundary
        for index in range(block.end - 1, block.start - 1, -1):
            live = (live & ~def_masks[index]) | use_masks[index]
            live_in[index] = live
    return live_in


def analyze_liveness(
    program: Program, cfg: Optional[ControlFlowGraph] = None
) -> LivenessResult:
    """Interprocedural-summary liveness over a linked program.

    Runs the global backward fixpoint repeatedly, refining per-function
    call summaries from the live-in observed at each function entry,
    until the summaries stop changing.
    """
    if cfg is None:
        cfg = build_program_cfg(program)
    masks = _MaskBuilder(program.arch)
    return_boundary = _return_boundary_mask(masks)
    entry_visible = _entry_visible_mask(masks)

    entries = {
        start: name
        for name, (start, _end) in program.function_ranges.items()
        if start < len(program.instructions)
    }
    call_summaries: Dict[int, int] = {start: 0 for start in entries}

    instructions = list(program.instructions)
    live_in: List[int] = [0] * len(instructions)
    for _round in range(_MAX_SUMMARY_ROUNDS):
        use_masks, def_masks = _instruction_masks(program, masks, call_summaries)
        live_in = _solve(cfg, use_masks, def_masks, instructions, return_boundary)
        updated = {
            start: live_in[start] & entry_visible if start < len(live_in) else 0
            for start in entries
        }
        if updated == call_summaries:
            break
        call_summaries = updated
    return LivenessResult(arch=program.arch, live_in=live_in, cfg=cfg)
