"""Tests of the profiling layer: gem5-style statistics and the OVPsim-like profiler."""

import pytest

from repro.cpu.statistics import CoreStats, aggregate_stats, load_balance
from repro.injection.golden import GoldenRunner
from repro.npb.suite import Scenario
from repro.profiling.functional import FunctionalProfiler
from repro.profiling.stats_collector import collect_microarch_stats


class TestCoreStats:
    def test_derived_metrics(self):
        stats = CoreStats(instructions=1000, branches=200, branches_taken=150, loads=100, stores=50,
                          float_ops=30, calls=10)
        assert stats.memory_instructions == 150
        assert stats.memory_instruction_pct == pytest.approx(15.0)
        assert stats.branch_pct == pytest.approx(20.0)
        assert stats.read_write_ratio == pytest.approx(2.0)
        assert stats.branch_taken_ratio == pytest.approx(0.75)
        assert stats.float_pct == pytest.approx(3.0)

    def test_zero_division_guards(self):
        stats = CoreStats()
        assert stats.memory_instruction_pct == 0.0
        assert stats.branch_pct == 0.0
        assert stats.branch_taken_ratio == 0.0

    def test_merge_and_aggregate(self):
        a = CoreStats(instructions=10, loads=1)
        b = CoreStats(instructions=20, loads=2)
        total = aggregate_stats([a, b])
        assert total.instructions == 30 and total.loads == 3
        a.merge(b)
        assert a.instructions == 30

    def test_load_balance(self):
        balanced = [CoreStats(instructions=100), CoreStats(instructions=102)]
        skewed = [CoreStats(instructions=100), CoreStats(instructions=300)]
        assert load_balance(balanced) < load_balance(skewed)
        assert load_balance([CoreStats(instructions=100)]) == 0.0

    def test_as_dict_prefix(self):
        d = CoreStats(instructions=5).as_dict("core0_")
        assert d["core0_instructions"] == 5


class TestStatsCollector:
    @pytest.fixture(scope="class")
    def golden(self):
        return GoldenRunner(model_caches=True).run(Scenario("IS", "omp", 2, "armv8"))

    def test_families_of_parameters_present(self, golden):
        stats = golden.stats
        assert stats["total_instructions"] > 0
        assert any(key.startswith("core0_") for key in stats)
        assert any(key.startswith("core1_") for key in stats)
        assert any(key.startswith("syscall_") for key in stats)
        assert any(key.startswith("proc0_mem_") for key in stats)
        assert any(key.startswith("l2_") or "l1d" in key for key in stats)
        assert stats["program_instructions"] > 0
        assert stats["num_cores"] == 2

    def test_parameter_count_is_substantial(self, golden):
        # the paper aggregates hundreds of microarchitectural parameters
        assert len(golden.stats) > 100

    def test_fb_index_raw_consistency(self, golden):
        stats = golden.stats
        assert stats["fb_index_raw"] == pytest.approx(stats["branches_total"] * stats["function_calls_total"])


class TestFunctionalProfiler:
    @pytest.fixture(scope="class")
    def profile(self):
        return FunctionalProfiler().run(Scenario("IS", "omp", 2, "armv8"))

    def test_function_attribution_covers_run(self, profile):
        assert sum(profile.function_instructions.values()) == profile.total_instructions
        assert "kernel_chunk" in profile.function_instructions
        assert profile.function_instructions["kernel_chunk"] > 0

    def test_call_counts(self, profile):
        assert profile.function_calls.get("kernel_chunk", 0) >= 2  # one per worker chunk
        assert profile.function_calls.get("main", 0) == 1

    def test_vulnerability_window_is_bounded(self, profile):
        window = profile.vulnerability_window(api_prefixes=("omp_", "mpi_"))
        # Section 4.2.2: the parallelisation runtime occupies a limited share
        assert 0.0 < window < 0.5

    def test_function_share_sums_to_one(self, profile):
        share = profile.function_share()
        assert sum(share.values()) == pytest.approx(1.0)

    def test_line_coverage_recorded(self, profile):
        assert profile.line_coverage
        assert any(len(lines) > 1 for lines in profile.line_coverage.values())

    def test_top_functions(self, profile):
        top = profile.top_functions(3)
        assert len(top) == 3
        assert top[0][1] >= top[1][1] >= top[2][1]

    def test_instruction_counts_off_by_default(self, profile):
        assert profile.instruction_counts == {}


class TestInstructionCounts:
    def test_counts_cover_the_whole_run(self):
        profile = FunctionalProfiler(instruction_counts=True).run(
            Scenario("IS", "serial", 1, "armv8")
        )
        assert profile.instruction_counts
        assert sum(profile.instruction_counts.values()) == profile.total_instructions
        assert all(count > 0 for count in profile.instruction_counts.values())
        assert min(profile.instruction_counts) >= 0
