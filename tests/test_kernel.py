"""Kernel tests: loader, scheduler, system calls, threads, messages, faults.

Most tests compile tiny MiniC programs and run them on a full system,
since the kernel is only reachable through the SVC interface.
"""

import pytest

from repro.compiler import ast
from repro.compiler.ast import ExprStmt, FuncAddr, Function, GlobalVar, If, Module, Return, assign, call, var
from repro.compiler.linker import link
from repro.errors import DeadlockError, WatchdogTimeout
from repro.isa.arch import ARMV7, ARMV8
from repro.kernel.loader import ProgramLoader, TEXT_BASE, make_context
from repro.kernel.scheduler import RoundRobinScheduler
from repro.kernel.threads import Thread, ThreadState
from repro.soc.multicore import build_system


def build(main_body, locals_=None, functions=(), globals_=(), arch=ARMV8, name="prog"):
    main = Function(
        name="main",
        params=[("rank", ast.INT), ("nranks", ast.INT), ("nthreads", ast.INT)],
        locals=locals_ or [],
        body=main_body,
        return_type=ast.INT,
    )
    module = Module(name, list(functions) + [main], list(globals_))
    return link([module], arch, name=name)


def run_program(program, cores=1, isa=None, max_instructions=200_000, nthreads_hint=1):
    system = build_system(program.arch.name, cores=cores)
    system.load_process(program, name="t", nthreads_hint=nthreads_hint)
    system.run(max_instructions=max_instructions)
    return system


class TestLoader:
    def test_address_space_layout(self):
        program = build([Return(ast.const(0))])
        loader = ProgramLoader(ARMV8)
        space, layout = loader.build_address_space(program, "p")
        names = [segment.name for segment in space.segments]
        assert names == ["text", "data", "heap"]
        assert layout["heap_limit"] > layout["heap_base"]
        text = space.segment_by_name("text")
        assert not text.perms.write and text.perms.execute

    def test_arch_mismatch_rejected(self):
        program = build([Return(ast.const(0))], arch=ARMV7)
        loader = ProgramLoader(ARMV8)
        with pytest.raises(Exception):
            loader.build_address_space(program, "p")

    def test_make_context_sets_abi_registers(self):
        ctx = make_context(ARMV8, pc=0x10000, sp=0x9000, gp=0x100000, args=(3, 4))
        assert ctx.pc == 0x10000
        assert ctx.gprs[ARMV8.abi.sp] == 0x9000
        assert ctx.gprs[ARMV8.abi.gp] == 0x100000
        assert ctx.gprs[ARMV8.abi.arg_regs[0]] == 3
        assert ctx.gprs[ARMV8.abi.arg_regs[1]] == 4

    def test_stack_guard_gap_between_threads(self):
        program = build([Return(ast.const(0))])
        system = build_system("armv8", cores=1)
        process = system.kernel.launch(program, name="p")
        thread2 = system.kernel._spawn_thread(process, TEXT_BASE, 0)
        stacks = sorted(
            (s for s in process.address_space.segments if s.name.startswith("stack")),
            key=lambda s: s.base,
        )
        assert len(stacks) == 2
        # an unmapped guard gap separates consecutive stacks
        assert stacks[1].base > stacks[0].end


class TestScheduler:
    def _thread(self):
        return Thread(tid=1, process=type("P", (), {"is_live": lambda self: True})())

    def test_fifo_order(self):
        scheduler = RoundRobinScheduler()
        t1, t2 = self._thread(), self._thread()
        scheduler.add(t1)
        scheduler.add(t2)
        assert scheduler.next_ready() is t1
        assert scheduler.next_ready() is t2
        assert scheduler.next_ready() is None

    def test_skips_exited_threads(self):
        scheduler = RoundRobinScheduler()
        t1 = self._thread()
        scheduler.add(t1)
        t1.state = ThreadState.EXITED
        assert scheduler.next_ready() is None

    def test_preemption_requires_ready_thread(self):
        scheduler = RoundRobinScheduler(quantum=100)
        t1 = self._thread()
        t1.state = ThreadState.RUNNING
        t1.slice_used = 1000
        assert not scheduler.should_preempt(t1)
        scheduler.add(self._thread())
        assert scheduler.should_preempt(t1)


class TestBasicSyscalls:
    @pytest.mark.parametrize("arch", [ARMV7, ARMV8])
    def test_exit_code_from_main_return(self, arch):
        program = build([Return(ast.const(7))], arch=arch)
        system = run_program(program)
        process = system.kernel.processes[0]
        assert process.state.value == "exited"
        assert process.exit_code == 7

    def test_print_int_and_char(self):
        program = build([
            ExprStmt(call("print_int", ast.const(-42), type=ast.VOID)),
            ExprStmt(call("print_char", ast.const(65), type=ast.VOID)),
            Return(ast.const(0)),
        ])
        system = run_program(program)
        assert system.combined_output() == "-42\nA"

    def test_identity_syscalls(self):
        program = build([
            ExprStmt(call("print_int", call("get_rank"), type=ast.VOID)),
            ExprStmt(call("print_int", call("get_nranks"), type=ast.VOID)),
            ExprStmt(call("print_int", call("get_ncores"), type=ast.VOID)),
            ExprStmt(call("print_int", call("get_tid"), type=ast.VOID)),
            Return(ast.const(0)),
        ])
        system = run_program(program, cores=2)
        assert system.combined_output().split() == ["0", "1", "2", "1"]

    def test_sbrk_allocates_monotonically(self):
        program = build(
            [
                assign("a", call("sbrk", ast.const(64))),
                assign("b", call("sbrk", ast.const(64))),
                ExprStmt(call("print_int", ast.sub(var("b"), var("a")), type=ast.VOID)),
                Return(ast.const(0)),
            ],
            locals_=[("a", ast.INT), ("b", ast.INT)],
        )
        system = run_program(program)
        assert system.combined_output().strip() == "64"

    def test_abort_kills_process(self):
        program = build([ExprStmt(call("abort", type=ast.VOID)), Return(ast.const(0))])
        system = run_program(program)
        process = system.kernel.processes[0]
        assert process.state.value == "killed"
        assert process.fault_kind == "abort"

    def test_unknown_syscall_returns_error(self):
        # an invalid SVC number (e.g. from a corrupted immediate) must not
        # crash the kernel; it returns an error code like ENOSYS
        from repro.kernel.syscalls import SyscallError
        program = build([Return(ast.const(0))])
        system = build_system("armv8", cores=1)
        system.load_process(program, name="t")
        system.run(max_instructions=100_000, stop_at_instruction=3)
        core = system.cores[0]
        assert core.thread is not None
        system.kernel.handle_syscall(core, 999)
        assert core.regs.read(core.arch.abi.ret_reg) == SyscallError.INVALID


class TestSegfaultDelivery:
    def test_wild_store_is_killed_as_segfault(self):
        program = build([
            ast.StoreDeref(ast.const(0x0F00_0000), ast.const(1)),
            Return(ast.const(0)),
        ])
        system = run_program(program)
        process = system.kernel.processes[0]
        assert process.state.value == "killed"
        assert process.fault_kind == "segfault"
        assert process.exit_code == 139

    def test_write_to_text_segment_is_killed(self):
        program = build([
            ast.StoreDeref(ast.const(TEXT_BASE), ast.const(1)),
            Return(ast.const(0)),
        ])
        system = run_program(program)
        assert system.kernel.processes[0].fault_kind == "segfault"


class TestThreadsAndSync:
    def _worker(self):
        return Function(
            name="worker",
            params=[("arg", ast.INT)],
            body=[
                ast.store("results", var("arg"), ast.mul(var("arg"), ast.const(10))),
                Return(var("arg")),
            ],
            return_type=ast.INT,
        )

    def test_thread_create_join(self):
        program = build(
            [
                assign("tid1", call("thread_create", FuncAddr("worker"), ast.const(1))),
                assign("tid2", call("thread_create", FuncAddr("worker"), ast.const(2))),
                assign("r1", call("thread_join", var("tid1"))),
                assign("r2", call("thread_join", var("tid2"))),
                ExprStmt(call("print_int", ast.add(var("r1"), var("r2")), type=ast.VOID)),
                ExprStmt(call("print_int", ast.load("results", ast.const(1)), type=ast.VOID)),
                ExprStmt(call("print_int", ast.load("results", ast.const(2)), type=ast.VOID)),
                Return(ast.const(0)),
            ],
            locals_=[("tid1", ast.INT), ("tid2", ast.INT), ("r1", ast.INT), ("r2", ast.INT)],
            functions=[self._worker()],
            globals_=[GlobalVar("results", ast.INT, 8)],
            arch=ARMV8,
        )
        system = run_program(program, cores=2)
        assert system.combined_output().split() == ["3", "10", "20"]

    def test_threads_multiplex_on_single_core(self):
        # more threads than cores: the round-robin scheduler must still finish
        program = build(
            [
                assign("tid1", call("thread_create", FuncAddr("worker"), ast.const(1))),
                assign("tid2", call("thread_create", FuncAddr("worker"), ast.const(2))),
                ExprStmt(call("thread_join", var("tid1"))),
                ExprStmt(call("thread_join", var("tid2"))),
                Return(ast.const(0)),
            ],
            locals_=[("tid1", ast.INT), ("tid2", ast.INT)],
            functions=[self._worker()],
            globals_=[GlobalVar("results", ast.INT, 8)],
        )
        system = run_program(program, cores=1)
        assert system.kernel.processes[0].state.value == "exited"

    def test_semaphores_block_and_wake(self):
        poster = Function(
            name="poster",
            params=[("arg", ast.INT)],
            body=[ExprStmt(call("sem_post", ast.const(9), type=ast.VOID)), Return(ast.const(0))],
            return_type=ast.INT,
        )
        program = build(
            [
                assign("tid", call("thread_create", FuncAddr("poster"), ast.const(0))),
                ExprStmt(call("sem_wait", ast.const(9), type=ast.VOID)),
                ExprStmt(call("thread_join", var("tid"))),
                ExprStmt(call("print_int", ast.const(1), type=ast.VOID)),
                Return(ast.const(0)),
            ],
            locals_=[("tid", ast.INT)],
            functions=[poster],
        )
        system = run_program(program, cores=2)
        assert system.combined_output().strip() == "1"

    def test_mutex_protects_critical_section(self):
        incrementer = Function(
            name="incr",
            params=[("arg", ast.INT)],
            locals=[("i", ast.INT)],
            body=[
                ast.for_range("i", ast.const(0), ast.const(50), [
                    ExprStmt(call("mutex_lock", ast.const(1), type=ast.VOID)),
                    ast.store("counter", ast.const(0), ast.add(ast.load("counter", ast.const(0)), ast.const(1))),
                    ExprStmt(call("mutex_unlock", ast.const(1), type=ast.VOID)),
                ]),
                Return(ast.const(0)),
            ],
            return_type=ast.INT,
        )
        program = build(
            [
                assign("t1", call("thread_create", FuncAddr("incr"), ast.const(0))),
                assign("t2", call("thread_create", FuncAddr("incr"), ast.const(1))),
                ExprStmt(call("thread_join", var("t1"))),
                ExprStmt(call("thread_join", var("t2"))),
                ExprStmt(call("print_int", ast.load("counter", ast.const(0)), type=ast.VOID)),
                Return(ast.const(0)),
            ],
            locals_=[("t1", ast.INT), ("t2", ast.INT)],
            functions=[incrementer],
            globals_=[GlobalVar("counter", ast.INT, 1)],
        )
        system = run_program(program, cores=2, max_instructions=500_000)
        assert system.combined_output().strip() == "100"

    def test_deadlock_detection(self):
        program = build([ExprStmt(call("sem_wait", ast.const(3), type=ast.VOID)), Return(ast.const(0))])
        system = build_system("armv8", cores=1)
        system.load_process(program, name="d")
        with pytest.raises(DeadlockError):
            system.run(max_instructions=100_000)

    def test_watchdog_detection(self):
        program = build([ast.While(ast.const(1), [assign("x", ast.add(var("x"), ast.const(1)))]), Return(ast.const(0))],
                        locals_=[("x", ast.INT)])
        system = build_system("armv8", cores=1)
        system.load_process(program, name="w")
        with pytest.raises(WatchdogTimeout):
            system.run(max_instructions=5_000)


class TestMessagePassing:
    def _mpi_program(self, arch=ARMV8):
        from repro.runtime import runtime_modules
        main = Function(
            name="main",
            params=[("rank", ast.INT), ("nranks", ast.INT)],
            locals=[("value", ast.INT)],
            body=[
                If(
                    ast.eq(var("rank"), ast.const(0)),
                    [
                        ast.store("buf", ast.const(0), ast.const(1234)),
                        ExprStmt(call("mpi_send_ints", ast.const(1), ast.GlobalAddr("buf"), ast.const(1), ast.const(5))),
                    ],
                    [
                        ExprStmt(call("mpi_recv_ints", ast.const(0), ast.GlobalAddr("buf"), ast.const(1), ast.const(5))),
                        ExprStmt(call("print_int", ast.load("buf", ast.const(0)), type=ast.VOID)),
                    ],
                ),
                ExprStmt(call("mpi_barrier")),
                Return(ast.const(0)),
            ],
            return_type=ast.INT,
        )
        module = Module("msg", [main], [GlobalVar("buf", ast.INT, 4)])
        return link([module] + runtime_modules(arch, "mpi"), arch, name="msg")

    @pytest.mark.parametrize("arch", [ARMV7, ARMV8])
    def test_send_recv_across_ranks(self, arch):
        program = self._mpi_program(arch)
        system = build_system(arch.name, cores=2)
        system.load_mpi_job(program, nranks=2, name="msg")
        system.run(max_instructions=500_000)
        assert system.combined_output().strip() == "1234"
        assert all(p.state.value == "exited" for p in system.kernel.processes)

    def test_mpi_ranks_have_private_memory(self):
        # each rank writes its own copy of the same global; values must not leak
        from repro.runtime import runtime_modules
        main = Function(
            name="main",
            params=[("rank", ast.INT), ("nranks", ast.INT)],
            body=[
                ast.store("buf", ast.const(0), ast.add(var("rank"), ast.const(100))),
                ExprStmt(call("mpi_barrier")),
                ExprStmt(call("print_int", ast.load("buf", ast.const(0)), type=ast.VOID)),
                Return(ast.const(0)),
            ],
            return_type=ast.INT,
        )
        module = Module("priv", [main], [GlobalVar("buf", ast.INT, 1)])
        program = link([module] + runtime_modules(ARMV8, "mpi"), ARMV8, name="priv")
        system = build_system("armv8", cores=2)
        system.load_mpi_job(program, nranks=2, name="priv")
        system.run(max_instructions=500_000)
        assert sorted(system.combined_output().split()) == ["100", "101"]

    def test_send_to_dead_rank_reports_error(self):
        from repro.kernel.syscalls import SyscallError
        from repro.runtime import runtime_modules
        main = Function(
            name="main",
            params=[("rank", ast.INT), ("nranks", ast.INT)],
            locals=[("status", ast.INT)],
            body=[
                assign("status", call("msg_send", ast.const(7), ast.GlobalAddr("buf"), ast.const(4), ast.const(1))),
                ExprStmt(call("print_int", ast.eq(var("status"), ast.const(int(SyscallError.INVALID))), type=ast.VOID)),
                Return(ast.const(0)),
            ],
            return_type=ast.INT,
        )
        module = Module("dead", [main], [GlobalVar("buf", ast.INT, 1)])
        program = link([module] + runtime_modules(ARMV8, "mpi"), ARMV8, name="dead")
        system = build_system("armv8", cores=1)
        system.load_mpi_job(program, nranks=1, name="dead")
        system.run(max_instructions=100_000)
        assert system.combined_output().strip() == "1"
