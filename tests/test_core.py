"""Bare-metal tests of the CPU core: each instruction class is exercised
by running small hand-assembled programs on a core without a kernel."""

import pytest

from repro.cpu.core import Core
from repro.cpu.fpu import bits_to_double, double_to_bits
from repro.errors import AlignmentFault, InstructionFault, SimulatorError
from repro.isa.arch import ARMV7, ARMV8
from repro.isa.instructions import Cond, Instr, Op
from repro.memory.main_memory import AddressSpace


def bare_core(arch=ARMV8, mem_size=0x1000):
    core = Core(0, arch, caches=None, model_caches=False)
    space = AddressSpace("bare")
    space.map("data", 0x1000, mem_size)
    core.mem = space
    core.text_base = 0
    core.pc = 0
    return core


def run(core, instrs, max_steps=1000):
    core.text = list(instrs) + [Instr(Op.HALT)]
    return core.run(max_steps)


class TestIntegerArithmetic:
    def test_add_sub_mul(self):
        core = bare_core()
        run(core, [
            Instr(Op.MOVI, rd=1, imm=7),
            Instr(Op.MOVI, rd=2, imm=5),
            Instr(Op.ADD, rd=3, rn=1, rm=2),
            Instr(Op.SUB, rd=4, rn=1, rm=2),
            Instr(Op.MUL, rd=5, rn=1, rm=2),
        ])
        assert core.regs.read(3) == 12
        assert core.regs.read(4) == 2
        assert core.regs.read(5) == 35

    def test_wrap_around_masking(self):
        core = bare_core(ARMV7)
        run(core, [
            Instr(Op.MOVI, rd=1, imm=0xFFFFFFFF),
            Instr(Op.ADDI, rd=2, rn=1, imm=2),
        ])
        assert core.regs.read(2) == 1

    def test_logic_and_shifts(self):
        core = bare_core()
        run(core, [
            Instr(Op.MOVI, rd=1, imm=0b1100),
            Instr(Op.MOVI, rd=2, imm=0b1010),
            Instr(Op.AND, rd=3, rn=1, rm=2),
            Instr(Op.ORR, rd=4, rn=1, rm=2),
            Instr(Op.EOR, rd=5, rn=1, rm=2),
            Instr(Op.BIC, rd=6, rn=1, rm=2),
            Instr(Op.LSLI, rd=7, rn=1, imm=2),
            Instr(Op.LSRI, rd=8, rn=1, imm=2),
            Instr(Op.MVN, rd=9, rn=1),
        ])
        assert core.regs.read(3) == 0b1000
        assert core.regs.read(4) == 0b1110
        assert core.regs.read(5) == 0b0110
        assert core.regs.read(6) == 0b0100
        assert core.regs.read(7) == 0b110000
        assert core.regs.read(8) == 0b11
        assert core.regs.read(9) == (~0b1100) & ARMV8.word_mask

    def test_division_and_modulo_building_blocks(self):
        core = bare_core()
        run(core, [
            Instr(Op.MOVI, rd=1, imm=17),
            Instr(Op.MOVI, rd=2, imm=5),
            Instr(Op.SDIV, rd=3, rn=1, rm=2),
            Instr(Op.UDIV, rd=4, rn=1, rm=2),
            Instr(Op.MULHU, rd=5, rn=1, rm=2),
        ])
        assert core.regs.read(3) == 3
        assert core.regs.read(4) == 3
        assert core.regs.read(5) == 0

    def test_stats_count_int_ops(self):
        core = bare_core()
        run(core, [Instr(Op.MOVI, rd=1, imm=1), Instr(Op.ADDI, rd=1, rn=1, imm=1)])
        assert core.stats.int_ops == 2
        assert core.stats.instructions == 3  # including HALT


class TestCompareAndBranch:
    def test_cmp_sets_flags_and_cset(self):
        core = bare_core()
        run(core, [
            Instr(Op.MOVI, rd=1, imm=3),
            Instr(Op.CMPI, rn=1, imm=3),
            Instr(Op.CSET, rd=2, cond=Cond.EQ),
            Instr(Op.CSET, rd=3, cond=Cond.NE),
            Instr(Op.CMPI, rn=1, imm=5),
            Instr(Op.CSET, rd=4, cond=Cond.LT),
            Instr(Op.CSET, rd=5, cond=Cond.GE),
        ])
        assert core.regs.read(2) == 1
        assert core.regs.read(3) == 0
        assert core.regs.read(4) == 1
        assert core.regs.read(5) == 0

    def test_signed_comparison_with_negative(self):
        core = bare_core(ARMV7)
        run(core, [
            Instr(Op.MOVI, rd=1, imm=-1),
            Instr(Op.CMPI, rn=1, imm=0),
            Instr(Op.CSET, rd=2, cond=Cond.LT),
            Instr(Op.CSET, rd=3, cond=Cond.LO),  # unsigned: 0xFFFFFFFF is not lower than 0
        ])
        assert core.regs.read(2) == 1
        assert core.regs.read(3) == 0

    def test_branch_taken_and_not_taken(self):
        core = bare_core()
        # if r1 == 0 skip the "r2 = 99" assignment
        run(core, [
            Instr(Op.MOVI, rd=1, imm=0),
            Instr(Op.CBNZ, rn=1, imm=3),
            Instr(Op.B, imm=4),
            Instr(Op.MOVI, rd=2, imm=99),
            Instr(Op.MOVI, rd=3, imm=7),
        ])
        assert core.regs.read(2) == 0
        assert core.regs.read(3) == 7
        assert core.stats.branches == 2
        assert core.stats.branches_taken == 1

    def test_loop_counts_instructions(self):
        core = bare_core()
        # r1 = 10; while (r1 != 0) r1 -= 1
        run(core, [
            Instr(Op.MOVI, rd=1, imm=10),
            Instr(Op.SUBI, rd=1, rn=1, imm=1),
            Instr(Op.CBNZ, rn=1, imm=1),
        ])
        assert core.regs.read(1) == 0
        assert core.stats.branches_taken == 9

    def test_call_and_return(self):
        core = bare_core()
        arch = core.arch
        # main: BL func; r2 = 5; HALT / func: r1 = 42; RET
        run(core, [
            Instr(Op.BL, imm=3),
            Instr(Op.MOVI, rd=2, imm=5),
            Instr(Op.B, imm=5),
            Instr(Op.MOVI, rd=1, imm=42),
            Instr(Op.RET),
        ])
        assert core.regs.read(1) == 42
        assert core.regs.read(2) == 5
        assert core.stats.calls == 1
        assert core.stats.returns == 1

    def test_blr_indirect_call(self):
        core = bare_core()
        run(core, [
            Instr(Op.MOVI, rd=4, imm=4 * 4),  # address of instruction index 4
            Instr(Op.BLR, rn=4),
            Instr(Op.MOVI, rd=2, imm=5),
            Instr(Op.B, imm=6),
            Instr(Op.MOVI, rd=1, imm=13),
            Instr(Op.RET),
        ])
        assert core.regs.read(1) == 13
        assert core.regs.read(2) == 5


class TestMemoryInstructions:
    def test_store_load_word(self):
        core = bare_core()
        run(core, [
            Instr(Op.MOVI, rd=1, imm=0x1000),
            Instr(Op.MOVI, rd=2, imm=0xABCD),
            Instr(Op.STR, rd=2, rn=1, imm=16),
            Instr(Op.LDR, rd=3, rn=1, imm=16),
        ])
        assert core.regs.read(3) == 0xABCD
        assert core.stats.loads == 1 and core.stats.stores == 1

    def test_indexed_addressing_with_shift(self):
        core = bare_core()
        run(core, [
            Instr(Op.MOVI, rd=1, imm=0x1000),
            Instr(Op.MOVI, rd=2, imm=3),       # index 3
            Instr(Op.MOVI, rd=3, imm=77),
            Instr(Op.STR, rd=3, rn=1, rm=2, imm=3),  # [r1 + r2*8]
            Instr(Op.LDR, rd=4, rn=1, imm=24),
        ])
        assert core.regs.read(4) == 77

    def test_byte_access(self):
        core = bare_core()
        run(core, [
            Instr(Op.MOVI, rd=1, imm=0x1000),
            Instr(Op.MOVI, rd=2, imm=0x1FF),
            Instr(Op.STRB, rd=2, rn=1, imm=5),
            Instr(Op.LDRB, rd=3, rn=1, imm=5),
        ])
        assert core.regs.read(3) == 0xFF

    def test_unmapped_store_raises_memory_fault(self):
        from repro.errors import MemoryFault
        core = bare_core()
        core.text = [Instr(Op.MOVI, rd=1, imm=0x8000), Instr(Op.STR, rd=1, rn=1, imm=0), Instr(Op.HALT)]
        with pytest.raises(MemoryFault):
            core.run(10)


class TestFloatingPoint:
    def test_fp_arithmetic(self):
        core = bare_core(ARMV8)
        run(core, [
            Instr(Op.FMOVI, rd=0, imm=double_to_bits(1.5)),
            Instr(Op.FMOVI, rd=1, imm=double_to_bits(2.25)),
            Instr(Op.FADD, rd=2, rn=0, rm=1),
            Instr(Op.FMUL, rd=3, rn=0, rm=1),
            Instr(Op.FSUB, rd=4, rn=1, rm=0),
            Instr(Op.FDIV, rd=5, rn=1, rm=0),
            Instr(Op.FSQRT, rd=6, rn=1),
            Instr(Op.FNEG, rd=7, rn=0),
            Instr(Op.FABS, rd=8, rn=7),
        ])
        assert bits_to_double(core.fregs.read_bits(2)) == 3.75
        assert bits_to_double(core.fregs.read_bits(3)) == 3.375
        assert bits_to_double(core.fregs.read_bits(4)) == 0.75
        assert bits_to_double(core.fregs.read_bits(5)) == 1.5
        assert bits_to_double(core.fregs.read_bits(6)) == 1.5
        assert bits_to_double(core.fregs.read_bits(7)) == -1.5
        assert bits_to_double(core.fregs.read_bits(8)) == 1.5
        assert core.stats.float_ops == 9

    def test_fp_memory_and_conversion(self):
        core = bare_core(ARMV8)
        run(core, [
            Instr(Op.MOVI, rd=1, imm=0x1000),
            Instr(Op.MOVI, rd=2, imm=7),
            Instr(Op.SCVTF, rd=0, rn=2),
            Instr(Op.FSTR, rd=0, rn=1, imm=8),
            Instr(Op.FLDR, rd=3, rn=1, imm=8),
            Instr(Op.FCVTZS, rd=4, rn=3),
            Instr(Op.FMOVGR, rd=5, rn=3),
            Instr(Op.FMOVRG, rd=6, rn=5),
        ])
        assert bits_to_double(core.fregs.read_bits(3)) == 7.0
        assert core.regs.read(4) == 7
        assert core.regs.read(5) == double_to_bits(7.0)
        assert core.fregs.read_bits(6) == double_to_bits(7.0)

    def test_fcmp_sets_flags(self):
        core = bare_core(ARMV8)
        run(core, [
            Instr(Op.FMOVI, rd=0, imm=double_to_bits(1.0)),
            Instr(Op.FMOVI, rd=1, imm=double_to_bits(2.0)),
            Instr(Op.FCMP, rn=0, rm=1),
            Instr(Op.CSET, rd=2, cond=Cond.LT),
        ])
        assert core.regs.read(2) == 1


class TestFaultsAndControl:
    def test_fetch_outside_text(self):
        core = bare_core()
        core.text = [Instr(Op.B, imm=100)]
        with pytest.raises(InstructionFault):
            core.run(10)

    def test_misaligned_pc(self):
        core = bare_core()
        core.text = [Instr(Op.NOP)]
        core.pc = 2
        with pytest.raises(AlignmentFault):
            core.step()

    def test_svc_without_kernel_is_simulator_error(self):
        core = bare_core()
        core.text = [Instr(Op.SVC, imm=1)]
        with pytest.raises(SimulatorError):
            core.step()

    def test_halt_stops_run(self):
        core = bare_core()
        executed = run(core, [Instr(Op.NOP)] * 5, max_steps=100)
        assert core.halted
        assert executed == 6

    def test_context_save_restore(self):
        core = bare_core()
        run(core, [Instr(Op.MOVI, rd=1, imm=11), Instr(Op.FMOVI, rd=0, imm=55)])
        context = core.save_context()
        core.reset()
        assert core.regs.read(1) == 0
        core.load_context(context)
        assert core.regs.read(1) == 11
        assert core.fregs.read_bits(0) == 55

    def test_trace_hook_called_per_instruction(self):
        core = bare_core()
        seen = []
        core.trace_hook = lambda c, pc: seen.append(pc)
        run(core, [Instr(Op.NOP), Instr(Op.NOP)])
        assert seen == [0, 4, 8]

    def test_architectural_state_is_comparable(self):
        core = bare_core()
        before = core.architectural_state()
        run(core, [Instr(Op.MOVI, rd=1, imm=9)])
        assert core.architectural_state() != before
