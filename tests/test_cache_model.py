"""Regression tests for the PR 6 cache-model bugfix sweep.

Each test pins one of the four fixed bugs:

1. ``Cache.load_state`` after a JSON round-trip left ``pending`` (and
   ``dirty``) keyed by *strings*, so integer probes never matched and
   restored pending faults could neither propagate nor be masked.
2. Write-allocate misses propagated ``write=True`` down the hierarchy,
   marking the L2 copy of an L1 write-miss dirty — a later L2 eviction
   then wrote back (propagated) a fault that a clean eviction should
   have masked.
3. ``CacheHierarchy.stats()`` never exported L2 counters; the fix
   exports them exactly once (per-hierarchy for a private L2, at the
   SoC level for a shared one — never multiplied by core count).
4. ``CacheHierarchy.flush()`` left the L2 resident, leaking residency
   and pending-fault state across flush boundaries.

Plus guards for the restructured hot path: the single-entry last-line
fast path must never skip a pending-fault propagation or dirty marking.
"""

import json

import pytest

from repro.memory.cache import Cache, CacheConfig
from repro.memory.hierarchy import CacheHierarchy
from repro.soc.multicore import build_system

#: Tiny geometry: 1 set x 2 ways at L1, 1 set x 4 ways at L2 — evictions
#: are two accesses away, which keeps the write-back scenarios short.
L1 = CacheConfig("l1", 128, 2, 64, hit_latency=1, miss_penalty=10)
L2 = CacheConfig("l2", 256, 4, 64, hit_latency=12, miss_penalty=80)


def _sink_recorder(cache):
    hits = []
    cache.fault_sink = lambda line, byte, bit: hits.append((line, byte, bit))
    return hits


class TestLoadStateJsonRoundTrip:
    def _populated(self):
        cache = Cache(L1)
        cache.access(0x000)
        cache.access(0x040, write=True)  # dirty
        assert cache.inject_resident_fault(0, 5) is not None  # pending on line 0
        return cache

    def test_round_trip_preserves_state_exactly(self):
        cache = self._populated()
        reloaded = Cache(L1)
        reloaded.load_state(json.loads(json.dumps(cache.dump_state())))
        assert reloaded.dump_state() == cache.dump_state()

    def test_restored_pending_fault_propagates_on_hit(self):
        # Before the int-coercion fix the JSON string keys meant the
        # ``line in self._pending`` probe never matched: the restored
        # fault was silently dropped instead of propagating.
        cache = self._populated()
        reloaded = Cache(L1)
        reloaded.load_state(json.loads(json.dumps(cache.dump_state())))
        hits = _sink_recorder(reloaded)
        reloaded.access(0x000)  # hit on the corrupted line consumes the fault
        assert hits == [(0, 0, 5)]
        assert reloaded.dump_state()["pending"] == {}

    def test_restored_dirty_line_writes_back_on_eviction(self):
        cache = Cache(L1)
        cache.access(0x040, write=True)
        assert cache.inject_resident_fault(0, 3) is not None
        reloaded = Cache(L1)
        reloaded.load_state(json.loads(json.dumps(cache.dump_state())))
        hits = _sink_recorder(reloaded)
        reloaded.access(0x000)
        reloaded.access(0x080)  # evicts dirty line 1 -> write-back propagates
        assert hits == [(1, 0, 3)]

    def test_restored_clean_line_masks_on_eviction(self):
        cache = Cache(L1)
        cache.access(0x040)  # clean
        assert cache.inject_resident_fault(0, 3) is not None
        reloaded = Cache(L1)
        reloaded.load_state(json.loads(json.dumps(cache.dump_state())))
        hits = _sink_recorder(reloaded)
        reloaded.access(0x000)
        reloaded.access(0x080)  # evicts clean line 1 -> fault masked
        assert hits == []
        assert reloaded.dump_state()["pending"] == {}


class TestWriteAllocateFillsCleanBelow:
    def test_l1_write_miss_leaves_l2_copy_clean(self):
        l2 = Cache(L2)
        l1 = Cache(L1, next_level=l2)
        l1.access(0x100, write=True)  # L1 write miss -> L1 dirty, L2 fill
        assert l1.is_dirty(0x100)
        assert l2.contains(0x100)
        assert not l2.is_dirty(0x100)  # only the absorbing level is dirty

    def test_l2_clean_eviction_masks_fault_after_l1_write_miss(self):
        # The observable bug: a pending L2 fault on a line filled by an
        # L1 *write* miss used to write back on L2 eviction (the fill
        # had wrongly marked it dirty), turning a masked outcome into a
        # propagated one.
        l2 = Cache(L2)
        l1 = Cache(L1, next_level=l2)
        hits = _sink_recorder(l2)
        l1.access(0x000, write=True)
        line = 0x000 >> 6
        l2._pending.setdefault(line, []).append((0, 7))
        l2._last_line = -1
        # Conflict-fill L2's only set until line 0 is evicted.
        for address in (0x040, 0x080, 0x0C0, 0x100):
            l2.access(address)
        assert not l2.contains(0x000)
        assert hits == []  # clean eviction: the fault is masked
        assert l2.dump_state()["pending"] == {}

    def test_fill_counts_as_read_at_the_next_level(self):
        l2 = Cache(L2)
        l1 = Cache(L1, next_level=l2)
        l1.access(0x100, write=True)
        assert l2.stats.read_accesses == 1
        assert l2.stats.write_accesses == 0


class TestL2StatsExport:
    def test_private_hierarchy_exports_l2(self):
        hierarchy = CacheHierarchy.build()
        hierarchy.fetch(0x100)
        stats = hierarchy.stats()
        assert stats["l2_accesses"] == 1  # the L1i miss filled from L2
        assert "l2_misses" in stats and "l2_hits" in stats

    def test_shared_hierarchies_do_not_multiply_l2(self):
        shared = Cache(L2)
        a = CacheHierarchy.build(shared_l2=shared)
        b = CacheHierarchy.build(shared_l2=shared)
        a.data_access(0x8000, write=False)
        b.data_access(0x8000, write=False)
        # neither per-core view exports the shared L2: summing them at
        # the SoC level must not multiply L2 counters by the core count
        assert not any(key.startswith("l2_") for key in a.stats())
        assert not any(key.startswith("l2_") for key in b.stats())

    def test_soc_exports_shared_l2_exactly_once(self):
        system = build_system("armv8", cores=2, model_caches=True)
        for core in system.cores:
            core.caches.data_access(0x9000, write=False)
        stats = system.cache_stats()
        assert stats["l2_accesses"] == system.shared_l2.stats.accesses == 2
        assert stats["l2_hits"] == 1
        # per-core keys carry no L2 counters (that's the double count)
        assert not any("_l2_" in key for key in stats)


class TestFlushCompleteness:
    def test_private_hierarchy_flush_covers_l2(self):
        hierarchy = CacheHierarchy.build()
        hierarchy.fetch(0x100)
        hierarchy.data_access(0x200, write=True)
        assert hierarchy.l2.resident_lines()
        hierarchy.flush()
        assert not hierarchy.l1i.resident_lines()
        assert not hierarchy.l1d.resident_lines()
        assert not hierarchy.l2.resident_lines()  # used to leak residency

    def test_shared_hierarchy_flush_leaves_l2_for_the_soc(self):
        shared = Cache(L2)
        a = CacheHierarchy.build(shared_l2=shared)
        b = CacheHierarchy.build(shared_l2=shared)
        a.data_access(0x8000, write=False)
        a.flush()  # per-core flush: the shared L2 belongs to the SoC
        assert not a.l1d.resident_lines()
        assert shared.resident_lines()
        b.data_access(0x8000, write=False)
        assert shared.stats.hits == 1  # still resident for the other core

    def test_soc_flush_caches_flushes_shared_l2_once(self):
        system = build_system("armv8", cores=2, model_caches=True)
        for core in system.cores:
            core.caches.fetch(0x100)
            core.caches.data_access(0x200, write=True)
        assert system.shared_l2.resident_lines()
        system.shared_l2._pending[999] = [(0, 0)]
        system.flush_caches()
        for core in system.cores:
            assert not core.caches.l1i.resident_lines()
            assert not core.caches.l1d.resident_lines()
        assert not system.shared_l2.resident_lines()
        assert system.shared_l2.dump_state()["pending"] == {}


class TestLastLineFastPath:
    def test_repeated_access_stays_exact(self):
        cache = Cache(L1)
        cache.access(0x000)
        for _ in range(3):
            cache.access(0x020)  # same line: fast path
        assert cache.stats.hits == 3
        assert cache.stats.misses == 1
        assert cache.stats.read_accesses == 4

    def test_fast_path_write_marks_dirty(self):
        cache = Cache(L1)
        cache.access(0x000)
        cache.access(0x000, write=True)  # fast path must still set dirty
        assert cache.is_dirty(0x000)
        assert cache.stats.write_accesses == 1

    def test_fast_path_never_skips_pending_propagation(self):
        # inject_resident_fault must reset the last-line guarantee:
        # otherwise the very next access to the same line would take the
        # fast path and skip consuming the pending fault.
        cache = Cache(L1)
        hits = _sink_recorder(cache)
        cache.access(0x000)
        assert cache.inject_resident_fault(0, 4) is not None
        cache.access(0x000)
        assert hits == [(0, 0, 4)]

    def test_dump_state_keeps_lru_order(self):
        cache = Cache(L1)  # one set, two ways
        cache.access(0x000)
        cache.access(0x040)
        cache.access(0x000)  # re-reference: line 0 becomes MRU
        assert cache.dump_state()["sets"][0] == [1, 0]  # LRU first
        cache.access(0x080)  # evicts line 1, the true LRU
        assert not cache.contains(0x040)
        assert cache.contains(0x000)
