"""Unit tests for the ISA layer: arch specs, register files, instructions."""

import pytest

from repro.errors import LinkError
from repro.isa.arch import ARMV7, ARMV8, get_arch
from repro.isa.encoding import decode_fields, encode, encode_program
from repro.isa.instructions import Cond, Instr, Op, format_instr
from repro.isa.program import Program
from repro.isa.registers import FloatRegisterFile, RegisterFile


class TestArchSpec:
    def test_armv7_properties(self):
        assert ARMV7.xlen == 32
        assert ARMV7.num_gpr == 16
        assert ARMV7.num_fpr == 0
        assert not ARMV7.has_hw_float
        assert ARMV7.word_bytes == 4
        assert ARMV7.float_bytes == 4
        assert ARMV7.cpu_model == "cortex-a9"

    def test_armv8_properties(self):
        assert ARMV8.xlen == 64
        assert ARMV8.num_gpr == 32
        assert ARMV8.num_fpr == 32
        assert ARMV8.has_hw_float
        assert ARMV8.word_bytes == 8
        assert ARMV8.float_bytes == 8
        assert ARMV8.cpu_model == "cortex-a72"

    def test_register_file_doubles_between_isas(self):
        # the paper: "the new 64-bit ISA also enlarges the integer
        # register-file, from 16 to 32 registers"
        assert ARMV8.num_gpr == 2 * ARMV7.num_gpr

    def test_word_mask_and_sign_bit(self):
        assert ARMV7.word_mask == 0xFFFFFFFF
        assert ARMV8.word_mask == 0xFFFFFFFFFFFFFFFF
        assert ARMV7.sign_bit == 1 << 31
        assert ARMV8.sign_bit == 1 << 63

    @pytest.mark.parametrize("alias,expected", [
        ("armv7", "armv7"), ("v7", "armv7"), ("cortex-a9", "armv7"),
        ("armv8", "armv8"), ("V8", "armv8"), ("Cortex-A72", "armv8"),
    ])
    def test_get_arch_aliases(self, alias, expected):
        assert get_arch(alias).name == expected

    def test_get_arch_unknown(self):
        with pytest.raises(KeyError):
            get_arch("riscv")

    def test_register_names(self):
        names = ARMV7.register_names()
        assert names[13] == "sp"
        assert names[14] == "lr"
        assert names[0] == "r0"
        names8 = ARMV8.register_names()
        assert names8[31] == "sp"
        assert names8[30] == "lr"

    def test_abi_register_sets_disjoint(self):
        for arch in (ARMV7, ARMV8):
            abi = arch.abi
            assert abi.gp not in abi.scratch_regs
            assert abi.gp not in abi.callee_saved
            assert abi.sp not in abi.scratch_regs
            assert set(abi.callee_saved).isdisjoint(abi.scratch_regs)

    def test_describe(self):
        info = ARMV7.describe()
        assert info["linux_kernel"] == "3.13"
        assert ARMV8.describe()["linux_kernel"] == "4.3"


class TestRegisterFile:
    def test_write_read_masking(self):
        regs = RegisterFile(ARMV7)
        regs.write(0, 0x1_0000_0001)
        assert regs.read(0) == 1

    def test_read_signed(self):
        regs = RegisterFile(ARMV7)
        regs.write(1, 0xFFFFFFFF)
        assert regs.read_signed(1) == -1
        regs.write(2, 5)
        assert regs.read_signed(2) == 5

    def test_flip_bit_is_involution(self):
        regs = RegisterFile(ARMV8)
        regs.write(3, 0xDEADBEEF)
        regs.flip_bit(3, 7)
        assert regs.read(3) == 0xDEADBEEF ^ 0x80
        regs.flip_bit(3, 7)
        assert regs.read(3) == 0xDEADBEEF

    def test_flip_bit_out_of_range(self):
        regs = RegisterFile(ARMV7)
        with pytest.raises(ValueError):
            regs.flip_bit(0, 32)

    def test_snapshot_restore(self):
        regs = RegisterFile(ARMV7)
        for i in range(16):
            regs.write(i, i * 3)
        snap = regs.snapshot()
        regs.write(5, 999)
        regs.restore(snap)
        assert regs.read(5) == 15
        assert list(regs) == [i * 3 for i in range(16)]

    def test_dump_uses_names(self):
        regs = RegisterFile(ARMV7)
        regs.write(13, 0x1000)
        assert regs.dump()["sp"] == 0x1000


class TestFloatRegisterFile:
    def test_width_depends_on_arch(self):
        assert FloatRegisterFile(ARMV8).width == 64
        assert FloatRegisterFile(ARMV7).width == 32

    def test_bits_roundtrip_and_flip(self):
        fregs = FloatRegisterFile(ARMV8)
        fregs.write_bits(2, 0x3FF0000000000000)
        fregs.flip_bit(2, 63)
        assert fregs.read_bits(2) == 0xBFF0000000000000

    def test_snapshot_restore(self):
        fregs = FloatRegisterFile(ARMV8)
        fregs.write_bits(0, 123)
        snap = fregs.snapshot()
        fregs.write_bits(0, 456)
        fregs.restore(snap)
        assert fregs.read_bits(0) == 123


class TestInstructions:
    def test_predicates(self):
        assert Instr(Op.LDR, rd=0, rn=1, imm=4).is_memory()
        assert Instr(Op.BL, imm=3).is_call()
        assert Instr(Op.BCC, cond=Cond.EQ, imm=2).is_branch()
        assert Instr(Op.FADD, rd=0, rn=1, rm=2).is_float()
        assert not Instr(Op.ADD, rd=0, rn=1, rm=2).is_branch()

    def test_copy_is_independent(self):
        original = Instr(Op.ADDI, rd=1, rn=2, imm=7)
        clone = original.copy()
        clone.imm = 9
        assert original.imm == 7

    def test_format_instr_variants(self):
        assert "movi" in format_instr(Instr(Op.MOVI, rd=0, imm=5))
        assert "b.eq" in format_instr(Instr(Op.BCC, cond=Cond.EQ, label="target"))
        assert "[" in format_instr(Instr(Op.LDR, rd=0, rn=13, imm=8))
        assert format_instr(Instr(Op.RET)) == "ret"

    def test_encoding_deterministic(self):
        instr = Instr(Op.ADD, rd=1, rn=2, rm=3)
        assert encode(instr) == encode(Instr(Op.ADD, rd=1, rn=2, rm=3))

    def test_encoding_distinguishes_opcodes(self):
        a = encode(Instr(Op.ADD, rd=1, rn=2, rm=3))
        b = encode(Instr(Op.SUB, rd=1, rn=2, rm=3))
        assert a != b

    def test_decode_fields_roundtrip(self):
        word = encode(Instr(Op.LDR, rd=4, rn=11, imm=16))
        fields = decode_fields(word)
        assert fields["op"] == Op.LDR
        assert fields["rd"] == 4
        assert fields["rn"] == 11

    def test_encode_program_length(self):
        blob = encode_program([Instr(Op.NOP), Instr(Op.HALT)])
        assert len(blob) == 8


class TestProgram:
    def _program(self) -> Program:
        program = Program(arch=ARMV7, name="tiny")
        program.instructions = [Instr(Op.MOVI, rd=0, imm=1), Instr(Op.HALT)]
        program.labels = {"_start": 0}
        program.function_ranges = {"_start": (0, 2)}
        return program

    def test_label_address(self):
        program = self._program()
        assert program.label_address("_start", text_base=0x1000) == 0x1000
        with pytest.raises(LinkError):
            program.label_address("missing")

    def test_entry_index_and_sizes(self):
        program = self._program()
        assert program.entry_index() == 0
        assert program.text_size == 8
        assert program.data_size == 0

    def test_function_of(self):
        program = self._program()
        assert program.function_of(1) == "_start"
        assert program.function_of(99) == "<unknown>"

    def test_disassemble_contains_labels(self):
        listing = self._program().disassemble()
        assert "_start:" in listing
        assert "movi" in listing

    def test_summary(self):
        summary = self._program().summary()
        assert summary["instructions"] == 2
        assert summary["arch"] == "armv7"
