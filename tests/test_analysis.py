"""Tests of the per-table/figure experiment drivers (analysis package)."""

import pytest

from repro.analysis.figure1 import figure1_data, render_figure1, scaling_trends
from repro.analysis.figures23 import MISMATCH_PANEL_APPS, figure_data, figure_rows, mismatch_rows, render_figure
from repro.analysis.render import render_stacked_bars, render_table
from repro.analysis.section42 import masking_summary, render_section42, section42_summary
from repro.analysis.table1 import instruction_ratio, render_table1, table1_rows
from repro.analysis.table2 import index_tracks_hangs, render_table2, table2_rows
from repro.analysis.tables34 import memory_ut_correlation, render_memory_table, table3_rows, table4_rows
from repro.injection.golden import GoldenRunResult
from repro.npb.suite import Scenario


def fake_golden(app, mode, cores, isa, instructions, wall):
    return GoldenRunResult(
        scenario=Scenario(app, mode, cores, isa),
        total_instructions=instructions,
        output="",
        memory_snapshots={},
        final_state=(),
        exit_ok=True,
        wall_time_seconds=wall,
        load_balance_pct=4.0 if mode == "mpi" else 15.0,
    )


class TestRenderers:
    def test_render_table_alignment_and_empty(self):
        text = render_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], title="t")
        assert text.splitlines()[0] == "t"
        assert "22" in text
        assert "(no data)" in render_table([])

    def test_render_stacked_bars(self):
        rows = [{"bar": "X", "Vanished": 50.0, "UT": 50.0}]
        text = render_stacked_bars(rows, "bar", ["Vanished", "UT"], width=10)
        assert "legend" in text
        assert "|" in text.splitlines()[-1]


class TestFigure1:
    def test_data_shape(self):
        data = figure1_data()
        assert len(data) >= 10
        years = [row["year"] for row in data]
        assert years == sorted(years)

    def test_trends(self):
        trends = scaling_trends()
        assert trends["transistor_growth"] > 1e5
        assert trends["max_cores"] >= 48
        assert trends["min_node_nm"] == 10

    def test_render(self):
        assert "Figure 1" in render_figure1()


class TestTable1:
    def test_rows_and_ratio(self):
        golden = [
            fake_golden("CG", "serial", 1, "armv7", 200_000, 0.5),
            fake_golden("EP", "serial", 1, "armv7", 100_000, 0.3),
            fake_golden("CG", "serial", 1, "armv8", 10_000, 0.05),
            fake_golden("EP", "serial", 1, "armv8", 5_000, 0.02),
        ]
        rows = table1_rows(golden, faults_per_scenario=100)
        metrics = {(row["metric"], row["isa"]) for row in rows}
        assert ("executed_instructions", "armv7") in metrics
        assert ("total_fault_campaign_h", "armv8") in metrics
        instr_v7 = next(r for r in rows if r["metric"] == "executed_instructions" and r["isa"] == "armv7")
        assert instr_v7["smaller"] == 100_000 and instr_v7["larger"] == 200_000
        # the paper's headline: ARMv7 executes far more instructions than ARMv8
        assert instruction_ratio(golden) == pytest.approx(20.0)
        assert "Table 1" in render_table1(rows)


class TestFigures23:
    def test_panel_rows(self, synthetic_database):
        rows = figure_rows(synthetic_database, isa="armv7", api="mpi")
        labels = {row["config"] for row in rows if row["app"] == "IS"}
        assert labels == {"SER-1", "MPI-1", "MPI-2", "MPI-4"}
        for row in rows:
            total = row["Vanished"] + row["ONA"] + row["OMM"] + row["UT"] + row["Hang"]
            assert total == pytest.approx(100.0, abs=0.5)

    def test_mismatch_rows_only_for_apps_with_both_apis(self, synthetic_database):
        rows = mismatch_rows(synthetic_database, isa="armv7")
        assert all(row["app"] in MISMATCH_PANEL_APPS for row in rows)
        assert all(row["total_mismatch"] >= 0 for row in rows)

    def test_figure_data_and_render(self, synthetic_database):
        data = figure_data(synthetic_database, "armv8")
        assert set(data) == {"isa", "mpi_panel", "omp_panel", "mismatch_panel"}
        text = render_figure(synthetic_database, "armv7")
        assert "Figure 2a" in text and "Figure 2c" in text
        assert "Figure 3a" in render_figure(synthetic_database, "armv8")


class TestTable2:
    def test_rows_and_tracking(self, synthetic_database):
        rows = table2_rows(synthetic_database)
        groups = {row["scenario_group"] for row in rows}
        assert "IS MPI V7" in groups and "IS OMP V8" in groups
        verdict = index_tracks_hangs(rows)
        assert all(verdict.values())
        assert "Table 2" in render_table2(rows)

    def test_single_core_is_baseline(self, synthetic_database):
        rows = [r for r in table2_rows(synthetic_database) if r["scenario_group"] == "IS MPI V7"]
        assert rows[0]["cores"] == 1 and rows[0]["fb_index"] == pytest.approx(1.0)


class TestTables34:
    def test_table3_shape(self, synthetic_database):
        rows = table3_rows(synthetic_database)
        assert [row["row"] for row in rows] == ["1", "2", "3", "4", "5", "6"]
        # higher memory-instruction share goes with higher UT share
        assert memory_ut_correlation(rows) > 0.5
        assert "Table 3" in render_memory_table(rows, 3)

    def test_table4_shape(self, synthetic_database):
        rows = table4_rows(synthetic_database)
        labels = [row["row"] for row in rows]
        assert labels == list("ABCDEFGHI")
        lu = [row for row in rows if row["scenario"].startswith("LU")]
        assert lu[0]["ut_pct"] >= lu[-1]["ut_pct"]
        assert lu[0]["mem_inst_pct"] >= lu[-1]["mem_inst_pct"]


class TestSection42:
    def test_masking_summary(self, synthetic_database):
        summary = masking_summary(synthetic_database)
        assert summary["total_comparisons"] > 0
        assert 0 <= summary["total_mpi_wins"] <= summary["total_comparisons"]

    def test_full_summary_and_render(self, synthetic_database):
        golden = [
            fake_golden("IS", "mpi", 4, "armv8", 10_000, 0.1),
            fake_golden("IS", "omp", 4, "armv8", 10_000, 0.1),
        ]
        summary = section42_summary(synthetic_database, golden_results=golden)
        assert summary["load_balance_pct"]["mpi"] < summary["load_balance_pct"]["omp"]
        text = render_section42(summary)
        assert "MPI masking wins" in text
        assert "imbalance" in text
