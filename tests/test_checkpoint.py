"""Determinism tests of the checkpoint/restore subsystem.

The contract under test: restoring a checkpoint onto a freshly launched
system and running to completion is *bitwise identical* to a straight
run — same output, same memory contents, same architectural state, same
instruction counts, same per-core statistics.  This is what lets the
fault injector fast-forward to an injection point instead of replaying
from boot without changing a single campaign outcome.
"""

from __future__ import annotations

import pickle
import random
import zlib

import pytest

from repro.checkpoint import SystemSnapshot, capture_snapshot, nearest_checkpoint, restore_snapshot
from repro.errors import SimulatorError
from repro.injection.golden import MAX_CHECKPOINTS, GoldenRunner
from repro.npb.suite import Scenario, create_system, instruction_budget, launch_scenario

#: The small determinism matrix: two applications across every
#: parallelisation model and both ISAs (serial, OpenMP and MPI exercise
#: disjoint kernel paths: scheduling, sync primitives, message passing).
APP_MODE_CORES = [
    ("IS", "serial", 1),
    ("IS", "omp", 2),
    ("IS", "mpi", 2),
    ("EP", "serial", 1),
    ("EP", "omp", 2),
    ("EP", "mpi", 2),
]
SCENARIOS = [
    Scenario(app, mode, cores, isa)
    for isa in ("armv8", "armv7")
    for app, mode, cores in APP_MODE_CORES
]


def _fresh(scenario: Scenario):
    system = create_system(scenario, model_caches=False)
    launch_scenario(system, scenario)
    return system


def _fingerprint(system) -> tuple:
    """Everything a straight run and a restored run must agree on."""
    return (
        system.combined_output(),
        system.memory_snapshot(),
        system.architectural_state(),
        system.total_instructions,
        [core.stats.counters() for core in system.cores],
        [p.state.value for p in system.kernel.processes],
        dict(system.kernel.syscall_counts),
    )


_REFERENCE_CACHE: dict[str, tuple] = {}


def _reference(scenario: Scenario) -> tuple:
    """Fingerprint of an uninterrupted run (cached per scenario)."""
    key = scenario.scenario_id
    if key not in _REFERENCE_CACHE:
        system = _fresh(scenario)
        system.run(max_instructions=instruction_budget(scenario))
        _REFERENCE_CACHE[key] = _fingerprint(system)
    return _REFERENCE_CACHE[key]


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.scenario_id)
class TestDeterminismMatrix:
    def test_restore_then_run_is_bitwise_identical(self, scenario):
        reference = _reference(scenario)
        golden = GoldenRunner(model_caches=False, checkpoint_interval=512).run(
            scenario, collect_stats=False
        )
        # The checkpointed golden run itself must match the uninterrupted run.
        assert golden.output == reference[0]
        assert golden.memory_snapshots == reference[1]
        assert golden.final_state == reference[2]
        assert golden.total_instructions == reference[3]
        assert len(golden.checkpoints) >= 2  # boot snapshot + at least one pause
        # Restoring any checkpoint and running to completion reproduces it too.
        for checkpoint in (golden.checkpoints[len(golden.checkpoints) // 2], golden.checkpoints[-1]):
            system = restore_snapshot(checkpoint, _fresh(scenario))
            assert system.total_instructions == checkpoint.instruction_count
            system.run(max_instructions=golden.watchdog_budget())
            assert _fingerprint(system) == reference

    def test_checkpoints_are_monotonic_and_bounded(self, scenario):
        golden = GoldenRunner(model_caches=False, checkpoint_interval=512).run(
            scenario, collect_stats=False
        )
        counts = golden.checkpoint_instructions()
        assert counts[0] == 0
        assert counts == sorted(counts)
        assert len(set(counts)) == len(counts)
        assert len(counts) <= MAX_CHECKPOINTS + 1
        assert counts[-1] <= golden.total_instructions


class TestRandomBoundaries:
    """Property-style: any pause point is a valid, exact checkpoint."""

    @pytest.mark.parametrize(
        "scenario",
        [
            Scenario("IS", "omp", 2, "armv8"),
            Scenario("IS", "mpi", 2, "armv8"),
            Scenario("EP", "omp", 2, "armv7"),
        ],
        ids=lambda s: s.scenario_id,
    )
    def test_random_checkpoint_boundaries(self, scenario):
        reference = _reference(scenario)
        total = reference[3]
        budget = instruction_budget(scenario)
        rng = random.Random(0xC0FFEE ^ zlib.crc32(scenario.scenario_id.encode()))
        for _ in range(4):
            boundary = rng.randint(1, total - 1)
            paused = _fresh(scenario)
            assert paused.run(max_instructions=budget, stop_at_instruction=boundary) == "breakpoint"
            assert paused.total_instructions == boundary
            snapshot = capture_snapshot(paused)
            restored = restore_snapshot(snapshot, _fresh(scenario))
            # The restored system is indistinguishable from the paused one...
            assert _fingerprint(restored) == _fingerprint(paused)
            # ...and both finish exactly like the uninterrupted run.
            restored.run(max_instructions=budget)
            paused.run(max_instructions=budget)
            assert _fingerprint(restored) == reference
            assert _fingerprint(paused) == reference


class TestSnapshotApi:
    def test_snapshots_pickle_cleanly(self):
        scenario = Scenario("IS", "serial", 1, "armv8")
        system = _fresh(scenario)
        system.run(max_instructions=instruction_budget(scenario), stop_at_instruction=5_000)
        snapshot = pickle.loads(pickle.dumps(capture_snapshot(system)))
        assert isinstance(snapshot, SystemSnapshot)
        assert snapshot.instruction_count == 5_000
        assert snapshot.approx_bytes() > 0
        restored = restore_snapshot(snapshot, _fresh(scenario))
        assert _fingerprint(restored) == _fingerprint(system)

    def test_nearest_checkpoint_selection(self):
        checkpoints = [
            SystemSnapshot(instruction_count=c, run_reason=None, resume=None) for c in (0, 100, 200)
        ]
        assert nearest_checkpoint(checkpoints, 0).instruction_count == 0
        assert nearest_checkpoint(checkpoints, 99).instruction_count == 0
        assert nearest_checkpoint(checkpoints, 100).instruction_count == 100
        assert nearest_checkpoint(checkpoints, 10_000).instruction_count == 200
        assert nearest_checkpoint([], 50) is None
        assert nearest_checkpoint(checkpoints[1:], 50) is None

    def test_restore_rejects_mismatched_system(self):
        scenario = Scenario("IS", "serial", 1, "armv8")
        system = _fresh(scenario)
        snapshot = capture_snapshot(system)
        other = create_system(Scenario("IS", "omp", 4, "armv8"), model_caches=False)
        with pytest.raises(SimulatorError):
            restore_snapshot(snapshot, other)

    def test_restore_rejects_mismatched_workload(self):
        snapshot = capture_snapshot(_fresh(Scenario("IS", "serial", 1, "armv8")))
        other = _fresh(Scenario("EP", "serial", 1, "armv8"))
        with pytest.raises(SimulatorError):
            restore_snapshot(snapshot, other)

    def test_checkpointing_disabled_with_zero_interval(self):
        golden = GoldenRunner(model_caches=False, checkpoint_interval=0).run(
            Scenario("EP", "serial", 1, "armv8"), collect_stats=False
        )
        assert golden.checkpoints == []
        assert golden.summary()["checkpoints"] == 0

    def test_negative_interval_rejected(self):
        with pytest.raises(SimulatorError):
            GoldenRunner(checkpoint_interval=-1)
        with pytest.raises(SimulatorError):
            GoldenRunner().run(
                Scenario("EP", "serial", 1, "armv8"), collect_stats=False, checkpoint_interval=-1
            )

    def test_bare_golden_runner_skips_checkpoints_by_default(self):
        golden = GoldenRunner(model_caches=False).run(
            Scenario("EP", "serial", 1, "armv8"), collect_stats=False
        )
        assert golden.checkpoints == []
        campaign_default = GoldenRunner(model_caches=False, checkpoint_interval=None).run(
            Scenario("EP", "serial", 1, "armv8"), collect_stats=False
        )
        assert len(campaign_default.checkpoints) >= 2

    def test_cache_state_round_trips(self):
        scenario = Scenario("EP", "serial", 1, "armv8")
        system = create_system(scenario, model_caches=True)
        launch_scenario(system, scenario)
        system.run(max_instructions=instruction_budget(scenario), stop_at_instruction=3_000)
        snapshot = capture_snapshot(system)
        fresh = create_system(scenario, model_caches=True)
        launch_scenario(fresh, scenario)
        restored = restore_snapshot(snapshot, fresh)
        assert restored.cache_stats() == system.cache_stats()
        restored.run(max_instructions=instruction_budget(scenario))
        system.run(max_instructions=instruction_budget(scenario))
        assert restored.cache_stats() == system.cache_stats()
        assert _fingerprint(restored) == _fingerprint(system)
