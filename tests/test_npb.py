"""Tests of the NPB-style workloads and the 130-scenario matrix."""

import pytest

from repro.npb import common
from repro.npb.suite import (
    APPLICATIONS,
    Scenario,
    build_program,
    build_scenario_suite,
    create_system,
    instruction_budget,
    launch_scenario,
    scenarios_for_isa,
)


def run_scenario(scenario: Scenario):
    program = build_program(scenario.app, scenario.mode, scenario.isa)
    system = create_system(scenario)
    launch_scenario(system, scenario, program)
    system.run(max_instructions=instruction_budget(scenario))
    return system


class TestScenarioMatrix:
    def test_total_scenario_count_matches_paper(self):
        suite = build_scenario_suite()
        assert len(suite) == 130

    def test_per_isa_breakdown(self):
        scenarios = scenarios_for_isa("armv7")
        assert len(scenarios) == 65
        serial = [s for s in scenarios if s.mode == "serial"]
        omp = [s for s in scenarios if s.mode == "omp"]
        mpi = [s for s in scenarios if s.mode == "mpi"]
        assert len(serial) == 10
        assert len(omp) == 30
        assert len(mpi) == 25

    def test_bt_and_sp_lack_mpi_dual_core(self):
        scenarios = scenarios_for_isa("armv8")
        assert not any(s.app == "BT" and s.mode == "mpi" and s.cores == 2 for s in scenarios)
        assert not any(s.app == "SP" and s.mode == "mpi" and s.cores == 2 for s in scenarios)
        assert any(s.app == "BT" and s.mode == "mpi" and s.cores == 4 for s in scenarios)

    def test_dc_ua_have_no_mpi_and_dt_is_mpi_only(self):
        scenarios = scenarios_for_isa("armv7")
        assert not any(s.app in ("DC", "UA") and s.mode == "mpi" for s in scenarios)
        dt_modes = {s.mode for s in scenarios if s.app == "DT"}
        assert dt_modes == {"mpi"}

    def test_application_counts_match_section_332(self):
        serial_apps = [a for a, spec in APPLICATIONS.items() if spec["serial"]]
        omp_apps = [a for a, spec in APPLICATIONS.items() if spec["omp"]]
        mpi_apps = [a for a, spec in APPLICATIONS.items() if spec["mpi"]]
        assert len(serial_apps) == 10
        assert len(omp_apps) == 10
        assert len(mpi_apps) == 9

    def test_scenario_labels(self):
        serial = Scenario("CG", "serial", 1, "armv7")
        omp = Scenario("CG", "omp", 4, "armv8")
        assert serial.api_label == "SER-1"
        assert omp.api_label == "OMP-4"
        assert omp.scenario_id == "CG-OMP-4-armv8"

    def test_suite_filtering(self):
        suite = build_scenario_suite()
        only_is = suite.filter(apps=["IS"], isas=["armv8"])
        assert all(s.app == "IS" and s.isa == "armv8" for s in only_is)
        assert len(only_is) == 7  # 1 serial + 3 omp + 3 mpi

    def test_unknown_application_rejected(self):
        with pytest.raises(KeyError):
            build_program("XX", "serial", "armv8")
        with pytest.raises(ValueError):
            build_program("DT", "serial", "armv8")


class TestProgramConstruction:
    @pytest.mark.parametrize("isa", ["armv7", "armv8"])
    def test_all_program_variants_link(self, isa):
        for app, spec in APPLICATIONS.items():
            for mode in ("serial", "omp", "mpi"):
                if not spec[mode]:
                    continue
                program = build_program(app, mode, isa)
                assert len(program.instructions) > 20
                assert "_start" in program.labels and "main" in program.labels

    def test_program_cache_returns_same_object(self):
        assert build_program("EP", "serial", "armv8") is build_program("EP", "serial", "armv8")

    def test_v7_programs_include_softfloat(self):
        v7 = build_program("CG", "serial", "armv7")
        v8 = build_program("CG", "serial", "armv8")
        assert "__sf_add" in v7.function_ranges
        assert "__sf_add" not in v8.function_ranges

    def test_parallel_variants_link_their_runtime(self):
        omp = build_program("CG", "omp", "armv8")
        mpi = build_program("CG", "mpi", "armv8")
        assert "omp_parallel_for" in omp.function_ranges
        assert "mpi_barrier" in mpi.function_ranges


class TestGoldenExecution:
    @pytest.mark.parametrize("app,mode,cores", [
        ("EP", "serial", 1),
        ("IS", "omp", 2),
        ("CG", "mpi", 2),
        ("DC", "omp", 4),
        ("DT", "mpi", 4),
        ("FT", "serial", 1),
    ])
    def test_armv8_scenarios_complete_cleanly(self, app, mode, cores):
        system = run_scenario(Scenario(app, mode, cores, "armv8"))
        assert system.processes_ok()
        assert system.combined_output().strip() != ""

    @pytest.mark.parametrize("app,mode,cores", [
        ("IS", "serial", 1),
        ("EP", "mpi", 2),
        ("LU", "omp", 2),
    ])
    def test_armv7_scenarios_complete_cleanly(self, app, mode, cores):
        system = run_scenario(Scenario(app, mode, cores, "armv7"))
        assert system.processes_ok()

    def test_golden_runs_are_deterministic(self):
        scenario = Scenario("IS", "omp", 2, "armv8")
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.total_instructions == b.total_instructions
        assert a.combined_output() == b.combined_output()
        assert a.memory_snapshot() == b.memory_snapshot()

    def test_parallel_checksum_matches_serial(self):
        # EP is embarrassingly parallel: the integer hit count must be
        # identical between the serial and OpenMP versions.
        serial = run_scenario(Scenario("EP", "serial", 1, "armv8"))
        omp = run_scenario(Scenario("EP", "omp", 4, "armv8"))
        serial_hits = serial.combined_output().split()[0]
        omp_hits = omp.combined_output().split()[0]
        assert serial_hits == omp_hits

    def test_mpi_uses_all_cores(self):
        system = run_scenario(Scenario("EP", "mpi", 4, "armv8"))
        per_core = [core.stats.instructions for core in system.cores]
        assert all(count > 0 for count in per_core)

    def test_v7_executes_more_instructions_than_v8(self):
        # Table 1 shape: the FP-heavy kernels are much longer on ARMv7
        v7 = run_scenario(Scenario("CG", "serial", 1, "armv7"))
        v8 = run_scenario(Scenario("CG", "serial", 1, "armv8"))
        assert v7.total_instructions > 5 * v8.total_instructions

    def test_omp_load_balance_worse_than_mpi(self):
        # Section 4.2.2: MPI has individual working threads per core,
        # OpenMP leaves the master running serial portions alone.
        mpi = run_scenario(Scenario("IS", "mpi", 4, "armv8"))
        omp = run_scenario(Scenario("IS", "omp", 4, "armv8"))
        assert mpi.load_balance() <= omp.load_balance()

    def test_instruction_budget_scales_with_golden(self):
        scenario = Scenario("IS", "serial", 1, "armv8")
        assert instruction_budget(scenario, golden_instructions=100_000) == 400_000
        assert instruction_budget(scenario) > 0


class TestCommonHelpers:
    def test_modes_and_partials(self):
        assert set(common.MODES) == {"serial", "omp", "mpi"}
        names = [g.name for g in common.partial_globals()]
        assert names == ["partial_f", "partial_i"]

    def test_build_mains_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            common.build_mains("simd", 10)
